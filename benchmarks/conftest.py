"""Shared fixtures for the benchmark harness.

The Fig. 7/8/9/10 and Table 3 benches all consume one comparison sweep
(the paper derives them from the same runs); ``experiments.py`` memoizes
it process-wide, so whichever bench runs first pays the simulation cost.

Rendered paper-vs-measured tables are written to
``benchmarks/results/*.txt`` and echoed to stdout; machine-readable
results go to ``benchmarks/results/BENCH_<name>.json``.
"""

from __future__ import annotations

import pathlib
from typing import Any, Optional

import pytest

from repro.bench import run_comparison_sweep, write_bench_json

#: One knob for all benches: simulated seconds of measured workload.
BENCH_DURATION = 8.0
BENCH_CLIENTS = 16

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep():
    """Baseline-vs-DoCeph sweep over 1/4/8/16 MB (shared by benches)."""
    return run_comparison_sweep(duration=BENCH_DURATION,
                                clients=BENCH_CLIENTS)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str,
            payload: Optional[dict[str, Any]] = None) -> None:
    """Write a rendered table to results/ and echo it; when ``payload``
    is given, also write the BENCH_<name>.json machine-readable form."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if payload is not None:
        write_bench_json(name, payload, results_dir)
    print("\n" + text)
