"""Shared fixtures for the benchmark harness.

The Fig. 7/8/9/10 and Table 3 benches all consume one comparison sweep
(the paper derives them from the same runs); ``experiments.py`` memoizes
it process-wide, so whichever bench runs first pays the simulation cost.

Rendered paper-vs-measured tables are written to
``benchmarks/results/*.txt`` and echoed to stdout.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import run_comparison_sweep

#: One knob for all benches: simulated seconds of measured workload.
BENCH_DURATION = 8.0
BENCH_CLIENTS = 16

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep():
    """Baseline-vs-DoCeph sweep over 1/4/8/16 MB (shared by benches)."""
    return run_comparison_sweep(duration=BENCH_DURATION,
                                clients=BENCH_CLIENTS)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a rendered table to results/ and echo it."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
