"""Ablation — DPU core-speed sensitivity.

The whole design bets that BlueField-3's ARM cores, though slower than
host cores, are fast enough to run the messenger at storage speed.
This sweep scales the DPU perf factor to find where that bet breaks.
The interesting finding: aggregate DPU capacity is never the issue
(~1.7 busy cores of 16) — the binding constraint is *per-connection
messenger serialization*, Ceph's one-worker-per-connection model.  At
the calibrated 0.45× that worker has ~2× headroom; halving core speed
halves throughput, the boundary condition for porting DoCeph to weaker
SmartNICs.
"""

from dataclasses import replace

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_with(perf: float):
    env = Environment()
    profile = DocephProfile(dpu_perf=perf)
    cluster = build_doceph_cluster(env, profile)
    result = run_rados_bench(cluster, object_size=4 * MB,
                             clients=BENCH_CLIENTS, duration=DURATION,
                             warmup=1.5)
    dpu_busy = max(
        cpu.busy_cores() for cpu in cluster.dpu_cpus()
    )
    return result, dpu_busy


def test_ablation_dpu_speed(benchmark, results_dir):
    perfs = [0.45, 0.2, 0.1, 0.05]

    def run():
        return {p: run_with(p) for p in perfs}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for perf, (r, dpu_busy) in results.items():
        rows.append([
            f"{perf:.2f}x",
            f"{r.iops:.1f}",
            f"{r.avg_latency:.3f}s",
            f"{r.host_utilization_pct:.1f}%",
            f"{dpu_busy:.1f}",
        ])
    publish(results_dir, "ablation_dpu_speed", format_table(
        ["DPU core perf", "iops", "avg latency", "host CPU",
         "busy DPU cores"],
        rows,
        title="Ablation — DPU core-speed sensitivity (DoCeph, 4MB writes)",
    ))

    # Throughput degrades monotonically as DPU cores slow down.
    iops = [results[p][0].iops for p in perfs]
    assert iops == sorted(iops, reverse=True)
    # Very weak cores collapse throughput (per-connection serialization).
    assert results[0.05][0].iops < 0.3 * results[0.45][0].iops
    # Host CPU stays low regardless — offload moves the *pain*; the
    # host never pays for a slow DPU.
    for perf, (r, _) in results.items():
        assert r.host_utilization_pct < 10.0
    # Aggregate DPU capacity is NOT the constraint: busy cores stay far
    # below the 16 available even in the collapsed configurations.
    for perf, (_, dpu_busy) in results.items():
        assert dpu_busy < 6.0
