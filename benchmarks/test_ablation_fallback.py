"""Ablation — fallback/cooldown under injected DMA failures (§4).

With DMA faults injected through the unified :mod:`repro.faults` plan,
the fallback machinery reroutes failed segments (and, during the
cooldown window, all traffic) over the RPC socket, preserving progress
at the cost of host CPU — kernel-socket copies return to the host
exactly while the cooldown is active.  After cooldown a single probe
transfer re-arms DMA.

The expected signature is therefore NOT a throughput collapse (the
fallback is engineered to carry full traffic) but a multi-× host-CPU
spike while faults keep tripping cooldowns — the offload benefit is
what degrades.
"""

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.faults import FaultPlan
from repro.sim import Environment

MB = 1 << 20
DURATION = 8.0


def run_with(fault_rate: float):
    env = Environment()
    profile = DocephProfile(cooldown_seconds=0.5)
    plan = (FaultPlan.parse(f"dma,p={fault_rate}")
            if fault_rate > 0 else None)
    cluster = build_doceph_cluster(env, profile, fault_plan=plan)
    result = run_rados_bench(cluster, object_size=4 * MB,
                             clients=BENCH_CLIENTS, duration=DURATION,
                             warmup=1.5)
    report = result.faults
    assert report is not None
    return (result, report.fallback_failures, report.fallback_segments,
            report.probes_succeeded)


def test_ablation_fallback(benchmark, results_dir):
    def run():
        return {rate: run_with(rate) for rate in (0.0, 0.02)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    r0, f0, seg0, p0 = results[0.0]
    r1, f1, seg1, p1 = results[0.02]

    publish(results_dir, "ablation_fallback", format_table(
        ["fault rate", "iops", "avg latency", "host CPU", "dma failures",
         "fallback segs", "probes ok"],
        [
            ["0%", f"{r0.iops:.1f}", f"{r0.avg_latency:.3f}s",
             f"{r0.host_utilization_pct:.1f}%", f0, seg0, p0],
            ["2%", f"{r1.iops:.1f}", f"{r1.avg_latency:.3f}s",
             f"{r1.host_utilization_pct:.1f}%", f1, seg1, p1],
        ],
        title="Ablation — fallback/cooldown under injected DMA faults "
              "(DoCeph, 4MB writes)",
    ))

    # Fault-free run never falls back, and its report is all-zero.
    assert f0 == 0 and seg0 == 0
    assert r0.faults.total_injected == 0
    # Faulty run: the plan's injection count matches what the DMA layer
    # observed (every injected error surfaced as an engine failure) ...
    assert r1.faults.injected.get("dma.error", 0) == r1.faults.dma_failures
    assert r1.faults.dma_failed_bytes > 0
    # ... failures happened, fallback carried segments, and probes
    # re-enabled DMA after cooldowns.
    assert f1 > 0
    assert seg1 > f1  # cooldown reroutes more than just failed segments
    assert p1 > 0
    assert len(r1.faults.recovery_latencies) == p1
    # The system keeps making progress: throughput stays within a band
    # of the fault-free run (the fallback path is engineered to carry
    # full traffic during cooldowns) ...
    assert r1.iops > 0.6 * r0.iops
    # ... but the price is host CPU: the kernel-socket path brings the
    # copies back onto the host — the very thing DMA offload removed.
    assert r1.host_utilization_pct > 2.0 * r0.host_utilization_pct
