"""Ablation — memory-region cache on vs off (§3.3).

With the MR cache, staging buffers negotiate their DOCA CommChannel
export once at first use; afterwards every transfer reuses the
pre-established region.  With it off, *every* transfer pays the
negotiation round trip — the paper's motivation for "reusing
pre-established memory regions instead of performing CommChannel
negotiation for each transfer".
"""

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.core import ProxyObjectStore
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_with(mr_cache: bool, size: int):
    env = Environment()
    profile = DocephProfile(mr_cache=mr_cache)
    cluster = build_doceph_cluster(env, profile)
    result = run_rados_bench(cluster, object_size=size,
                             clients=BENCH_CLIENTS, duration=DURATION,
                             warmup=1.5)
    negotiations = sum(s.comm.negotiations for s in cluster.proxy_servers)
    hits = sum(
        osd.store.doca.cache_hits
        for osd in cluster.osds
        if isinstance(osd.store, ProxyObjectStore)
    )
    return result, negotiations, hits


def test_ablation_mr_cache(benchmark, results_dir):
    def run():
        return {
            True: run_with(True, 4 * MB),
            False: run_with(False, 4 * MB),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    (r_on, neg_on, hits_on) = results[True]
    (r_off, neg_off, hits_off) = results[False]

    publish(results_dir, "ablation_mr_cache", format_table(
        ["config", "iops", "avg latency", "negotiations", "cache hits"],
        [
            ["MR cache on", f"{r_on.iops:.1f}", f"{r_on.avg_latency:.3f}s",
             neg_on, hits_on],
            ["MR cache off", f"{r_off.iops:.1f}", f"{r_off.avg_latency:.3f}s",
             neg_off, hits_off],
        ],
        title="Ablation — memory-region cache (DoCeph, 4MB writes)",
    ))

    # With the cache: a handful of negotiations (once per buffer);
    # without: one per segment transfer — orders of magnitude more.
    assert neg_on < 50
    assert neg_off > 50 * neg_on
    assert hits_on > 0
    assert hits_off == 0
    # Per-transfer negotiation costs throughput and latency.
    assert r_on.iops > r_off.iops
    assert r_off.avg_latency > r_on.avg_latency
