"""Ablation — DMA pipelining on vs off (§3.3, Fig. 4).

DoCeph's pipeline overlaps segment staging with DMA transmission.  With
it disabled, each segment stages and transfers serially, so large
requests (many segments) pay the full ``stage + transfer`` per segment.
The paper credits pipelining for closing the latency gap at large block
sizes; this ablation isolates that mechanism.
"""

from dataclasses import replace

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_with(pipelining: bool, size: int, clients: int):
    env = Environment()
    profile = DocephProfile(pipelining=pipelining)
    cluster = build_doceph_cluster(env, profile)
    return run_rados_bench(cluster, object_size=size,
                           clients=clients, duration=DURATION,
                           warmup=1.5)


def test_ablation_pipelining(benchmark, results_dir):
    """Measured at two concurrency levels: under 16-client saturation
    the mechanism's effect hides behind channel queueing (other
    requests' segments fill the staging gaps), so the isolating
    measurement uses 2 clients where per-request latency is exposed."""

    def run():
        out = {}
        for clients in (2, BENCH_CLIENTS):
            out[clients] = (
                run_with(True, 16 * MB, clients),
                run_with(False, 16 * MB, clients),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for clients, (on, off) in results.items():
        rows.append([
            f"{clients}",
            f"{on.iops:.1f}",
            f"{off.iops:.1f}",
            f"{on.avg_latency:.3f}s",
            f"{off.avg_latency:.3f}s",
            f"{100 * (off.avg_latency / on.avg_latency - 1):+.0f}%",
        ])
    publish(results_dir, "ablation_pipelining", format_table(
        ["clients", "iops(pipe)", "iops(serial)", "lat(pipe)",
         "lat(serial)", "serial penalty"],
        rows,
        title="Ablation — pipelined vs serial segmented DMA "
              "(DoCeph, 16MB writes)",
    ))

    for clients, (on, off) in results.items():
        # Pipelining never hurts.
        assert on.iops >= 0.98 * off.iops
        assert on.avg_latency <= 1.02 * off.avg_latency
    on2, off2 = results[2]
    # At low concurrency the serial path pays staging on the critical
    # path of every one of the 8 segments: visible latency penalty.
    assert off2.avg_latency > 1.03 * on2.avg_latency
