"""Ablation — DMA segment-size sweep (the ≈2 MB hardware cap, §3.3/§4).

The BF3 caps single DMA transfers at ~2 MB, forcing segmentation.  This
sweep asks: how much does the cap cost, and would a larger cap help?
Smaller segments mean more per-transfer setup overheads; larger
segments amortize them (but reduce pipelining granularity).
"""

from dataclasses import replace

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import DocephProfile, build_doceph_cluster
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_with(segment_bytes: int):
    env = Environment()
    profile = DocephProfile(dma_max_transfer=segment_bytes)
    cluster = build_doceph_cluster(env, profile)
    return run_rados_bench(cluster, object_size=16 * MB,
                           clients=BENCH_CLIENTS, duration=DURATION,
                           warmup=1.5)


def test_ablation_segment_size(benchmark, results_dir):
    sizes = [512 * 1024, 1 * MB, 2 * MB, 4 * MB]

    def run():
        return {s: run_with(s) for s in sizes}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{s // 1024}KB", f"{r.iops:.1f}", f"{r.avg_latency:.3f}s",
         f"{r.throughput_bytes / 1e6:.0f} MB/s"]
        for s, r in results.items()
    ]
    publish(results_dir, "ablation_segment_size", format_table(
        ["segment", "iops", "avg latency", "throughput"],
        rows,
        title="Ablation — DMA segment size (DoCeph, 16MB writes)",
    ))

    # Small segments multiply per-transfer setup: 512 KB is strictly
    # worse than the 2 MB hardware default.
    assert results[2 * MB].iops > results[512 * 1024].iops
    assert results[512 * 1024].avg_latency > results[2 * MB].avg_latency
    # A hypothetically larger cap (4 MB) does not help much once
    # pipelining hides the setup (< 25 % improvement) — the 2 MB cap is
    # largely overcome by DoCeph's optimizations, as the paper argues.
    assert results[4 * MB].iops < 1.25 * results[2 * MB].iops
