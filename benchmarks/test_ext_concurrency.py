"""Extension — client-concurrency sweep.

The paper evaluates only at 16 concurrent clients.  This sweep varies
offered concurrency to expose the two systems' queueing behaviour:
at low concurrency DoCeph pays its full per-request offload latency
(no pipelining across requests), while at high concurrency both
systems saturate the same storage ceiling and the gap closes — i.e.
the paper's 16-client operating point already sits in the
throughput-converged regime for 4 MB objects.
"""

from conftest import publish

from repro.bench import format_table, run_rados_bench
from repro.cluster import build_baseline_cluster, build_doceph_cluster
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_with(builder, clients):
    env = Environment()
    cluster = builder(env)
    return run_rados_bench(cluster, object_size=4 * MB, clients=clients,
                           duration=DURATION, warmup=1.5)


def test_ext_concurrency(benchmark, results_dir):
    levels = [1, 4, 16, 48]

    def run():
        return {
            c: (run_with(build_baseline_cluster, c),
                run_with(build_doceph_cluster, c))
            for c in levels
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for clients, (base, doceph) in results.items():
        rows.append([
            clients,
            f"{base.iops:.1f}",
            f"{doceph.iops:.1f}",
            f"{base.avg_latency * 1e3:.1f}ms",
            f"{doceph.avg_latency * 1e3:.1f}ms",
            f"{100 * (doceph.avg_latency / base.avg_latency - 1):+.0f}%",
        ])
    publish(results_dir, "ext_concurrency", format_table(
        ["clients", "base iops", "doceph iops", "base lat", "doceph lat",
         "lat overhead"],
        rows,
        title="Extension — concurrency sweep (4MB writes)",
    ))

    # Throughput grows with concurrency then saturates, in both systems.
    for system in (0, 1):
        iops = [results[c][system].iops for c in levels]
        assert iops[0] < iops[1] < iops[2]
        assert iops[3] < 1.3 * iops[2]  # saturated by 16 clients

    # The relative latency overhead is largest at queue-free depth 1
    # (the raw offload cost) and shrinks once queueing dominates.
    overhead = {
        c: results[c][1].avg_latency / results[c][0].avg_latency - 1
        for c in levels
    }
    assert overhead[1] > overhead[16]
    assert overhead[1] > overhead[48]
    # saturated regimes converge within ~15 %
    assert abs(overhead[48]) < 0.15
