"""Extension — the read path (§5.5, the paper's future work,
implemented).

The paper defers read evaluation but predicts: "similar convergence
behavior at large block sizes … potentially with even better relative
performance since reads avoid replication coordination overhead."  The
symmetric proxy (request metadata over RPC, data back via the reverse
DMA pipeline) lets us test that prediction.
"""

from conftest import BENCH_CLIENTS, publish

from repro.bench import format_table, run_read_bench
from repro.cluster import build_baseline_cluster, build_doceph_cluster
from repro.sim import Environment

MB = 1 << 20
DURATION = 6.0


def run_reads(builder, size):
    env = Environment()
    cluster = builder(env)
    return run_read_bench(cluster, object_size=size,
                          clients=BENCH_CLIENTS, duration=DURATION,
                          warmup=1.5)


def test_ext_read_path(benchmark, results_dir):
    def run():
        out = {}
        for size in (1 * MB, 16 * MB):
            out[size] = (
                run_reads(build_baseline_cluster, size),
                run_reads(build_doceph_cluster, size),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for size, (base, doceph) in results.items():
        rows.append([
            f"{size // MB}MB",
            f"{base.iops:.0f}",
            f"{doceph.iops:.0f}",
            f"{base.host_utilization_pct:.1f}%",
            f"{doceph.host_utilization_pct:.1f}%",
        ])
    publish(results_dir, "ext_read_path", format_table(
        ["size", "base iops", "doceph iops", "base host CPU",
         "doceph host CPU"],
        rows,
        title="Extension — read path, Baseline vs DoCeph (paper §5.5)",
    ))

    for size, (base, doceph) in results.items():
        # CPU offloading benefits carry over to reads.
        assert doceph.host_utilization_pct < 0.3 * base.host_utilization_pct
        assert doceph.iops > 0
    # Paper's prediction: convergence at large blocks (reads avoid
    # replication coordination) — gap at 16 MB under 30 %.
    base16, doceph16 = results[16 * MB]
    assert doceph16.iops > 0.7 * base16.iops
