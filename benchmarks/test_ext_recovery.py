"""Extension — recovery traffic under Baseline vs DoCeph.

§1 of the paper counts "replication, recovery, and rebalancing" among
the messenger's responsibilities.  This experiment kills an OSD
mid-workload and measures who pays for the recovery traffic: under
Baseline the host CPU absorbs the re-replication messaging; under
DoCeph it lands on the DPU, so the host stays at its ~5 % floor even
while the cluster heals.
"""

from conftest import publish

from repro.bench import CpuSampler, format_table
from repro.cluster import (
    BENCH_POOL,
    DocephProfile,
    HardwareProfile,
    build_baseline_cluster,
    build_doceph_cluster,
)
from repro.sim import Environment

MB = 1 << 20


def run_recovery(builder, profile):
    env = Environment()
    cluster = builder(env, profile)
    boot = env.process(cluster.boot())
    env.run(until=boot)
    client = cluster.client

    # preload data so there is something to recover
    def preload():
        for i in range(96):
            yield from client.write_object(BENCH_POOL, f"pre-{i}", 4 * MB)

    p = env.process(preload())
    env.run(until=p)

    sampler = CpuSampler(env, cluster.host_cpus())
    sampler.start()
    t0 = env.now
    cluster.osdmap.mark_out(0)  # osd.0 dies; PGs remap to survivors
    env.run(until=t0 + 12.0)
    windows = sampler.stop()

    recovered = sum(o.recovery.objects_recovered for o in cluster.osds
                    if o.recovery)
    bytes_rec = sum(o.recovery.bytes_recovered for o in cluster.osds
                    if o.recovery)
    # host CPU on the surviving nodes during the recovery window
    survivors = [w for w in windows if not w.name.startswith("node0")]
    host_pct = sum(w.utilization_pct for w in survivors) / len(survivors)
    return recovered, bytes_rec, host_pct, cluster


def test_ext_recovery(benchmark, results_dir):
    profile_b = HardwareProfile(storage_nodes=3, pg_num=32)
    profile_d = DocephProfile(storage_nodes=3, pg_num=32)

    def run():
        return {
            "baseline": run_recovery(build_baseline_cluster, profile_b),
            "doceph": run_recovery(build_doceph_cluster, profile_d),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (objs, nbytes, host_pct, _c) in results.items():
        rows.append([label, objs, f"{nbytes / MB:.0f} MB",
                     f"{host_pct:.1f}%"])
    publish(results_dir, "ext_recovery", format_table(
        ["system", "objects recovered", "data recovered",
         "host CPU during recovery"],
        rows,
        title="Extension — recovery after OSD failure (3 nodes, 96×4MB "
              "objects preloaded)",
    ))

    objs_b, bytes_b, host_b, _ = results["baseline"]
    objs_d, bytes_d, host_d, cluster_d = results["doceph"]
    # both systems actually recovered data
    assert objs_b > 0 and objs_d > 0
    assert bytes_b > 0 and bytes_d > 0
    # the offload holds during recovery: host CPU stays far below
    # baseline's (which pays for recovery messaging + backfill writes)
    assert host_d < 0.4 * host_b
    # and DoCeph's recovery messaging ran on the DPUs
    for node in cluster_d.nodes:
        assert "msgr-worker" not in node.host_cpu.accounting.busy_by_category
