"""Fig. 10 — Average IOPS, Baseline vs DoCeph (1–16 MB writes).

Paper claims: DoCeph is ~30 % slower at 1 MB (304 vs 435 IOPS) but the
gap narrows to ~6 % at 4 MB, ~13 % at 8 MB and ~4 % at 16 MB — DoCeph
matches baseline throughput for large objects while saving >90 % host
CPU.
"""

from conftest import publish

from repro.bench import comparison_point_dict, render_fig10


def test_fig10_iops(benchmark, sweep, results_dir):
    points = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    publish(results_dir, "fig10_iops", render_fig10(points),
            {"points": [comparison_point_dict(p) for p in points]})

    gaps = []
    for p in points:
        gap = 1 - p.doceph.iops / p.baseline.iops
        gaps.append(gap)

    # 1 MB: substantial gap (paper: 30 %; band 15–45 %).
    assert 0.15 < gaps[0] < 0.45
    # 16 MB: near parity (paper: 4 %; band < 15 %).
    assert gaps[-1] < 0.15
    # The 1 MB gap is the largest.
    assert gaps[0] == max(gaps)

    # IOPS scales down with size roughly proportionally to bytes:
    # the byte-throughput stays within a band across sizes.
    for system in ("baseline", "doceph"):
        thr = [getattr(p, system).iops * p.object_size for p in points]
        assert max(thr) < 2.0 * min(thr)
