"""Fig. 5 — CPU usage breakdown by component (Baseline, 4 MB writes).

Paper claims reproduced here:
* Messenger accounts for ~80 % of Ceph CPU at 1 Gbps (81.05 %) and at
  100 Gbps (82.48 %) — the share is link-speed independent;
* total Ceph CPU (single-core normalized) rises steeply with link speed
  (24 % → 70.08 %) because throughput rises, while the *breakdown*
  stays the same: the bottleneck is CPU-bound network processing, not
  link capacity.
"""

from conftest import BENCH_CLIENTS, BENCH_DURATION, publish

from repro.bench import experiment_fig5, fig5_row_dict, render_fig5


def test_fig5_cpu_breakdown(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiment_fig5(duration=BENCH_DURATION,
                                clients=BENCH_CLIENTS),
        rounds=1, iterations=1,
    )
    publish(results_dir, "fig5_cpu_breakdown", render_fig5(rows),
            {"rows": [fig5_row_dict(r) for r in rows]})

    by_label = {r.label: r for r in rows}
    # Messenger dominates at BOTH speeds (paper: 81.05 % / 82.48 %).
    assert by_label["1G"].msgr_share > 0.75
    assert by_label["100G"].msgr_share > 0.75
    # ... and the share is nearly link-speed independent (< 8 pp apart).
    assert abs(by_label["1G"].msgr_share - by_label["100G"].msgr_share) < 0.08
    # Total Ceph CPU rises steeply with link speed (paper: 24 → 70).
    assert (by_label["100G"].total_cpu_pct
            > 3 * by_label["1G"].total_cpu_pct)
    # ObjectStore and OSD threads are each minor contributors.
    for row in rows:
        assert row.objectstore_share < 0.15
        assert row.osd_share < 0.15
