"""Fig. 6 — Throughput under 1 Gbps vs 100 Gbps (Baseline, 4 MB writes).

Paper claim: raising link speed from 1 G to 100 G raises throughput by
roughly the ratio of the CPU increase (24 % → 70 %), i.e. the 1 G link
caps throughput, while at 100 G the storage path saturates first.
"""

from conftest import BENCH_CLIENTS, BENCH_DURATION, publish

from repro.bench import experiment_fig6, fig5_row_dict, render_fig6


def test_fig6_throughput(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: experiment_fig6(duration=BENCH_DURATION,
                                clients=BENCH_CLIENTS),
        rounds=1, iterations=1,
    )
    publish(results_dir, "fig6_throughput", render_fig6(rows),
            {"rows": [fig5_row_dict(r) for r in rows]})

    by_label = {r.label: r for r in rows}
    thr_1g = by_label["1G"].throughput_bytes
    thr_100g = by_label["100G"].throughput_bytes
    # 1 G is link-bound: cannot exceed 125 MB/s of client traffic.
    assert thr_1g < 125e6
    assert thr_1g > 60e6  # but achieves a healthy fraction of the link
    # 100 G lifts throughput well past the 1 G ceiling (paper: ~4x).
    assert thr_100g > 3 * thr_1g
    # ... yet is far from saturating the 100 G link: the bottleneck
    # moved to the storage nodes, exactly the paper's point.
    assert thr_100g < 0.10 * 100e9 / 8
