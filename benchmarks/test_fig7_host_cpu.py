"""Fig. 7 — Host CPU utilization, Baseline vs DoCeph (1–16 MB writes).

Paper claims: baseline burns 94.2/70.1/68.9/67.2 % of a core while
DoCeph stays flat at 5.4–5.8 %, a saving of 91.8–94.2 %.  The saving is
the paper's headline result ("cuts host CPU usage by up to 92 %").
"""

from conftest import publish

from repro.bench import comparison_point_dict, render_fig7


def test_fig7_host_cpu(benchmark, sweep, results_dir):
    points = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    publish(results_dir, "fig7_host_cpu", render_fig7(points),
            {"points": [comparison_point_dict(p) for p in points]})

    for p in points:
        # DoCeph's host CPU is low and flat (paper: 5.39–5.75 %).
        assert p.doceph.host_utilization_pct < 10.0
        # The headline: ≥ 85 % host CPU saving at every size
        # (paper: 91.8–94.2 %).
        assert p.cpu_saving_pct > 85.0

    # Baseline utilization *decreases* with request size (per-op
    # overheads amortize) but stays high (paper: 94.2 → 67.2).
    base = [p.baseline.host_utilization_pct for p in points]
    assert base[0] == max(base)
    assert base[-1] > 40.0

    # DoCeph is flat across sizes: spread under 3 percentage points.
    doceph = [p.doceph.host_utilization_pct for p in points]
    assert max(doceph) - min(doceph) < 3.0
