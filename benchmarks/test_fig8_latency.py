"""Fig. 8 — Average write latency, Baseline vs DoCeph (1–16 MB).

Paper claims: DoCeph is slower at every size, but the overhead shrinks
from ~67 % at 1 MB (0.05 s vs 0.03 s) to ~6 % at 16 MB (0.57 s vs
0.54 s) because segment pipelining amortizes the DMA costs at larger
block sizes.
"""

from conftest import publish

from repro.bench import comparison_point_dict, render_fig8


def test_fig8_latency(benchmark, sweep, results_dir):
    points = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    publish(results_dir, "fig8_latency", render_fig8(points),
            {"points": [comparison_point_dict(p) for p in points]})

    overheads = []
    for p in points:
        overhead = p.doceph.avg_latency / p.baseline.avg_latency - 1
        overheads.append(overhead)
        # DoCeph never beats baseline on latency (offload adds
        # coordination), and the penalty is bounded.
        assert overhead > -0.02
        assert overhead < 1.0

    # The penalty shrinks with size: 1 MB worst, 16 MB best
    # (paper: 67 % → 6 %).
    assert overheads[0] == max(overheads)
    assert overheads[-1] < 0.15
    assert overheads[0] > 3 * overheads[-1]

    # Latency grows with request size in both systems.
    for system in ("baseline", "doceph"):
        lats = [getattr(p, system).avg_latency for p in points]
        assert lats == sorted(lats)
