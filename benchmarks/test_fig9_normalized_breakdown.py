"""Fig. 9 — Normalized DoCeph latency breakdown.

Paper claims: DMA-wait's *share* of total latency falls from ~44.8 % at
1 MB to ~11.9 % at 16 MB — the pipelining effect is maximized at large
block sizes, which is why the DoCeph/Baseline gap closes.
"""

from conftest import BENCH_CLIENTS, BENCH_DURATION, publish

from repro.bench import experiment_fig9, render_fig9, table3_row_dict


def test_fig9_normalized_breakdown(benchmark, sweep, results_dir):
    rows = benchmark.pedantic(
        lambda: experiment_fig9(duration=BENCH_DURATION,
                                clients=BENCH_CLIENTS),
        rounds=1, iterations=1,
    )
    publish(results_dir, "fig9_normalized_breakdown", render_fig9(rows),
            {"rows": [table3_row_dict(r) for r in rows]})

    shares = [r.normalized()["dma_wait"] for r in rows]
    # DMA-wait is a major component at 1 MB (paper: 44.8 %) ...
    assert shares[0] > 0.30
    # ... and a minor one at 16 MB (paper: 11.9 %).
    assert shares[-1] < 0.25
    # The 1 MB share is the maximum and 16 MB is well below it.
    assert shares[0] == max(shares)
    assert shares[0] > 2 * shares[-1]

    # Others' share *grows* with size (paper: 48 % → 85 %).
    others = [r.normalized()["others"] for r in rows]
    assert others[-1] > others[0]
