"""Table 2 — Context switches: Messenger vs ObjectStore.

Paper claim: the messenger generates ~9.95× more context switches than
the ObjectStore (7475 vs 751), because TCP send/recv syscalls force
user↔kernel transitions per socket operation while BlueStore batches
its work.
"""

from conftest import BENCH_CLIENTS, BENCH_DURATION, publish

from repro.bench import experiment_table2, render_table2, table2_dict


def test_table2_context_switches(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: experiment_table2(duration=BENCH_DURATION,
                                  clients=BENCH_CLIENTS),
        rounds=1, iterations=1,
    )
    publish(results_dir, "table2_context_switches", render_table2(result),
            table2_dict(result))

    # Messenger context switches dominate by roughly an order of
    # magnitude (paper: 9.95x; shape band: 5x–25x).
    assert result.messenger_per_s > result.objectstore_per_s
    assert 5.0 < result.ratio < 25.0
