"""Table 3 — DoCeph average latency breakdown (Host write / DMA /
DMA-wait / Others).

Paper claims: host write and DMA are small and grow roughly linearly
with size; DMA-wait grows in absolute terms (0.0224 → 0.0676 s) but is
outpaced by Others, which dominates total latency at large sizes.
"""

from conftest import publish

from repro.bench import experiment_table3, render_table3, table3_row_dict
from conftest import BENCH_CLIENTS, BENCH_DURATION


def test_table3_latency_breakdown(benchmark, sweep, results_dir):
    rows = benchmark.pedantic(
        lambda: experiment_table3(duration=BENCH_DURATION,
                                  clients=BENCH_CLIENTS),
        rounds=1, iterations=1,
    )
    publish(results_dir, "table3_latency_breakdown", render_table3(rows),
            {"rows": [table3_row_dict(r) for r in rows]})

    assert len(rows) == 4
    # Components are non-negative and sum to the total by construction.
    for row in rows:
        assert row.host_write >= 0 and row.dma >= 0 and row.dma_wait >= 0
        s = row.host_write + row.dma + row.dma_wait + row.others
        assert abs(s - row.total) < 1e-9

    # Host write grows with size (it is device service time).
    host_writes = [r.host_write for r in rows]
    assert host_writes == sorted(host_writes)

    # DMA engine time grows with size (more segments).
    dmas = [r.dma for r in rows]
    assert dmas == sorted(dmas)

    # Others dominates at 16 MB (paper: 0.486 of 0.57 s).
    big = rows[-1]
    assert big.others > big.dma_wait
    assert big.others > 0.4 * big.total
