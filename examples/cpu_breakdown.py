#!/usr/bin/env python3
"""The paper's motivation experiment (§5.2, Figures 5–6, Table 2).

Runs the conventional host-based Ceph deployment at 1 Gbps and
100 Gbps, profiles CPU by thread category (perf-style), and counts
context switches — showing that the messenger burns >80 % of Ceph's
CPU regardless of link speed, with ~10× the ObjectStore's context
switches.  This is the bottleneck DoCeph exists to remove.

Run:  python examples/cpu_breakdown.py
"""

from repro.bench import (
    experiment_fig5,
    experiment_table2,
    render_fig5,
    render_fig6,
    render_table2,
)


def main() -> None:
    print("Running RADOS bench (4 MB writes, 16 clients) on the baseline "
          "cluster at two link speeds...\n")
    rows = experiment_fig5(duration=8.0)
    print(render_fig5(rows))
    print()
    print(render_fig6(rows))
    print()
    result = experiment_table2(duration=8.0)
    print(render_table2(result))
    print(
        "\nConclusion (the paper's §5.2): the bottleneck is not link "
        "capacity but the CPU-bound network processing path — messenger "
        "share is flat across a 100× link-speed change, so offloading the "
        "messenger to the DPU is where the host CPU win is."
    )


if __name__ == "__main__":
    main()
