#!/usr/bin/env python3
"""CRUSH placement demo: the substrate under RADOS.

Shows the placement pipeline the cluster uses (object name → rjenkins
hash → stable_mod → PG → straw2 CRUSH walk → OSDs), the balance of the
resulting distribution, and straw2's minimal-movement property when a
host is added — the reason Ceph rebalances cheaply.

Run:  python examples/crush_placement.py
"""

import collections

from repro.crush import CrushMap
from repro.rados import Pool, object_to_pg, pg_to_crush_input


def build(hosts: int) -> CrushMap:
    cmap = CrushMap()
    cmap.add_bucket("default", "root")
    osd = 0
    for h in range(hosts):
        cmap.add_bucket(f"host{h}", "host")
        for _ in range(2):
            cmap.add_device(f"host{h}", osd)
            osd += 1
        cmap.link_bucket("default", f"host{h}")
    cmap.add_rule(CrushMap.replicated_rule())
    return cmap


def placement(cmap: CrushMap, pool: Pool, n_objects: int):
    out = {}
    for i in range(n_objects):
        name = f"obj-{i}"
        pgid = object_to_pg(pool, name)
        out[name] = tuple(
            cmap.map_x(pool.rule_name, pg_to_crush_input(pgid), pool.size)
        )
    return out


def main() -> None:
    pool = Pool(id=1, name="demo", pg_num=128, size=2)

    print("placement pipeline for a few objects (4 hosts × 2 OSDs):")
    cmap4 = build(4)
    for name in ("alpha", "beta", "gamma"):
        pgid = object_to_pg(pool, name)
        osds = cmap4.map_x(pool.rule_name, pg_to_crush_input(pgid), pool.size)
        print(f"  {name!r:8} -> PG {pgid} -> OSDs {osds} "
              f"(hosts {[o // 2 for o in osds]})")

    n = 20_000
    before = placement(cmap4, pool, n)
    counts = collections.Counter(o for osds in before.values() for o in osds)
    print(f"\nbalance over {n} objects, replication 2:")
    for osd_id in sorted(counts):
        share = counts[osd_id] / (2 * n)
        print(f"  osd.{osd_id}: {counts[osd_id]:6} replicas "
              f"({100 * share:.1f}%, ideal 12.5%)")

    print("\nadding host4 (2 new OSDs) — straw2 moves only the fair share:")
    cmap5 = build(5)
    after = placement(cmap5, pool, n)
    moved_to_new = moved_between_old = 0
    for name in before:
        for osd in after[name]:
            if osd in before[name]:
                continue
            if osd >= 8:
                moved_to_new += 1
            else:
                moved_between_old += 1
    total = 2 * n
    print(f"  replicas moved to the new host:   {moved_to_new:6} "
          f"({100 * moved_to_new / total:.1f}%, fair share 20%)")
    print(f"  replicas shuffled between old OSDs: {moved_between_old:4} "
          f"({100 * moved_between_old / total:.2f}%)")
    print("  (a naive hash-mod placement would reshuffle ~80% of replicas)")


if __name__ == "__main__":
    main()
