#!/usr/bin/env python3
"""The paper's main evaluation (§5.3–5.4, Figures 7–10, Table 3).

Sweeps write sizes 1/4/8/16 MB with 16 concurrent clients against both
deployments and prints every table/figure of the evaluation in
paper-vs-measured form:

* Fig. 7 — host CPU utilization (the ≥90 % saving headline),
* Fig. 8 — average latency (overhead shrinking 67 % → 6 %),
* Table 3 / Fig. 9 — DoCeph's latency anatomy (DMA-wait amortized by
  pipelining),
* Fig. 10 — IOPS (30 % gap at 1 MB converging to ~4 % at 16 MB).

Run:  python examples/doceph_vs_baseline.py        (~2 min)
"""

from repro.bench import (
    experiment_table3,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_table3,
    run_comparison_sweep,
)


def main() -> None:
    print("Sweeping 1/4/8/16 MB writes on Baseline and DoCeph "
          "(16 clients each)...\n")
    points = run_comparison_sweep(duration=8.0)
    print(render_fig7(points))
    print()
    print(render_fig8(points))
    print()
    rows = experiment_table3(duration=8.0)
    print(render_table3(rows))
    print()
    print(render_fig9(rows))
    print()
    print(render_fig10(points))

    best_saving = max(p.cpu_saving_pct for p in points)
    print(
        f"\nHeadline: DoCeph cuts host CPU usage by up to "
        f"{best_saving:.0f}% while sustaining comparable throughput for "
        f"large objects — the paper reports up to 92%."
    )


if __name__ == "__main__":
    main()
