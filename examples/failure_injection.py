#!/usr/bin/env python3
"""Robustness demo: DMA faults, fallback, cooldown, and probing (§4).

Injects a burst of DMA failures mid-benchmark through the unified
:mod:`repro.faults` plan and narrates what the fallback machinery does:
failed segments reroute to the RPC socket, cooldown pins all traffic
there, a single probe transfer re-arms DMA (concurrent writers are
suppressed from duplicating it), and — the defining cost — host CPU
rises exactly while the socket path is active.

Run:  python examples/failure_injection.py
"""

from repro.bench import CpuSampler, collect_fault_report
from repro.cluster import BENCH_POOL, DocephProfile, build_doceph_cluster
from repro.faults import FaultPlan, FaultSpec
from repro.sim import Environment


def main() -> None:
    env = Environment()
    profile = DocephProfile(cooldown_seconds=1.0)
    cluster = build_doceph_cluster(env, profile)
    boot = env.process(cluster.boot(), name="boot")
    env.run(until=boot)
    client = cluster.client

    # Fault window: every DMA transfer between t=+4 s and t=+5 s fails.
    # The window is absolute simulated time, so compute it after boot
    # and attach the plan post-hoc.  The same plan as a CLI spec:
    #   --faults "dma,window=<t0+4>-<t0+5>"
    window = (env.now + 4.0, env.now + 5.0)
    plan = FaultPlan(seed=0, specs=[FaultSpec(layer="dma", window=window)])
    plan.attach_cluster(cluster)
    cluster.fault_plan = plan

    sampler = CpuSampler(env, cluster.host_cpus(), period=1.0)
    sampler.start()

    done = []

    def writer(idx: int):
        seq = 0
        while env.now < window[1] + 5.0:
            yield from client.write_object(
                BENCH_POOL, f"w{idx}-{seq}", 4 << 20
            )
            seq += 1
        done.append(idx)

    workers = [env.process(writer(i)) for i in range(8)]
    for w in workers:
        env.run(until=w)
    sampler.stop()

    print("per-second host CPU (%): the spike marks the fallback window")
    for name, series in sampler.samples.items():
        bars = " ".join(f"{v:5.1f}" for v in series)
        print(f"  {name:12} {bars}")

    print("\nfallback machinery state:")
    for osd in cluster.osds:
        fb = osd.store.fallback
        print(
            f"  {osd.name}: failures={fb.failures} "
            f"fallback_segments={fb.fallback_segments} "
            f"probes={fb.probes_succeeded}/{fb.probes_attempted} "
            f"(suppressed {fb.probes_suppressed} duplicate probes)"
        )
    report = collect_fault_report(cluster)
    print(f"\nplan injected {report.total_injected} faults "
          f"({report.injected}); mean recovery "
          f"{report.mean_recovery_latency:.2f} s after cooldown")
    total_writes = sum(o.client_ops for o in cluster.osds)
    print(f"all {total_writes} writes committed — no request was lost; "
          f"the price of the fault window was host CPU, not availability.")


if __name__ == "__main__":
    main()
