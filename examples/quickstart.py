#!/usr/bin/env python3
"""Quickstart: bring up a DoCeph cluster and write some objects.

Builds the paper's testbed (one client, two storage nodes with
BlueField-3-style DPUs, 100 GbE), boots it, writes a handful of
objects, reads one back, and prints where the CPU cycles went —
demonstrating the headline effect: the host runs almost nothing.

Run:  python examples/quickstart.py
"""

from repro.bench import CATEGORY_LABELS
from repro.cluster import BENCH_POOL, build_doceph_cluster
from repro.sim import Environment


def main() -> None:
    env = Environment()
    cluster = build_doceph_cluster(env)

    # Boot: activate PGs, start heartbeats/beacons, fetch the OSDMap.
    boot = env.process(cluster.boot(), name="boot")
    env.run(until=boot)
    client = cluster.client
    print(f"cluster up: {len(cluster.osds)} OSDs on DPUs, "
          f"map epoch {client.osdmap.epoch}")

    def workload():
        for i in range(8):
            result = yield from client.write_object(
                BENCH_POOL, f"hello-{i}", 4 << 20
            )
            print(f"  wrote hello-{i} (4 MiB) in {result.latency * 1e3:.1f} ms")
        read = yield from client.read_object(BENCH_POOL, "hello-0", 4 << 20)
        print(f"  read hello-0 back: {read.data.length >> 20} MiB in "
              f"{read.latency * 1e3:.1f} ms")

    work = env.process(workload(), name="workload")
    env.run(until=work)

    print("\nwhere the cycles went (busy seconds):")
    for node in cluster.nodes:
        print(f"  {node.name}:")
        for complex_name, cpu in (("host", node.host_cpu),
                                  ("dpu ", node.dpu_cpu)):
            busy = cpu.accounting.busy_by_category
            parts = ", ".join(
                f"{CATEGORY_LABELS.get(cat, cat)}={sec * 1e3:.1f} ms"
                for cat, sec in sorted(busy.items())
            ) or "(idle)"
            print(f"    {complex_name}: {parts}")

    dma_mb = sum(n.dma.bytes_transferred for n in cluster.nodes) >> 20
    print(f"\n{dma_mb} MiB crossed the DPU→host DMA bridge; the host CPU "
          f"never touched the network stack.")


if __name__ == "__main__":
    main()
