#!/usr/bin/env python3
"""Failure, recovery, and rebalancing — on DPUs.

Kills a storage node mid-life and watches the cluster heal: the monitor
detects silence, marks the OSD out, CRUSH remaps its placement groups,
and the surviving OSDs re-replicate the data — with all the recovery
messaging running on the DPUs, so the host CPUs barely notice.

Run:  python examples/recovery_rebalance.py
"""

from repro.bench import CpuSampler
from repro.cluster import BENCH_POOL, DocephProfile, build_doceph_cluster
from repro.sim import Environment


def replica_count(cluster, names):
    counts = {}
    for name in names:
        counts[name] = sum(
            1
            for store in cluster.stores
            for objects in store.collections.values()
            if name in objects
        )
    return counts


def main() -> None:
    env = Environment()
    profile = DocephProfile(storage_nodes=3, pg_num=32)
    cluster = build_doceph_cluster(env, profile)
    boot = env.process(cluster.boot(), name="boot")
    env.run(until=boot)
    client = cluster.client

    names = [f"obj-{i}" for i in range(24)]

    def preload():
        for name in names:
            yield from client.write_object(BENCH_POOL, name, 4 << 20)

    p = env.process(preload(), name="preload")
    env.run(until=p)
    counts = replica_count(cluster, names)
    print(f"preloaded {len(names)} × 4 MiB objects, "
          f"replicas per object: {set(counts.values())}")

    sampler = CpuSampler(env, cluster.host_cpus())
    sampler.start()
    print("\n>>> osd.0 fails (marked out); CRUSH remaps its PGs <<<")
    cluster.osdmap.mark_out(0)

    t0 = env.now
    env.run(until=t0 + 15.0)
    sampler.stop()

    for osd in cluster.osds:
        r = osd.recovery
        if r and (r.objects_recovered or r.pushes_sent):
            print(f"  {osd.name}: pulled {r.objects_recovered} objects "
                  f"({r.bytes_recovered >> 20} MiB), pushed {r.pushes_sent}")

    counts = replica_count(cluster, names)
    survivors = [i for i in range(3) if i != 0]
    healthy = sum(
        1 for name in names
        if sum(
            name in objects
            for i in survivors
            for objects in cluster.stores[i].collections.values()
        ) == 2
    )
    print(f"\nafter recovery: {healthy}/{len(names)} objects back at "
          f"full replication on the survivors")

    print("\nhost CPU during recovery (per-second %):")
    for name, series in sampler.samples.items():
        if name.startswith("node0"):
            continue  # the dead node
        bars = " ".join(f"{v:4.1f}" for v in series)
        print(f"  {name:12} {bars}")
    print("\nthe hosts stayed near idle — recovery messaging ran on the "
          "DPUs, backfill writes on BlueStore.")


if __name__ == "__main__":
    main()
