#!/usr/bin/env python3
"""Trace a single write through the DoCeph pipeline.

Enables the OpTracker (Ceph's ``dump_historic_ops`` facility) and the
proxy's latency breakdown, writes one 8 MiB object, and prints the
request's life story: dispatch → PG processing → replication sub-op →
DMA staging/segments → host BlueStore commit → client reply.

Run:  python examples/trace_request.py
"""

from repro.cluster import BENCH_POOL, build_doceph_cluster
from repro.sim import Environment


def main() -> None:
    env = Environment()
    cluster = build_doceph_cluster(env)
    boot = env.process(cluster.boot(), name="boot")
    env.run(until=boot)
    trackers = {osd.name: osd.enable_op_tracking() for osd in cluster.osds}

    def work():
        result = yield from cluster.client.write_object(
            BENCH_POOL, "traced-object", 8 << 20
        )
        return result

    p = env.process(work(), name="work")
    env.run(until=p)
    result = p.value
    print(f"wrote 8 MiB in {result.latency * 1e3:.2f} ms end-to-end\n")

    for osd_name, tracker in trackers.items():
        for op in tracker.dump_historic():
            print(f"{osd_name}: {op.description} "
                  f"({op.duration * 1e3:.2f} ms total)")
            t0 = op.initiated_at
            for t, stage in op.events:
                print(f"  +{(t - t0) * 1e3:7.3f} ms  {stage}")
            print(f"  +{(op.completed_at - t0) * 1e3:7.3f} ms  reply_sent")
            print()

    print("proxy-side DMA anatomy (Table 3's view of the same request):")
    for osd in cluster.osds:
        for bd in osd.store.breakdowns:
            print(f"  {osd.name}: size={bd.size >> 20} MiB  "
                  f"dma={bd.dma * 1e3:.2f} ms  "
                  f"dma_wait={bd.dma_wait * 1e3:.2f} ms  "
                  f"stage={bd.stage * 1e3:.2f} ms  "
                  f"host_write={bd.host_write * 1e3:.2f} ms  "
                  f"others={bd.others * 1e3:.2f} ms")
    segs = sum(n.dma.transfers for n in cluster.nodes)
    print(f"\n{segs} DMA segments moved (8 MiB → 4 × 2 MiB per node, "
          f"primary + replica).")


if __name__ == "__main__":
    main()
