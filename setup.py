"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, which the
PEP 517 editable-install path requires.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work without network access.
"""

from setuptools import setup

setup()
