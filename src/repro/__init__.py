"""DoCeph reproduction: DPU-offloaded Ceph messaging on a deterministic
discrete-event simulation substrate.

Quickstart
----------
>>> from repro.sim import Environment
>>> from repro.cluster import build_doceph_cluster
>>> from repro.bench import run_rados_bench
>>> env = Environment()
>>> cluster = build_doceph_cluster(env)
>>> result = run_rados_bench(cluster, object_size=4 << 20, duration=10)
>>> print(f"{result.iops:.0f} IOPS at "
...       f"{result.host_utilization_pct:.1f}% host CPU")  # doctest: +SKIP

Package map
-----------
- ``repro.sim`` — discrete-event simulation kernel
- ``repro.hw`` — CPU / network / TCP / DMA / SSD models
- ``repro.util`` — bufferlist, rjenkins hashes, stats, RNG
- ``repro.crush`` — CRUSH placement (straw2)
- ``repro.rados`` — pools, PGs, OSDMap, monitor, client
- ``repro.msgr`` — the async messenger (the offloaded component)
- ``repro.osd`` — the OSD daemon
- ``repro.objectstore`` — ObjectStore API + BlueStore
- ``repro.core`` — **DoCeph**: ProxyObjectStore, RPC/DMA planes,
  pipelining, fallback/cooldown
- ``repro.cluster`` — testbed assembly + calibrated profiles
- ``repro.bench`` — RADOS bench, metrics, experiment drivers
- ``repro.faults`` — deterministic fault injection plans
- ``repro.chaos`` — cluster-level chaos harness + durability checker
- ``repro.trace`` — cross-layer tracing: spans, critical path,
  CPU cross-checks, Perfetto export
"""

__version__ = "1.0.0"
