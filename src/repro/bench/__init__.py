"""Benchmark harness: RADOS bench workload, CPU metrics, and the
per-figure/table experiment drivers."""

from .experiments import (
    ComparisonPoint,
    MB,
    PAPER,
    SIZES,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_table2,
    experiment_table3,
    run_comparison_sweep,
)
from .metrics import CATEGORY_LABELS, CpuSampler, CpuWindow
from .radosbench import BenchResult, run_rados_bench, run_read_bench
from .reporting import (
    format_table,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_table2,
    render_table3,
)

__all__ = [
    "BenchResult",
    "CATEGORY_LABELS",
    "ComparisonPoint",
    "CpuSampler",
    "CpuWindow",
    "MB",
    "PAPER",
    "SIZES",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_table2",
    "experiment_table3",
    "format_table",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_table2",
    "render_table3",
    "run_comparison_sweep",
    "run_rados_bench",
    "run_read_bench",
]
