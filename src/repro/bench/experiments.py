"""Experiment drivers: one function per table/figure in the paper.

Each ``experiment_*`` function builds the relevant testbed(s), runs the
paper's workload, and returns a result object carrying both *our*
measurements and the *paper's* reference values so the harness can
print them side by side.  Absolute agreement is not expected (our
substrate is a calibrated simulator, not the authors' hardware); the
shape — who wins, by what factor, where crossovers fall — is the
reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from ..cluster.builder import (
    Cluster,
    build_baseline_cluster,
    build_doceph_cluster,
)
from ..cluster.config import (
    DocephProfile,
    GIGABIT,
    HUNDRED_GIG,
    HardwareProfile,
)
from ..faults import FaultPlan
from ..msgr.messenger import MSGR_CATEGORY
from ..objectstore.bluestore import BSTORE_CATEGORY
from ..osd.daemon import OSD_CATEGORY
from ..sim import Environment
from .radosbench import BenchResult, run_rados_bench

__all__ = [
    "SIZES",
    "MB",
    "ComparisonPoint",
    "FallbackResult",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_table2",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_table3",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_fallback",
    "experiment_chaos",
    "experiment_qos",
    "run_comparison_sweep",
    "PAPER",
]

MB = 1 << 20

#: The paper's request-size sweep (§5.1).
SIZES = (1 * MB, 4 * MB, 8 * MB, 16 * MB)

#: Published reference values, straight from the paper's §5.
PAPER = {
    "fig5_msgr_share": {"1G": 0.8105, "100G": 0.8248},
    "fig5_total_cpu_pct": {"1G": 24.0, "100G": 70.08},
    "table2_ctx": {"messenger": 7475, "objectstore": 751},
    "fig7_baseline_cpu_pct": {1 * MB: 94.2, 4 * MB: 70.1, 8 * MB: 68.9,
                              16 * MB: 67.2},
    "fig7_doceph_cpu_pct": {1 * MB: 5.5, 4 * MB: 5.75, 8 * MB: 5.53,
                            16 * MB: 5.39},
    "fig8_baseline_latency_s": {1 * MB: 0.03, 4 * MB: 0.134, 8 * MB: 0.267,
                                16 * MB: 0.54},
    "fig8_doceph_latency_s": {1 * MB: 0.05, 4 * MB: 0.14, 8 * MB: 0.30,
                              16 * MB: 0.57},
    "table3": {
        1 * MB: {"host_write": 0.0008, "dma": 0.0028, "dma_wait": 0.0224,
                 "others": 0.024, "total": 0.05},
        4 * MB: {"host_write": 0.0024, "dma": 0.0042, "dma_wait": 0.0336,
                 "others": 0.0998, "total": 0.14},
        8 * MB: {"host_write": 0.0046, "dma": 0.00523, "dma_wait": 0.0418,
                 "others": 0.24837, "total": 0.30},
        16 * MB: {"host_write": 0.0084, "dma": 0.00846, "dma_wait": 0.0676,
                  "others": 0.48554, "total": 0.57},
    },
    "fig10_baseline_iops": {1 * MB: 435, 4 * MB: 119, 8 * MB: 60, 16 * MB: 28},
    "fig10_doceph_iops": {1 * MB: 304, 4 * MB: 112, 8 * MB: 52, 16 * MB: 27},
}


# --------------------------------------------------------------- shared sweep


@dataclass
class ComparisonPoint:
    """One request size measured on both systems."""

    object_size: int
    baseline: BenchResult
    doceph: BenchResult

    @property
    def cpu_saving_pct(self) -> float:
        base = self.baseline.host_utilization_pct
        if base <= 0:
            return 0.0
        return 100.0 * (1 - self.doceph.host_utilization_pct / base)


_sweep_cache: dict[tuple, list[ComparisonPoint]] = {}


def run_comparison_sweep(
    sizes: tuple[int, ...] = SIZES,
    duration: float = 10.0,
    clients: int = 16,
    warmup: float = 2.0,
    use_cache: bool = True,
) -> list[ComparisonPoint]:
    """Baseline vs DoCeph across the paper's size sweep.

    Results are memoized per parameter set so the Fig. 7/8/9/10 and
    Table 3 harnesses share one set of runs (as the paper's do)."""
    key = (sizes, duration, clients, warmup)
    if use_cache and key in _sweep_cache:
        return _sweep_cache[key]
    points = []
    for size in sizes:
        env_b = Environment()
        base = run_rados_bench(
            build_baseline_cluster(env_b), object_size=size,
            clients=clients, duration=duration, warmup=warmup,
        )
        env_d = Environment()
        doceph = run_rados_bench(
            build_doceph_cluster(env_d), object_size=size,
            clients=clients, duration=duration, warmup=warmup,
        )
        points.append(ComparisonPoint(size, base, doceph))
    if use_cache:
        _sweep_cache[key] = points
    return points


# --------------------------------------------------------------- Fig. 5 / 6


@dataclass
class Fig5Row:
    """CPU breakdown for one network configuration (baseline)."""

    label: str
    bandwidth_bps: float
    msgr_share: float
    objectstore_share: float
    osd_share: float
    total_cpu_pct: float
    throughput_bytes: float
    ctx_msgr_per_s: float
    ctx_objectstore_per_s: float


def _run_breakdown(bandwidth: float, label: str, duration: float,
                   clients: int) -> Fig5Row:
    env = Environment()
    profile = HardwareProfile(net_bandwidth=bandwidth)
    cluster = build_baseline_cluster(env, profile)
    result = run_rados_bench(
        cluster, object_size=4 * MB, clients=clients,
        duration=duration, warmup=2.0,
    )
    window = result.ceph_cpu_window
    return Fig5Row(
        label=label,
        bandwidth_bps=bandwidth,
        msgr_share=window.category_share(MSGR_CATEGORY),
        objectstore_share=window.category_share(BSTORE_CATEGORY),
        osd_share=window.category_share(OSD_CATEGORY),
        total_cpu_pct=window.utilization_pct,
        throughput_bytes=result.throughput_bytes,
        ctx_msgr_per_s=window.ctx_rate(MSGR_CATEGORY),
        ctx_objectstore_per_s=window.ctx_rate(BSTORE_CATEGORY),
    )


def experiment_fig5(duration: float = 10.0, clients: int = 16) -> list[Fig5Row]:
    """Fig. 5: CPU usage breakdown under 1 Gbps and 100 Gbps (baseline,
    4 MB writes)."""
    return [
        _run_breakdown(GIGABIT, "1G", duration, clients),
        _run_breakdown(HUNDRED_GIG, "100G", duration, clients),
    ]


def experiment_fig6(duration: float = 10.0, clients: int = 16) -> list[Fig5Row]:
    """Fig. 6: throughput under the same two network configurations.

    Same runs as Fig. 5 (the paper derives both from one experiment)."""
    return experiment_fig5(duration, clients)


# --------------------------------------------------------------- Table 2


@dataclass
class Table2Result:
    """Context switches: Messenger vs ObjectStore (100 Gbps, 4 MB)."""

    messenger_per_s: float
    objectstore_per_s: float

    @property
    def ratio(self) -> float:
        if self.objectstore_per_s <= 0:
            return float("inf")
        return self.messenger_per_s / self.objectstore_per_s


def experiment_table2(duration: float = 10.0, clients: int = 16) -> Table2Result:
    """Table 2: per-second context switches by component."""
    row = _run_breakdown(HUNDRED_GIG, "100G", duration, clients)
    return Table2Result(
        messenger_per_s=row.ctx_msgr_per_s,
        objectstore_per_s=row.ctx_objectstore_per_s,
    )


# --------------------------------------------------------------- Fig. 7 – 10


def experiment_fig7(duration: float = 10.0, clients: int = 16) -> list[ComparisonPoint]:
    """Fig. 7: host CPU utilization, Baseline vs DoCeph, per size."""
    return run_comparison_sweep(duration=duration, clients=clients)


def experiment_fig8(duration: float = 10.0, clients: int = 16) -> list[ComparisonPoint]:
    """Fig. 8: average end-to-end write latency per size."""
    return run_comparison_sweep(duration=duration, clients=clients)


def experiment_fig10(duration: float = 10.0, clients: int = 16) -> list[ComparisonPoint]:
    """Fig. 10: average IOPS per size."""
    return run_comparison_sweep(duration=duration, clients=clients)


# --------------------------------------------------------------- Table 3 / Fig. 9


@dataclass
class Table3Row:
    """DoCeph latency breakdown for one request size (seconds)."""

    object_size: int
    host_write: float
    dma: float
    dma_wait: float
    others: float
    total: float

    def normalized(self) -> dict[str, float]:
        """Fig. 9: each component as a share of total latency."""
        if self.total <= 0:
            return {"host_write": 0, "dma": 0, "dma_wait": 0, "others": 0}
        return {
            "host_write": self.host_write / self.total,
            "dma": self.dma / self.total,
            "dma_wait": self.dma_wait / self.total,
            "others": self.others / self.total,
        }


def experiment_table3(duration: float = 10.0, clients: int = 16) -> list[Table3Row]:
    """Table 3: average latency time breakdown of DoCeph.

    ``total`` is the client-observed latency; host-write/DMA/DMA-wait
    come from the proxy instrumentation; Others is the residual (DPU
    OSD work, messenger activity, replication coordination, ACK waits)."""
    points = run_comparison_sweep(duration=duration, clients=clients)
    rows = []
    for point in points:
        bd = point.doceph.breakdowns
        if not bd:
            continue
        host_write = statistics.mean(b.host_write for b in bd)
        dma = statistics.mean(b.dma for b in bd)
        dma_wait = statistics.mean(b.dma_wait for b in bd)
        total = point.doceph.avg_latency
        others = max(0.0, total - host_write - dma - dma_wait)
        rows.append(
            Table3Row(
                object_size=point.object_size,
                host_write=host_write,
                dma=dma,
                dma_wait=dma_wait,
                others=others,
                total=total,
            )
        )
    return rows


def experiment_fig9(duration: float = 10.0, clients: int = 16) -> list[Table3Row]:
    """Fig. 9: Table 3 normalized to shares of total latency."""
    return experiment_table3(duration=duration, clients=clients)


# --------------------------------------------------------------- §4 robustness


@dataclass
class FallbackResult:
    """DoCeph under an injected fault plan vs the fault-free run."""

    plan: FaultPlan
    clean: BenchResult
    faulty: BenchResult

    @property
    def iops_retained(self) -> float:
        """Fraction of fault-free IOPS the faulty run still delivers."""
        if self.clean.iops <= 0:
            return 0.0
        return self.faulty.iops / self.clean.iops

    @property
    def host_cpu_increase_pct(self) -> float:
        """Extra host CPU points paid for rerouting bulk data over the
        kernel-socket fallback path (the §4 robustness cost)."""
        return (
            self.faulty.host_utilization_pct
            - self.clean.host_utilization_pct
        )


def experiment_fallback(
    faults: str | FaultPlan = "dma,p=0.3",
    seed: int = 0,
    object_size: int = 4 * MB,
    duration: float = 10.0,
    clients: int = 16,
    warmup: float = 2.0,
    cooldown_seconds: float = 0.5,
    rpc_timeout_seconds: float = 0.5,
) -> FallbackResult:
    """§4 robustness: DoCeph with an injected fault plan, against the
    same configuration fault-free.

    ``faults`` is either a :class:`~repro.faults.FaultPlan` or the
    textual spec format shared with ``cli.py --faults`` and
    ``examples/failure_injection.py`` (e.g. ``"dma,p=0.3"``,
    ``"rpc:reply_loss,p=0.1;net:degrade,window=4-6"``).
    """
    plan = (
        faults if isinstance(faults, FaultPlan)
        else FaultPlan.parse(faults, seed=seed)
    )
    # fast-recovery tuning: a robustness run wants prompt fault
    # detection, not the conservative production timeout
    profile = DocephProfile(
        cooldown_seconds=cooldown_seconds,
        rpc_timeout_seconds=rpc_timeout_seconds,
    )

    env_clean = Environment()
    clean = run_rados_bench(
        build_doceph_cluster(env_clean, profile), object_size=object_size,
        clients=clients, duration=duration, warmup=warmup,
    )
    env_faulty = Environment()
    faulty = run_rados_bench(
        build_doceph_cluster(env_faulty, profile, fault_plan=plan),
        object_size=object_size, clients=clients, duration=duration,
        warmup=warmup,
    )
    return FallbackResult(plan=plan, clean=clean, faulty=faulty)


def experiment_chaos(
    mode: str = "baseline",
    seeds: tuple[int, ...] = (0,),
    duration: float = 10.0,
    clients: int = 2,
    object_size: int = 1 << 20,
    crashes: int = 3,
    partitions: int = 1,
):
    """Cluster-level chaos: seeded OSD crash/restart and partition
    schedules under a write workload, with the acked-write durability
    invariant verified after heal.  Returns one
    :class:`~repro.chaos.ChaosReport` per seed.

    This is the robustness counterpart of :func:`experiment_fallback`:
    that one kills the DPU↔host data path, this one kills daemons and
    links — the failure domain §1 of the paper assigns the messenger.
    """
    from ..chaos import run_chaos

    return [
        run_chaos(
            mode=mode, seed=seed, duration=duration, clients=clients,
            object_size=object_size, crashes=crashes,
            partitions=partitions,
        )
        for seed in seeds
    ]


def experiment_qos(
    strategies: tuple[str, ...] = ("baseline", "tcp-only", "full-osd",
                                   "zero-copy"),
    tenant_counts: tuple[int, ...] = (8,),
    seed: int = 0,
    duration: float = 10.0,
):
    """The QoS crossover map: {strategy × tenant count × op size × rate}.

    Two operating points per cell bracket the crossover found
    empirically: *small* (4 KB, high rate) makes the OSD op queue the
    contended stage, so mClock weights split spare capacity; *large*
    (64 KB, moderate rate) shifts contention into the messaging path —
    upstream of the scheduler — where strategies differ by up to ~4x
    aggregate goodput (DPU ingress vs host ingress) and weights level
    out.  Returns ``{(strategy, tenants, label): QosResult}``.
    """
    # Imported lazily: repro.qos imports back into repro.bench
    # (metrics/reporting), and this module is loaded from
    # ``bench/__init__`` — a top-level import here would cycle.
    from ..qos import default_tenants, run_qos

    KB = 1024
    points = {
        # label: (object_size, per-tenant offered rate, reservation)
        "small": (4 * KB, 1500.0, 100.0),
        "large": (64 * KB, 250.0, 25.0),
    }
    results = {}
    for strategy in strategies:
        for count in tenant_counts:
            for label, (size, rate, reservation) in points.items():
                specs = default_tenants(
                    count, reservation=reservation, rate=rate,
                    object_size=size,
                )
                results[(strategy, count, label)] = run_qos(
                    strategy, specs, seed=seed, duration=duration,
                )
    return results
