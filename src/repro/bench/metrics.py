"""Measurement utilities: CPU utilization sampling and breakdowns.

Reproduces the paper's measurement methodology (§5.1/§5.2):

* utilization is sampled at 1 Hz over the benchmark window (htop/iostat
  style) and reported **single-core normalized** (busy-cores × 100 —
  the convention behind Fig. 5's right axis and Fig. 7's percentages);
* per-category breakdowns follow Ceph's thread naming: ``msgr-worker``
  (Messenger), ``bstore`` (ObjectStore), ``tp_osd_tp`` (OSD threads) —
  mutually exclusive categories, as the paper notes;
* context switches are counted per category over the window (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..hw.cpu import CpuComplex, CpuSnapshot
from ..msgr.messenger import MSGR_CATEGORY
from ..objectstore.bluestore import BSTORE_CATEGORY
from ..osd.daemon import OSD_CATEGORY
from ..sim import Environment

__all__ = [
    "CpuWindow",
    "CpuSampler",
    "CATEGORY_LABELS",
    "FaultReport",
    "collect_fault_report",
]

#: Display labels in the paper's vocabulary.
CATEGORY_LABELS = {
    MSGR_CATEGORY: "Messenger",
    BSTORE_CATEGORY: "ObjectStore",
    OSD_CATEGORY: "OSD threads",
    "proxy": "Proxy",
}


@dataclass
class CpuWindow:
    """Accounting deltas of one CPU complex over one window."""

    name: str
    elapsed: float
    busy_by_category: dict[str, float]
    ctx_by_category: dict[str, int]

    @property
    def total_busy(self) -> float:
        return sum(self.busy_by_category.values())

    @property
    def busy_cores(self) -> float:
        """Average busy cores (single-core-normalized utilization /100)."""
        return self.total_busy / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def utilization_pct(self) -> float:
        """The paper's 'CPU utilization (%)': busy-cores × 100."""
        return 100.0 * self.busy_cores

    def category_share(self, category: str) -> float:
        """Fraction of this window's busy time in ``category``."""
        total = self.total_busy
        if total <= 0:
            return 0.0
        return self.busy_by_category.get(category, 0.0) / total

    def breakdown(self) -> dict[str, float]:
        """Category → share of total busy time."""
        total = self.total_busy
        if total <= 0:
            return {}
        return {
            cat: busy / total
            for cat, busy in sorted(self.busy_by_category.items())
        }

    def ctx_rate(self, category: str) -> float:
        """Context switches per second in ``category``."""
        if self.elapsed <= 0:
            return 0.0
        return self.ctx_by_category.get(category, 0) / self.elapsed

    @staticmethod
    def between(
        cpu: CpuComplex, start: CpuSnapshot, end: CpuSnapshot
    ) -> "CpuWindow":
        elapsed = end.time - start.time
        busy = end.busy_since(start)
        ctx = {
            cat: end.ctx_by_category.get(cat, 0)
            - start.ctx_by_category.get(cat, 0)
            for cat in set(end.ctx_by_category) | set(start.ctx_by_category)
        }
        return CpuWindow(cpu.name, elapsed, busy, ctx)

    @staticmethod
    def merge(windows: list["CpuWindow"]) -> "CpuWindow":
        """Aggregate windows (e.g. both storage nodes) by averaging —
        the paper reports per-node averages."""
        if not windows:
            raise ValueError("nothing to merge")
        n = len(windows)
        busy: dict[str, float] = {}
        ctx: dict[str, int] = {}
        for w in windows:
            for cat, b in w.busy_by_category.items():
                busy[cat] = busy.get(cat, 0.0) + b / n
            for cat, c in w.ctx_by_category.items():
                ctx[cat] = ctx.get(cat, 0) + c // n
        return CpuWindow(
            name="+".join(w.name for w in windows),
            elapsed=windows[0].elapsed,
            busy_by_category=busy,
            ctx_by_category=ctx,
        )


@dataclass
class FaultReport:
    """Per-layer fault and recovery counters for one cluster run.

    Aggregated across nodes; ``injected`` / ``injected_bytes`` come from
    the cluster's :class:`~repro.faults.FaultPlan` (empty when the run
    was fault-free).  Counters are plain ints/floats so two runs with
    the same plan seed can be compared for byte-identical equality.
    """

    # plan-side: what the fault plan injected, keyed "layer.kind"
    injected: dict[str, int]
    injected_bytes: dict[str, int]
    # dma layer
    dma_failures: int = 0
    dma_failed_bytes: int = 0
    # fallback controller (recovery machinery)
    fallback_failures: int = 0
    fallback_segments: int = 0
    probes_attempted: int = 0
    probes_succeeded: int = 0
    probes_suppressed: int = 0
    recovery_latencies: list[float] = field(default_factory=list)
    # rpc layer
    rpc_timeouts: int = 0
    rpc_retries: int = 0
    rpc_request_losses: int = 0
    rpc_reply_losses: int = 0
    rpc_delays: int = 0
    rpc_duplicates_suppressed: int = 0
    rpc_errors: int = 0
    # net layer
    net_degraded_chunks: int = 0
    # storage layer
    storage_io_errors: int = 0
    storage_failed_bytes: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def as_dict(self) -> dict[str, Any]:
        """Stable, JSON-friendly form (used by the CLI and for run-to-run
        reproducibility comparisons)."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "injected_bytes": dict(sorted(self.injected_bytes.items())),
            "dma": {
                "failures": self.dma_failures,
                "failed_bytes": self.dma_failed_bytes,
            },
            "fallback": {
                "failures": self.fallback_failures,
                "fallback_segments": self.fallback_segments,
                "probes_attempted": self.probes_attempted,
                "probes_succeeded": self.probes_succeeded,
                "probes_suppressed": self.probes_suppressed,
                "recoveries": len(self.recovery_latencies),
                "mean_recovery_latency": self.mean_recovery_latency,
            },
            "rpc": {
                "timeouts": self.rpc_timeouts,
                "retries": self.rpc_retries,
                "request_losses": self.rpc_request_losses,
                "reply_losses": self.rpc_reply_losses,
                "delays": self.rpc_delays,
                "duplicates_suppressed": self.rpc_duplicates_suppressed,
                "errors": self.rpc_errors,
            },
            "net": {"degraded_chunks": self.net_degraded_chunks},
            "storage": {
                "io_errors": self.storage_io_errors,
                "failed_bytes": self.storage_failed_bytes,
            },
        }


def collect_fault_report(cluster: Any) -> FaultReport:
    """Aggregate fault/recovery counters from every layer of ``cluster``."""
    # local import: repro.core imports nothing from bench, but keep the
    # bench package importable without the core stack loaded
    from ..core.proxy_objectstore import ProxyObjectStore

    plan = getattr(cluster, "fault_plan", None)
    snap = plan.snapshot() if plan is not None else {
        "injected": {}, "injected_bytes": {},
    }
    report = FaultReport(
        injected=snap["injected"],
        injected_bytes=snap["injected_bytes"],
    )

    for node in cluster.nodes:
        if node.dma is not None:
            report.dma_failures += node.dma.failures
            report.dma_failed_bytes += node.dma.failed_bytes
        ssd = node.ssd
        report.storage_io_errors += ssd.io_errors
        report.storage_failed_bytes += ssd.failed_bytes
        report.net_degraded_chunks += node.nic.tx.degraded_chunks
        report.net_degraded_chunks += node.nic.rx.degraded_chunks

    for osd in cluster.osds:
        store = osd.store
        if isinstance(store, ProxyObjectStore):
            fb = store.fallback
            report.fallback_failures += fb.failures
            report.fallback_segments += fb.fallback_segments
            report.probes_attempted += fb.probes_attempted
            report.probes_succeeded += fb.probes_succeeded
            report.probes_suppressed += fb.probes_suppressed
            report.recovery_latencies.extend(fb.recovery_latencies)

    for server in getattr(cluster, "proxy_servers", []):
        rpc = server.rpc
        report.rpc_timeouts += rpc.timeouts
        report.rpc_retries += rpc.retries
        report.rpc_request_losses += rpc.request_losses
        report.rpc_reply_losses += rpc.reply_losses
        report.rpc_delays += rpc.delays
        report.rpc_duplicates_suppressed += rpc.duplicates_suppressed
        report.rpc_errors += rpc.errors

    return report


class CpuSampler:
    """1 Hz utilization sampler over a set of CPU complexes.

    Mirrors the paper's "sampling every second throughout the benchmark
    duration": call :meth:`start` at the measurement window's opening,
    :meth:`stop` at its close; per-second samples and the full-window
    delta are then available.
    """

    def __init__(self, env: Environment, cpus: list[CpuComplex],
                 period: float = 1.0) -> None:
        self.env = env
        self.cpus = cpus
        self.period = period
        self._start_snaps: Optional[list[CpuSnapshot]] = None
        self._end_windows: Optional[list[CpuWindow]] = None
        self.samples: dict[str, list[float]] = {c.name: [] for c in cpus}
        self._proc = None
        self._last_snaps: Optional[list[CpuSnapshot]] = None

    def start(self) -> None:
        now = self.env.now
        self._start_snaps = [c.accounting.snapshot(now) for c in self.cpus]
        self._last_snaps = list(self._start_snaps)
        self._proc = self.env.process(self._tick(), name="cpu-sampler")

    def _tick(self) -> Generator[Any, Any, None]:
        from ..sim import Interrupt

        while True:
            try:
                yield self.env.timeout(self.period)
            except Interrupt:
                return
            now = self.env.now
            assert self._last_snaps is not None
            snaps = [c.accounting.snapshot(now) for c in self.cpus]
            for cpu, prev, cur in zip(self.cpus, self._last_snaps, snaps):
                window = CpuWindow.between(cpu, prev, cur)
                self.samples[cpu.name].append(window.utilization_pct)
            self._last_snaps = snaps

    def stop(self) -> list[CpuWindow]:
        """Close the window; returns one :class:`CpuWindow` per CPU."""
        if self._start_snaps is None:
            raise RuntimeError("sampler never started")
        now = self.env.now
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
            self._proc = None
        self._end_windows = [
            CpuWindow.between(cpu, start, cpu.accounting.snapshot(now))
            for cpu, start in zip(self.cpus, self._start_snaps)
        ]
        return self._end_windows
