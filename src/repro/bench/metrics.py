"""Measurement utilities: CPU utilization sampling and breakdowns.

Reproduces the paper's measurement methodology (§5.1/§5.2):

* utilization is sampled at 1 Hz over the benchmark window (htop/iostat
  style) and reported **single-core normalized** (busy-cores × 100 —
  the convention behind Fig. 5's right axis and Fig. 7's percentages);
* per-category breakdowns follow Ceph's thread naming: ``msgr-worker``
  (Messenger), ``bstore`` (ObjectStore), ``tp_osd_tp`` (OSD threads) —
  mutually exclusive categories, as the paper notes;
* context switches are counted per category over the window (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hw.cpu import CpuComplex, CpuSnapshot
from ..msgr.messenger import MSGR_CATEGORY
from ..objectstore.bluestore import BSTORE_CATEGORY
from ..osd.daemon import OSD_CATEGORY
from ..sim import Environment

__all__ = [
    "CpuWindow",
    "CpuSampler",
    "CATEGORY_LABELS",
]

#: Display labels in the paper's vocabulary.
CATEGORY_LABELS = {
    MSGR_CATEGORY: "Messenger",
    BSTORE_CATEGORY: "ObjectStore",
    OSD_CATEGORY: "OSD threads",
    "proxy": "Proxy",
}


@dataclass
class CpuWindow:
    """Accounting deltas of one CPU complex over one window."""

    name: str
    elapsed: float
    busy_by_category: dict[str, float]
    ctx_by_category: dict[str, int]

    @property
    def total_busy(self) -> float:
        return sum(self.busy_by_category.values())

    @property
    def busy_cores(self) -> float:
        """Average busy cores (single-core-normalized utilization /100)."""
        return self.total_busy / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def utilization_pct(self) -> float:
        """The paper's 'CPU utilization (%)': busy-cores × 100."""
        return 100.0 * self.busy_cores

    def category_share(self, category: str) -> float:
        """Fraction of this window's busy time in ``category``."""
        total = self.total_busy
        if total <= 0:
            return 0.0
        return self.busy_by_category.get(category, 0.0) / total

    def breakdown(self) -> dict[str, float]:
        """Category → share of total busy time."""
        total = self.total_busy
        if total <= 0:
            return {}
        return {
            cat: busy / total
            for cat, busy in sorted(self.busy_by_category.items())
        }

    def ctx_rate(self, category: str) -> float:
        """Context switches per second in ``category``."""
        if self.elapsed <= 0:
            return 0.0
        return self.ctx_by_category.get(category, 0) / self.elapsed

    @staticmethod
    def between(
        cpu: CpuComplex, start: CpuSnapshot, end: CpuSnapshot
    ) -> "CpuWindow":
        elapsed = end.time - start.time
        busy = end.busy_since(start)
        ctx = {
            cat: end.ctx_by_category.get(cat, 0)
            - start.ctx_by_category.get(cat, 0)
            for cat in set(end.ctx_by_category) | set(start.ctx_by_category)
        }
        return CpuWindow(cpu.name, elapsed, busy, ctx)

    @staticmethod
    def merge(windows: list["CpuWindow"]) -> "CpuWindow":
        """Aggregate windows (e.g. both storage nodes) by averaging —
        the paper reports per-node averages."""
        if not windows:
            raise ValueError("nothing to merge")
        n = len(windows)
        busy: dict[str, float] = {}
        ctx: dict[str, int] = {}
        for w in windows:
            for cat, b in w.busy_by_category.items():
                busy[cat] = busy.get(cat, 0.0) + b / n
            for cat, c in w.ctx_by_category.items():
                ctx[cat] = ctx.get(cat, 0) + c // n
        return CpuWindow(
            name="+".join(w.name for w in windows),
            elapsed=windows[0].elapsed,
            busy_by_category=busy,
            ctx_by_category=ctx,
        )


class CpuSampler:
    """1 Hz utilization sampler over a set of CPU complexes.

    Mirrors the paper's "sampling every second throughout the benchmark
    duration": call :meth:`start` at the measurement window's opening,
    :meth:`stop` at its close; per-second samples and the full-window
    delta are then available.
    """

    def __init__(self, env: Environment, cpus: list[CpuComplex],
                 period: float = 1.0) -> None:
        self.env = env
        self.cpus = cpus
        self.period = period
        self._start_snaps: Optional[list[CpuSnapshot]] = None
        self._end_windows: Optional[list[CpuWindow]] = None
        self.samples: dict[str, list[float]] = {c.name: [] for c in cpus}
        self._proc = None
        self._last_snaps: Optional[list[CpuSnapshot]] = None

    def start(self) -> None:
        now = self.env.now
        self._start_snaps = [c.accounting.snapshot(now) for c in self.cpus]
        self._last_snaps = list(self._start_snaps)
        self._proc = self.env.process(self._tick(), name="cpu-sampler")

    def _tick(self) -> Generator[Any, Any, None]:
        from ..sim import Interrupt

        while True:
            try:
                yield self.env.timeout(self.period)
            except Interrupt:
                return
            now = self.env.now
            assert self._last_snaps is not None
            snaps = [c.accounting.snapshot(now) for c in self.cpus]
            for cpu, prev, cur in zip(self.cpus, self._last_snaps, snaps):
                window = CpuWindow.between(cpu, prev, cur)
                self.samples[cpu.name].append(window.utilization_pct)
            self._last_snaps = snaps

    def stop(self) -> list[CpuWindow]:
        """Close the window; returns one :class:`CpuWindow` per CPU."""
        if self._start_snaps is None:
            raise RuntimeError("sampler never started")
        now = self.env.now
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
            self._proc = None
        self._end_windows = [
            CpuWindow.between(cpu, start, cpu.accounting.snapshot(now))
            for cpu, start in zip(self.cpus, self._start_snaps)
        ]
        return self._end_windows
