"""Measurement utilities: CPU utilization sampling and breakdowns.

Reproduces the paper's measurement methodology (§5.1/§5.2):

* utilization is sampled at 1 Hz over the benchmark window (htop/iostat
  style) and reported **single-core normalized** (busy-cores × 100 —
  the convention behind Fig. 5's right axis and Fig. 7's percentages);
* per-category breakdowns follow Ceph's thread naming: ``msgr-worker``
  (Messenger), ``bstore`` (ObjectStore), ``tp_osd_tp`` (OSD threads) —
  mutually exclusive categories, as the paper notes;
* context switches are counted per category over the window (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..hw.cpu import CpuComplex, CpuSnapshot
from ..msgr.messenger import MSGR_CATEGORY
from ..objectstore.bluestore import BSTORE_CATEGORY
from ..osd.daemon import OSD_CATEGORY
from ..sim import Environment

__all__ = [
    "CpuWindow",
    "CpuSampler",
    "CATEGORY_LABELS",
    "FaultReport",
    "HealthReport",
    "collect_fault_report",
    "collect_health_report",
]

#: Display labels in the paper's vocabulary.
CATEGORY_LABELS = {
    MSGR_CATEGORY: "Messenger",
    BSTORE_CATEGORY: "ObjectStore",
    OSD_CATEGORY: "OSD threads",
    "proxy": "Proxy",
}


@dataclass
class CpuWindow:
    """Accounting deltas of one CPU complex over one window."""

    name: str
    elapsed: float
    busy_by_category: dict[str, float]
    ctx_by_category: dict[str, int]

    @property
    def total_busy(self) -> float:
        return sum(self.busy_by_category.values())

    @property
    def busy_cores(self) -> float:
        """Average busy cores (single-core-normalized utilization /100)."""
        return self.total_busy / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def utilization_pct(self) -> float:
        """The paper's 'CPU utilization (%)': busy-cores × 100."""
        return 100.0 * self.busy_cores

    def category_share(self, category: str) -> float:
        """Fraction of this window's busy time in ``category``."""
        total = self.total_busy
        if total <= 0:
            return 0.0
        return self.busy_by_category.get(category, 0.0) / total

    def breakdown(self) -> dict[str, float]:
        """Category → share of total busy time."""
        total = self.total_busy
        if total <= 0:
            return {}
        return {
            cat: busy / total
            for cat, busy in sorted(self.busy_by_category.items())
        }

    def ctx_rate(self, category: str) -> float:
        """Context switches per second in ``category``."""
        if self.elapsed <= 0:
            return 0.0
        return self.ctx_by_category.get(category, 0) / self.elapsed

    @staticmethod
    def between(
        cpu: CpuComplex, start: CpuSnapshot, end: CpuSnapshot
    ) -> "CpuWindow":
        elapsed = end.time - start.time
        busy = end.busy_since(start)
        ctx = {
            cat: end.ctx_by_category.get(cat, 0)
            - start.ctx_by_category.get(cat, 0)
            for cat in sorted(set(end.ctx_by_category) | set(start.ctx_by_category))
        }
        return CpuWindow(cpu.name, elapsed, busy, ctx)

    @staticmethod
    def merge(windows: list["CpuWindow"]) -> "CpuWindow":
        """Aggregate windows (e.g. both storage nodes) by averaging —
        the paper reports per-node averages."""
        if not windows:
            raise ValueError("nothing to merge")
        n = len(windows)
        busy: dict[str, float] = {}
        ctx: dict[str, int] = {}
        for w in windows:
            for cat, b in w.busy_by_category.items():
                busy[cat] = busy.get(cat, 0.0) + b / n
            for cat, c in w.ctx_by_category.items():
                ctx[cat] = ctx.get(cat, 0) + c // n
        return CpuWindow(
            name="+".join(w.name for w in windows),
            elapsed=windows[0].elapsed,
            busy_by_category=busy,
            ctx_by_category=ctx,
        )


@dataclass
class FaultReport:
    """Per-layer fault and recovery counters for one cluster run.

    Aggregated across nodes; ``injected`` / ``injected_bytes`` come from
    the cluster's :class:`~repro.faults.FaultPlan` (empty when the run
    was fault-free).  Counters are plain ints/floats so two runs with
    the same plan seed can be compared for byte-identical equality.
    """

    # plan-side: what the fault plan injected, keyed "layer.kind"
    injected: dict[str, int]
    injected_bytes: dict[str, int]
    # dma layer
    dma_failures: int = 0
    dma_failed_bytes: int = 0
    # fallback controller (recovery machinery)
    fallback_failures: int = 0
    fallback_segments: int = 0
    probes_attempted: int = 0
    probes_succeeded: int = 0
    probes_suppressed: int = 0
    recovery_latencies: list[float] = field(default_factory=list)
    # rpc layer
    rpc_timeouts: int = 0
    rpc_retries: int = 0
    rpc_request_losses: int = 0
    rpc_reply_losses: int = 0
    rpc_delays: int = 0
    rpc_duplicates_suppressed: int = 0
    rpc_errors: int = 0
    # net layer
    net_degraded_chunks: int = 0
    # storage layer
    storage_io_errors: int = 0
    storage_failed_bytes: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def as_dict(self) -> dict[str, Any]:
        """Stable, JSON-friendly form (used by the CLI and for run-to-run
        reproducibility comparisons)."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "injected_bytes": dict(sorted(self.injected_bytes.items())),
            "dma": {
                "failures": self.dma_failures,
                "failed_bytes": self.dma_failed_bytes,
            },
            "fallback": {
                "failures": self.fallback_failures,
                "fallback_segments": self.fallback_segments,
                "probes_attempted": self.probes_attempted,
                "probes_succeeded": self.probes_succeeded,
                "probes_suppressed": self.probes_suppressed,
                "recoveries": len(self.recovery_latencies),
                "mean_recovery_latency": self.mean_recovery_latency,
            },
            "rpc": {
                "timeouts": self.rpc_timeouts,
                "retries": self.rpc_retries,
                "request_losses": self.rpc_request_losses,
                "reply_losses": self.rpc_reply_losses,
                "delays": self.rpc_delays,
                "duplicates_suppressed": self.rpc_duplicates_suppressed,
                "errors": self.rpc_errors,
            },
            "net": {"degraded_chunks": self.net_degraded_chunks},
            "storage": {
                "io_errors": self.storage_io_errors,
                "failed_bytes": self.storage_failed_bytes,
            },
        }


def collect_fault_report(cluster: Any) -> FaultReport:
    """Aggregate fault/recovery counters from every layer of ``cluster``."""
    # local import: repro.core imports nothing from bench, but keep the
    # bench package importable without the core stack loaded
    from ..core.proxy_objectstore import ProxyObjectStore

    plan = getattr(cluster, "fault_plan", None)
    snap = plan.snapshot() if plan is not None else {
        "injected": {}, "injected_bytes": {},
    }
    report = FaultReport(
        injected=snap["injected"],
        injected_bytes=snap["injected_bytes"],
    )

    for node in cluster.nodes:
        if node.dma is not None:
            report.dma_failures += node.dma.failures
            report.dma_failed_bytes += node.dma.failed_bytes
        ssd = node.ssd
        report.storage_io_errors += ssd.io_errors
        report.storage_failed_bytes += ssd.failed_bytes
        report.net_degraded_chunks += node.nic.tx.degraded_chunks
        report.net_degraded_chunks += node.nic.rx.degraded_chunks

    for osd in cluster.osds:
        store = osd.store
        if isinstance(store, ProxyObjectStore):
            fb = store.fallback
            report.fallback_failures += fb.failures
            report.fallback_segments += fb.fallback_segments
            report.probes_attempted += fb.probes_attempted
            report.probes_succeeded += fb.probes_succeeded
            report.probes_suppressed += fb.probes_suppressed
            report.recovery_latencies.extend(fb.recovery_latencies)

    for server in getattr(cluster, "proxy_servers", []):
        rpc = server.rpc
        report.rpc_timeouts += rpc.timeouts
        report.rpc_retries += rpc.retries
        report.rpc_request_losses += rpc.request_losses
        report.rpc_reply_losses += rpc.reply_losses
        report.rpc_delays += rpc.delays
        report.rpc_duplicates_suppressed += rpc.duplicates_suppressed
        report.rpc_errors += rpc.errors

    return report


@dataclass
class HealthReport:
    """Cluster-health counters for one run: daemon lifecycle, monitor
    failure-detection activity, client robustness, and the partition /
    recovery machinery.  Complements :class:`FaultReport` (which covers
    the per-layer *injection* counters) with the cluster-level view the
    chaos experiment judges.
    """

    # final OSDMap state
    osds_up: int = 0
    osds_down: int = 0
    osds_out: int = 0
    # PG health (degraded = incomplete acting set or a dirty/absent copy)
    total_pgs: int = 0
    degraded_pgs: int = 0
    # daemon lifecycle
    osd_crashes: int = 0
    osd_restarts: int = 0
    osd_rejoins: int = 0
    misdirected_ops: int = 0
    objects_discarded: int = 0
    # monitor failure detection
    mon_marked_down: int = 0
    mon_marked_out: int = 0
    mon_marked_up: int = 0
    mon_report_down_events: int = 0
    # client robustness
    client_resends: int = 0
    client_timeouts: int = 0
    client_map_refetches: int = 0
    client_ops_failed: int = 0
    # wire
    messages_dropped: int = 0
    partition_drops: int = 0
    partition_dropped_bytes: int = 0
    # recovery
    pulls_sent: int = 0
    pulls_retried: int = 0
    pgs_recovered: int = 0
    objects_recovered: int = 0
    #: per-incident heal latency (incident end → every PG clean),
    #: supplied by the chaos controller when one drove the run
    recovery_to_clean: list[float] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return self.osds_down == 0 and self.degraded_pgs == 0

    @property
    def mean_recovery_to_clean(self) -> float:
        if not self.recovery_to_clean:
            return 0.0
        return sum(self.recovery_to_clean) / len(self.recovery_to_clean)

    def as_dict(self) -> dict[str, Any]:
        """Stable, JSON-friendly form (CLI output and replay digests)."""
        return {
            "osds": {
                "up": self.osds_up,
                "down": self.osds_down,
                "out": self.osds_out,
                "crashes": self.osd_crashes,
                "restarts": self.osd_restarts,
                "rejoins": self.osd_rejoins,
                "misdirected_ops": self.misdirected_ops,
                "objects_discarded": self.objects_discarded,
            },
            "pgs": {
                "total": self.total_pgs,
                "degraded": self.degraded_pgs,
            },
            "monitor": {
                "marked_down": self.mon_marked_down,
                "marked_out": self.mon_marked_out,
                "marked_up": self.mon_marked_up,
                "report_down_events": self.mon_report_down_events,
            },
            "client": {
                "resends": self.client_resends,
                "timeouts": self.client_timeouts,
                "map_refetches": self.client_map_refetches,
                "ops_failed": self.client_ops_failed,
            },
            "wire": {
                "messages_dropped": self.messages_dropped,
                "partition_drops": self.partition_drops,
                "partition_dropped_bytes": self.partition_dropped_bytes,
            },
            "recovery": {
                "pulls_sent": self.pulls_sent,
                "pulls_retried": self.pulls_retried,
                "pgs_recovered": self.pgs_recovered,
                "objects_recovered": self.objects_recovered,
                "to_clean": [round(t, 9) for t in self.recovery_to_clean],
                "mean_to_clean": round(self.mean_recovery_to_clean, 9),
            },
        }


def collect_health_report(
    cluster: Any, controller: Any = None
) -> HealthReport:
    """Aggregate cluster-health counters from every layer of ``cluster``.

    Pass the :class:`~repro.chaos.ChaosController` that drove the run to
    include per-incident recovery-to-clean latencies.
    """
    from ..cluster.builder import BENCH_POOL
    from ..rados.osdmap import OsdState

    report = HealthReport()
    osdmap = cluster.osdmap
    for info in osdmap.osds.values():
        if info.state == OsdState.UP_IN:
            report.osds_up += 1
        elif info.state == OsdState.DOWN_IN:
            report.osds_down += 1
        else:
            report.osds_out += 1

    pool = osdmap.pool_by_name(BENCH_POOL)
    want = min(pool.size, len(cluster.osds))
    for pgid in osdmap.all_pgs(BENCH_POOL):
        report.total_pgs += 1
        acting = osdmap.pg_to_osds(pgid)
        degraded = len(acting) < want
        for osd_id in acting:
            osd = cluster.osds[osd_id]
            pg = osd.pgs.get(pgid)
            if pgid not in osd.member_pgs or (pg and not pg.clean):
                degraded = True
        if degraded:
            report.degraded_pgs += 1

    for osd in cluster.osds:
        report.osd_crashes += osd.crashes
        report.osd_restarts += osd.restarts
        report.osd_rejoins += osd.rejoins
        report.misdirected_ops += osd.misdirected_ops
        report.objects_discarded += osd.objects_discarded
        report.messages_dropped += osd.messenger.messages_dropped
        if osd.recovery is not None:
            report.pulls_sent += osd.recovery.pulls_sent
            report.pulls_retried += osd.recovery.pulls_retried
            report.pgs_recovered += osd.recovery.pgs_recovered
            report.objects_recovered += osd.recovery.objects_recovered

    mon = getattr(cluster, "mon", None)
    if mon is not None:
        report.mon_marked_down = mon.osds_marked_down
        report.mon_marked_out = mon.osds_marked_out
        report.mon_marked_up = mon.osds_marked_up
        report.mon_report_down_events = mon.report_down_events
        report.messages_dropped += mon.messenger.messages_dropped

    client = getattr(cluster, "client", None)
    if client is not None:
        report.client_resends = client.resends
        report.client_timeouts = client.timeouts
        report.client_map_refetches = client.map_refetches
        report.client_ops_failed = client.ops_failed
        report.messages_dropped += client.messenger.messages_dropped

    report.partition_drops = cluster.network.partition_drops
    report.partition_dropped_bytes = cluster.network.partition_dropped_bytes

    if controller is not None:
        report.recovery_to_clean = list(controller.recovery_to_clean)

    return report


class CpuSampler:
    """1 Hz utilization sampler over a set of CPU complexes.

    Mirrors the paper's "sampling every second throughout the benchmark
    duration": call :meth:`start` at the measurement window's opening,
    :meth:`stop` at its close; per-second samples and the full-window
    delta are then available.
    """

    def __init__(self, env: Environment, cpus: list[CpuComplex],
                 period: float = 1.0) -> None:
        self.env = env
        self.cpus = cpus
        self.period = period
        self._start_snaps: Optional[list[CpuSnapshot]] = None
        self._end_windows: Optional[list[CpuWindow]] = None
        self.samples: dict[str, list[float]] = {c.name: [] for c in cpus}
        self._proc = None
        self._last_snaps: Optional[list[CpuSnapshot]] = None

    def start(self) -> None:
        now = self.env.now
        self._start_snaps = [c.accounting.snapshot(now) for c in self.cpus]
        self._last_snaps = list(self._start_snaps)
        self._proc = self.env.process(self._tick(), name="cpu-sampler")

    def _tick(self) -> Generator[Any, Any, None]:
        from ..sim import Interrupt

        while True:
            try:
                yield self.env.timeout(self.period)
            except Interrupt:
                return
            now = self.env.now
            assert self._last_snaps is not None
            snaps = [c.accounting.snapshot(now) for c in self.cpus]
            for cpu, prev, cur in zip(self.cpus, self._last_snaps, snaps):
                window = CpuWindow.between(cpu, prev, cur)
                self.samples[cpu.name].append(window.utilization_pct)
            self._last_snaps = snaps

    def stop(self) -> list[CpuWindow]:
        """Close the window; returns one :class:`CpuWindow` per CPU."""
        if self._start_snaps is None:
            raise RuntimeError("sampler never started")
        now = self.env.now
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
            self._proc = None
        self._end_windows = [
            CpuWindow.between(cpu, start, cpu.accounting.snapshot(now))
            for cpu, start in zip(self.cpus, self._start_snaps)
        ]
        return self._end_windows
