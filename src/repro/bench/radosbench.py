"""RADOS bench: the paper's workload generator (§5.1).

Closed-loop pattern: ``clients`` concurrent I/O contexts each keep one
request outstanding for ``duration`` seconds after a warm-up.  Three op
modes: ``write`` (the paper's workload — uniquely-named objects of
``object_size`` bytes), ``randread`` (uniform random reads over a
prepopulated object set), and ``mixed`` (a seeded read/write coin at
``read_ratio``).  Latency is the end-to-end client-observed response
time; IOPS is completed ops per second; both are also recorded as
per-second series, matching RADOS bench's built-in instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..cluster.builder import BENCH_POOL, Cluster
from ..core.proxy_objectstore import ProxyObjectStore, WriteBreakdown
from ..util.rng import SeededRng
from ..util.stats import RunningStats, TimeSeries, percentile
from ..util.wallclock import perf_counter
from .metrics import (
    CpuSampler,
    CpuWindow,
    FaultReport,
    HealthReport,
    collect_fault_report,
    collect_health_report,
)

__all__ = ["BenchResult", "run_rados_bench", "run_read_bench"]


@dataclass
class BenchResult:
    """Everything one benchmark run produced."""

    object_size: int
    clients: int
    duration: float
    completed_ops: int
    iops: float
    throughput_bytes: float
    latency: RunningStats
    latencies: list[float]
    per_second_ops: TimeSeries
    per_second_latency: TimeSeries
    #: One window per storage node, for the complex the Ceph daemons run
    #: on (host in Baseline, DPU in DoCeph).
    ceph_cpu: list[CpuWindow] = field(default_factory=list)
    #: One window per storage node's *host* complex (Fig. 7's metric).
    host_cpu: list[CpuWindow] = field(default_factory=list)
    #: DoCeph only: per-write latency breakdowns (Table 3).
    breakdowns: list[WriteBreakdown] = field(default_factory=list)
    #: Cumulative fault/recovery counters at the end of the run.
    faults: Optional[FaultReport] = None
    #: Cluster-health counters (daemon lifecycle, monitor activity,
    #: client resends/timeouts, partition drops) at the end of the run.
    health: Optional[HealthReport] = None
    #: Trace report when a :class:`~repro.trace.Tracer` was attached at
    #: build time (None otherwise); window = the measurement window.
    trace: Optional[Any] = None
    #: Wall-clock seconds the simulator spent producing this run
    #: (engine speed, not a modelled observable — varies run to run).
    wall_clock_s: float = 0.0
    #: Kernel events the run scheduled (deterministic per seed).
    engine_events: int = 0

    @property
    def engine_events_per_sec(self) -> float:
        """Simulator throughput while producing this result."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.engine_events / self.wall_clock_s

    @property
    def avg_latency(self) -> float:
        return self.latency.mean

    def latency_percentile(self, p: float) -> float:
        return percentile(sorted(self.latencies), p)

    @property
    def host_utilization_pct(self) -> float:
        """Average host CPU % across storage nodes (Fig. 7)."""
        if not self.host_cpu:
            return 0.0
        return sum(w.utilization_pct for w in self.host_cpu) / len(self.host_cpu)

    @property
    def ceph_cpu_window(self) -> CpuWindow:
        """Merged per-node window for the Ceph complexes (Fig. 5)."""
        return CpuWindow.merge(self.ceph_cpu)


def run_rados_bench(
    cluster: Cluster,
    object_size: int,
    clients: int = 16,
    duration: float = 30.0,
    warmup: float = 3.0,
    op: str = "write",
    read_ratio: float = 0.5,
    prepopulate: int = 64,
    seed: int = 0,
) -> BenchResult:
    """Boot the cluster (if needed) and run one bench configuration.

    ``op`` selects the workload: ``write`` (paper default), ``randread``
    (uniform reads over ``prepopulate`` pre-written objects), or
    ``mixed`` (seeded coin: read with probability ``read_ratio``, else
    write).  The ``write`` path draws no RNG and prepopulates nothing,
    so its event schedule — and every golden digest built on it — is
    byte-identical to the write-only harness.

    The simulation runs until every in-flight request issued inside the
    measurement window completes, so latency tails are never truncated.
    """
    if op not in ("write", "randread", "mixed"):
        raise ValueError(f"unknown op: {op}")
    env = cluster.env
    client = cluster.client
    assert client is not None
    t_wall = perf_counter()
    seq_start = env.events_scheduled

    if client.osdmap is None:
        boot = env.process(cluster.boot(), name="cluster-boot")
        env.run(until=boot)

    rng = None
    if op != "write":
        rng = SeededRng(seed).child("bench").stream(op)

        def prep() -> Generator[Any, Any, None]:
            for i in range(prepopulate):
                yield from client.write_object(
                    BENCH_POOL, f"bench_pre_{i}", object_size
                )

        p = env.process(prep(), name="bench-prepopulate")
        env.run(until=p)

    # reset any breakdown history from earlier runs
    for osd in cluster.osds:
        if isinstance(osd.store, ProxyObjectStore):
            osd.store.reset_breakdowns()

    t_open = env.now + warmup
    t_close = t_open + duration
    latencies: list[float] = []
    lat_stats = RunningStats()
    per_second_ops = TimeSeries(interval=1.0)
    per_second_lat = TimeSeries(interval=1.0)
    completed = [0]

    def io_context(idx: int) -> Generator[Any, Any, None]:
        seq = 0
        while env.now < t_close:
            oid = f"bench_{idx}_{seq}"
            seq += 1
            issued = env.now
            if op == "write":
                result = yield from client.write_object(
                    BENCH_POOL, oid, object_size
                )
            elif op == "randread" or rng.random() < read_ratio:
                result = yield from client.read_object(
                    BENCH_POOL, f"bench_pre_{rng.randrange(prepopulate)}",
                    object_size,
                )
            else:
                result = yield from client.write_object(
                    BENCH_POOL, oid, object_size
                )
            if issued >= t_open:
                latencies.append(result.latency)
                lat_stats.add(result.latency)
                per_second_ops.add(env.now - t_open, 1.0)
                per_second_lat.add(env.now - t_open, result.latency)
                completed[0] += 1

    sampler_hosts = CpuSampler(env, cluster.host_cpus())
    sampler_ceph = CpuSampler(env, cluster.ceph_cpus())

    def measured_run() -> Generator[Any, Any, None]:
        yield env.timeout(t_open - env.now)
        sampler_hosts.start()
        sampler_ceph.start()

    env.process(measured_run(), name="bench-window")
    workers = [
        env.process(io_context(i), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for w in workers:
        env.run(until=w)

    host_windows = sampler_hosts.stop()
    ceph_windows = sampler_ceph.stop()

    breakdowns: list[WriteBreakdown] = []
    for osd in cluster.osds:
        if isinstance(osd.store, ProxyObjectStore):
            breakdowns.extend(osd.store.breakdowns)

    tracer = getattr(cluster, "tracer", None)
    trace = (tracer.report(window=(t_open, env.now))
             if tracer is not None else None)
    measured = max(env.now - t_open, 1e-9)
    return BenchResult(
        object_size=object_size,
        clients=clients,
        duration=duration,
        completed_ops=completed[0],
        iops=completed[0] / measured,
        throughput_bytes=completed[0] * object_size / measured,
        latency=lat_stats,
        latencies=latencies,
        per_second_ops=per_second_ops,
        per_second_latency=per_second_lat,
        ceph_cpu=ceph_windows,
        host_cpu=host_windows,
        breakdowns=breakdowns,
        faults=collect_fault_report(cluster),
        health=collect_health_report(cluster),
        trace=trace,
        wall_clock_s=perf_counter() - t_wall,
        engine_events=env.events_scheduled - seq_start,
    )


def run_read_bench(
    cluster: Cluster,
    object_size: int,
    clients: int = 16,
    duration: float = 20.0,
    warmup: float = 2.0,
    prepopulate: int = 64,
) -> BenchResult:
    """Read benchmark (the §5.5 'future work' path, implemented):
    prepopulates objects with writes, then measures a read-only phase."""
    env = cluster.env
    client = cluster.client
    assert client is not None
    t_wall = perf_counter()
    seq_start = env.events_scheduled
    if client.osdmap is None:
        boot = env.process(cluster.boot(), name="cluster-boot")
        env.run(until=boot)

    def prep() -> Generator[Any, Any, None]:
        for i in range(prepopulate):
            yield from client.write_object(
                BENCH_POOL, f"readbench_{i}", object_size
            )

    p = env.process(prep(), name="read-prepopulate")
    env.run(until=p)

    t_open = env.now + warmup
    t_close = t_open + duration
    latencies: list[float] = []
    lat_stats = RunningStats()
    per_second_ops = TimeSeries(interval=1.0)
    per_second_lat = TimeSeries(interval=1.0)
    completed = [0]

    def io_context(idx: int) -> Generator[Any, Any, None]:
        seq = idx
        while env.now < t_close:
            oid = f"readbench_{seq % prepopulate}"
            seq += clients
            issued = env.now
            result = yield from client.read_object(
                BENCH_POOL, oid, object_size
            )
            if issued >= t_open:
                latencies.append(result.latency)
                lat_stats.add(result.latency)
                per_second_ops.add(env.now - t_open, 1.0)
                per_second_lat.add(env.now - t_open, result.latency)
                completed[0] += 1

    sampler_hosts = CpuSampler(env, cluster.host_cpus())
    sampler_ceph = CpuSampler(env, cluster.ceph_cpus())

    def measured_run() -> Generator[Any, Any, None]:
        yield env.timeout(t_open - env.now)
        sampler_hosts.start()
        sampler_ceph.start()

    env.process(measured_run(), name="bench-window")
    workers = [
        env.process(io_context(i), name=f"read-client-{i}")
        for i in range(clients)
    ]
    for w in workers:
        env.run(until=w)

    host_windows = sampler_hosts.stop()
    ceph_windows = sampler_ceph.stop()
    tracer = getattr(cluster, "tracer", None)
    trace = (tracer.report(window=(t_open, env.now))
             if tracer is not None else None)
    measured = max(env.now - t_open, 1e-9)
    return BenchResult(
        object_size=object_size,
        clients=clients,
        duration=duration,
        completed_ops=completed[0],
        iops=completed[0] / measured,
        throughput_bytes=completed[0] * object_size / measured,
        latency=lat_stats,
        latencies=latencies,
        per_second_ops=per_second_ops,
        per_second_latency=per_second_lat,
        ceph_cpu=ceph_windows,
        host_cpu=host_windows,
        faults=collect_fault_report(cluster),
        health=collect_health_report(cluster),
        trace=trace,
        wall_clock_s=perf_counter() - t_wall,
        engine_events=env.events_scheduled - seq_start,
    )
