"""The one place the ``bench_result_dict`` JSON shape is asserted.

Every ``BENCH_*.json`` producer (bench, perf, fuzz, qos) funnels
through :func:`repro.bench.reporting.write_bench_json`, which calls
:func:`validate_payload` here — so a renamed key ("p95" vs "p90",
"wallclock_s" vs "wall_clock_s") fails loudly at write time instead of
silently forking the format between subsystems.

Standalone module on purpose: ``repro.qos`` and ``repro.fuzz`` can
import it without pulling in ``bench.reporting`` → ``bench.experiments``
(which imports them back — cycle).
"""

from __future__ import annotations

from typing import Any

__all__ = ["SchemaError", "validate_bench_result", "validate_payload"]

_NUMBER = (int, float)

#: Required keys of one bench-result block and their types.
_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "object_size": int,
    "clients": int,
    "duration_s": _NUMBER,
    "completed_ops": int,
    "iops": _NUMBER,
    "throughput_MBps": _NUMBER,
    "latency_s": dict,
    "cpu": dict,
}

#: The latency block is closed: exactly these percentile names.
_LATENCY_KEYS = ("mean", "p50", "p90", "p99", "max")

#: The engine block is closed too (determinism comparisons strip it by
#: name, so a stray key would silently leak non-determinism into diffs).
#: Optional — pre-PR4 committed artifacts predate it — but when present
#: it must carry exactly these keys.
_ENGINE_KEYS = ("wall_clock_s", "events", "events_per_sec")

#: Known cpu sub-keys and their types (extra keys rejected).
_CPU_KEYS: dict[str, type | tuple[type, ...]] = {
    "host_utilization_pct": _NUMBER,
    "ceph_utilization_pct": _NUMBER,
    "ceph_breakdown": dict,
}


class SchemaError(ValueError):
    """A bench-result block deviates from the canonical shape."""


def validate_bench_result(block: dict[str, Any], path: str = "$") -> None:
    """Assert ``block`` matches the ``bench_result_dict`` shape.

    Required keys must exist with the right types; the ``latency_s``,
    ``cpu`` and ``engine`` sub-blocks are *closed* (unknown keys there
    are the classic drift bug).  Extra top-level keys (``faults``,
    ``trace``, ``qos``, …) are allowed — producers extend the payload,
    they must not mutate the core shape.
    """
    problems: list[str] = []
    for key, typ in _REQUIRED.items():
        value = block.get(key)
        if value is None:
            problems.append(f"{path}.{key}: missing")
        elif not isinstance(value, typ) or isinstance(value, bool):
            problems.append(
                f"{path}.{key}: expected {typ}, got {type(value).__name__}"
            )
    latency = block.get("latency_s")
    if isinstance(latency, dict):
        for key in _LATENCY_KEYS:
            if not isinstance(latency.get(key), _NUMBER):
                problems.append(f"{path}.latency_s.{key}: missing or non-numeric")
        for key in latency:
            if key not in _LATENCY_KEYS:
                problems.append(f"{path}.latency_s.{key}: unknown key")
    engine = block.get("engine")
    if isinstance(engine, dict):
        for key in _ENGINE_KEYS:
            if not isinstance(engine.get(key), _NUMBER):
                problems.append(f"{path}.engine.{key}: missing or non-numeric")
        for key in engine:
            if key not in _ENGINE_KEYS:
                problems.append(f"{path}.engine.{key}: unknown key")
    cpu = block.get("cpu")
    if isinstance(cpu, dict):
        if "host_utilization_pct" not in cpu:
            problems.append(f"{path}.cpu.host_utilization_pct: missing")
        for key, value in cpu.items():
            typ = _CPU_KEYS.get(key)
            if typ is None:
                problems.append(f"{path}.cpu.{key}: unknown key")
            elif not isinstance(value, typ) or isinstance(value, bool):
                problems.append(
                    f"{path}.cpu.{key}: expected {typ}, "
                    f"got {type(value).__name__}"
                )
    if problems:
        raise SchemaError("; ".join(problems))


def validate_payload(payload: Any) -> int:
    """Walk ``payload`` and validate every bench-result-shaped block.

    A dict carrying both ``iops`` and ``latency_s`` claims to be a
    bench-result block and must fully conform.  Returns the number of
    blocks validated (0 for payloads with none — fuzz reports etc.).
    """
    checked = 0
    stack: list[tuple[Any, str]] = [(payload, "$")]
    while stack:
        node, path = stack.pop()
        if isinstance(node, dict):
            if "iops" in node and "latency_s" in node:
                validate_bench_result(node, path)
                checked += 1
            for key, value in node.items():
                stack.append((value, f"{path}.{key}"))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                stack.append((value, f"{path}[{i}]"))
    return checked
