"""Cluster-level chaos: seeded crash/partition schedules plus an
acked-write durability checker.

The paper's premise is that the messenger — not the data path — is
where Ceph burns its CPU; the flip side is that the messenger is also
where Ceph absorbs *failure*.  This module exercises that machinery end
to end:

* :class:`ChaosController` replays a seeded schedule of OSD daemon
  crashes (kill → downtime → restart → recover-until-clean) and
  sustained network partitions (via :meth:`repro.hw.net.Network.partition`)
  against a live cluster;
* :class:`DurabilityChecker` records every write the cluster *acked*
  during the run and, after heal, verifies each is readable with the
  exact payload identity that was acked and that all replicas hold
  byte-identical copies;
* :func:`run_chaos` wires both into a small write workload and returns
  a :class:`ChaosReport` whose :meth:`~ChaosReport.fingerprint` is
  byte-identical across two runs with the same seed (determinism is
  part of the contract — a chaos bug you cannot replay is not a
  repro).

Everything random is pre-drawn from ``SeededRng(seed)`` streams, so the
schedule depends only on the seed, never on simulation interleaving.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Generator, Optional

from .cluster.builder import (
    BENCH_POOL,
    Cluster,
    build_baseline_cluster,
    build_doceph_cluster,
)
from .cluster.config import DocephProfile, HardwareProfile
from .rados.client import RadosClient, RadosError
from .sim import Environment
from .util.bufferlist import DataBlob
from .util.rng import SeededRng

__all__ = [
    "AckedWrite",
    "ChaosController",
    "ChaosIncident",
    "ChaosReport",
    "DurabilityChecker",
    "chaos_profile",
    "collect_qos_incidents",
    "collect_wire_incidents",
    "run_chaos",
]


# --------------------------------------------------------------- durability


@dataclass(frozen=True)
class AckedWrite:
    """One write the cluster acknowledged as durable."""

    pool: str
    oid: str
    size: int
    #: Payload identity (the blob's root id) at ack time.  Raw blob ids
    #: are process-global counters, so they are never compared across
    #: runs — only against what the cluster stored *within* this run.
    root_id: int
    version: int
    acked_at: float


class DurabilityChecker:
    """Records acked writes during chaos; verifies them after heal.

    The invariant: an acknowledged write survives any schedule of
    crashes, restarts, and partitions the cluster healed from.  After
    the run, every recorded object must (a) be readable through the
    client with the acked size and payload identity, and (b) be held
    byte-identically — same (size, content identity) — by every acting
    replica's ObjectStore.

    Recording is last-ack-wins, so overwrite workloads verify the most
    recently acknowledged payload.
    """

    def __init__(self, cluster: Cluster, pool: str = BENCH_POOL) -> None:
        self.cluster = cluster
        self.pool = pool
        self.acked: dict[str, AckedWrite] = {}
        self.writes_recorded = 0
        self.violations: list[str] = []
        self.objects_verified = 0
        self.replicas_compared = 0

    # -- record -----------------------------------------------------------------
    def record(self, oid: str, size: int, blob: DataBlob,
               version: int, now: float) -> None:
        """Call at the moment the client sees the write ack."""
        self.writes_recorded += 1
        self.acked[oid] = AckedWrite(
            pool=self.pool, oid=oid, size=size,
            root_id=blob.root_id, version=version, acked_at=now,
        )

    # -- verify -----------------------------------------------------------------
    def verify(self, client: RadosClient) -> Generator[Any, Any, list[str]]:
        """Read back every acked write through ``client`` (run as a sim
        process, after the cluster healed).  Appends human-readable
        violation strings to :attr:`violations` and returns them."""
        for oid in sorted(self.acked):
            rec = self.acked[oid]
            try:
                st = yield from client.stat_object(self.pool, oid)
            except RadosError as exc:
                self.violations.append(
                    f"{oid}: stat failed after heal ({exc})"
                )
                continue
            if st.result != 0:
                self.violations.append(
                    f"{oid}: acked write missing (stat result {st.result})"
                )
                continue
            stat = st.attachment
            if stat is not None and stat.size != rec.size:
                self.violations.append(
                    f"{oid}: size {stat.size} != acked {rec.size}"
                )
                continue
            try:
                rd = yield from client.read_object(self.pool, oid, rec.size)
            except RadosError as exc:
                self.violations.append(
                    f"{oid}: read failed after heal ({exc})"
                )
                continue
            if rd.result != 0 or rd.data is None:
                self.violations.append(
                    f"{oid}: acked write unreadable (result {rd.result})"
                )
                continue
            if rd.data.length != rec.size:
                self.violations.append(
                    f"{oid}: short read {rd.data.length} != {rec.size}"
                )
                continue
            content = rd.data.root_id
            if content != rec.root_id:
                self.violations.append(
                    f"{oid}: payload identity {content} != acked "
                    f"{rec.root_id} (lost or clobbered write)"
                )
                continue
            # Only objects that passed every check count as verified; a
            # violated object must never inflate the pass counter.
            self.objects_verified += 1
        self.check_replicas()
        return self.violations

    def check_replicas(self) -> list[str]:
        """Compare every acked object across its acting replicas'
        ObjectStores — same size and content identity everywhere.
        Synchronous: inspects BlueStore state directly (the disk view,
        not the wire view)."""
        cluster = self.cluster
        osdmap = cluster.osdmap
        for oid in sorted(self.acked):
            rec = self.acked[oid]
            pgid = osdmap.object_to_pg(self.pool, oid)
            coll = str(pgid)
            acting = osdmap.pg_to_osds(pgid)
            if not acting:
                self.violations.append(f"{oid}: no acting set after heal")
                continue
            copies: list[tuple[int, int, int]] = []  # (osd, size, content)
            for osd_id in acting:
                store = cluster.stores[osd_id]
                onode = store.collections.get(coll, {}).get(oid)
                if onode is None:
                    self.violations.append(
                        f"{oid}: replica osd.{osd_id} has no copy"
                    )
                    continue
                copies.append((osd_id, onode.size, onode.content_id))
            self.replicas_compared += len(copies)
            if len({(size, content) for _, size, content in copies}) > 1:
                detail = ", ".join(
                    f"osd.{o}=({s}B,{c})" for o, s, c in copies
                )
                self.violations.append(
                    f"{oid}: replicas diverge after heal: {detail}"
                )
            elif copies and copies[0][2] != rec.root_id:
                self.violations.append(
                    f"{oid}: stored identity {copies[0][2]} != acked "
                    f"{rec.root_id}"
                )
        return self.violations


# --------------------------------------------------------------- controller


@dataclass(frozen=True)
class ChaosIncident:
    """One pre-drawn entry of the chaos schedule."""

    kind: str  # "crash" | "partition"
    target: int  # osd id
    duration: float  # downtime / partition window length
    gap: float  # settle pause before the next incident


class ChaosController:
    """Replays a seeded crash/partition schedule against a cluster.

    Incidents run sequentially: each one is injected, held for its
    drawn duration, healed, and then the controller waits for every PG
    to return to clean (bounded by ``settle_timeout``) before moving
    on.  The whole schedule is drawn up front from the seed, so the
    sequence of incidents is independent of simulation timing.
    """

    def __init__(
        self,
        cluster: Cluster,
        seed: int = 0,
        crashes: int = 3,
        partitions: int = 1,
        start_after: float = 2.0,
        downtime: tuple[float, float] = (2.0, 5.0),
        partition_window: tuple[float, float] = (3.0, 6.0),
        gap: tuple[float, float] = (1.0, 3.0),
        settle_timeout: float = 120.0,
        poll: float = 0.25,
    ) -> None:
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.start_after = start_after
        self.settle_timeout = settle_timeout
        self.poll = poll
        self.done = False

        # statistics / trace
        self.events: list[tuple[str, int, float]] = []
        self.recovery_to_clean: list[float] = []
        self.settle_timeouts = 0

        rng = SeededRng(seed).stream("chaos")
        kinds = ["crash"] * crashes + ["partition"] * partitions
        rng.shuffle(kinds)
        n_osds = len(cluster.osds)
        self.schedule: list[ChaosIncident] = []
        for kind in kinds:
            lo, hi = downtime if kind == "crash" else partition_window
            self.schedule.append(ChaosIncident(
                kind=kind,
                target=rng.randrange(n_osds),
                duration=rng.uniform(lo, hi),
                gap=rng.uniform(*gap),
            ))
        self._proc = None

    def start(self) -> Any:
        """Kick off the schedule; returns the controller process."""
        self._proc = self.env.process(self.run(), name="chaos-controller")
        return self._proc

    def run(self) -> Generator[Any, Any, None]:
        env = self.env
        yield env.timeout(self.start_after)
        for incident in self.schedule:
            if incident.kind == "crash":
                yield from self._run_crash(incident)
            else:
                yield from self._run_partition(incident)
            yield env.timeout(incident.gap)
        yield from self.wait_all_clean()
        self.done = True

    # -- incidents --------------------------------------------------------------
    def _run_crash(
        self, incident: ChaosIncident
    ) -> Generator[Any, Any, None]:
        env = self.env
        osd = self.cluster.osds[incident.target]
        self.events.append(("crash", osd.osd_id, env.now))
        osd.crash()
        yield env.timeout(incident.duration)
        t0 = env.now
        self.events.append(("restart", osd.osd_id, env.now))
        yield from osd.restart()
        clean = yield from self.wait_all_clean()
        # A timed-out settle is not a recovery sample: recording
        # settle_timeout seconds as "recovery" would skew the
        # fingerprinted stats (the timeout is already counted).
        if clean:
            self.recovery_to_clean.append(env.now - t0)

    def _run_partition(
        self, incident: ChaosIncident
    ) -> Generator[Any, Any, None]:
        env = self.env
        osd = self.cluster.osds[incident.target]
        # Isolate the OSD's storage node.  The monitor sits at its own
        # management address ("mon0"), so the rest of the cluster keeps
        # its quorum view while the islanded OSD goes silent.
        addr = self.cluster.osdmap.address_of(osd.osd_id)
        self.events.append(("partition", osd.osd_id, env.now))
        self.cluster.network.partition(
            {addr}, env.now, env.now + incident.duration
        )
        yield env.timeout(incident.duration)
        t0 = env.now
        self.events.append(("heal", osd.osd_id, env.now))
        clean = yield from self.wait_all_clean()
        if clean:
            self.recovery_to_clean.append(env.now - t0)

    # -- settle -----------------------------------------------------------------
    def wait_all_clean(self) -> Generator[Any, Any, bool]:
        """Poll until every OSD is up and every PG clean (bounded)."""
        deadline = self.env.now + self.settle_timeout
        while self.env.now < deadline:
            if self.all_clean():
                return True
            yield self.env.timeout(self.poll)
        self.settle_timeouts += 1
        return False

    def all_clean(self) -> bool:
        """Every daemon alive + marked up, every PG fully replicated and
        clean on each acting member — and no acting member behind any
        holder's content generation (an unfinished merge of interim
        writes is not clean, even if the member's own flag says so)."""
        cluster = self.cluster
        osdmap = cluster.osdmap
        for osd in cluster.osds:
            if not osd.alive or not osdmap.is_up(osd.osd_id):
                return False
        pool = osdmap.pool_by_name(BENCH_POOL)
        for pgid in osdmap.all_pgs(BENCH_POOL):
            acting = osdmap.pg_to_osds(pgid)
            if len(acting) < min(pool.size, len(cluster.osds)):
                return False
            max_gen = max(
                (osdmap.holder_gen(pgid, o)
                 for o in osdmap.holders_of(pgid)),
                default=0,
            )
            for osd_id in acting:
                osd = cluster.osds[osd_id]
                if pgid not in osd.member_pgs:
                    return False
                pg = osd.pgs.get(pgid)
                if pg is not None and not pg.clean:
                    return False
                if osdmap.holder_gen(pgid, osd_id) < max_gen:
                    return False
        return True


# --------------------------------------------------------------- experiment


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    mode: str
    seed: int
    sim_elapsed: float
    writes_acked: int
    writes_failed: int
    objects_verified: int
    replicas_compared: int
    violations: list[str]
    incidents: list[tuple[str, int, float]]
    recovery_to_clean: list[float]
    settle_timeouts: int
    max_op_latency: float
    latency_bound: float
    acked_objects: dict[str, tuple[int, int]] = field(default_factory=dict)
    health: Optional[dict[str, Any]] = None
    #: aggregated messenger wire-integrity counters (crc_rejected,
    #: dup_suppressed, retransmit, reset, ...) across every endpoint
    wire_incidents: dict[str, int] = field(default_factory=dict)
    #: aggregated QoS-plane counters when the run was multi-tenant
    #: (mClock phase counts, limit deferrals, admission sheds) — all
    #: zero / empty for single-tenant runs
    qos_incidents: dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (not self.violations and self.settle_timeouts == 0
                and self.max_op_latency <= self.latency_bound)

    def fingerprint(self) -> str:
        """Replay digest: identical for two runs with the same seed.

        Includes the incident trace, per-object outcomes, and the
        robustness counters; excludes raw blob/content ids (allocated
        from a process-global counter) and anything else that is not a
        pure function of the seed.
        """
        doc = {
            "mode": self.mode,
            "seed": self.seed,
            "sim_elapsed": round(self.sim_elapsed, 9),
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "violations": sorted(self.violations),
            "incidents": [
                [kind, target, round(t, 9)]
                for kind, target, t in self.incidents
            ],
            "recovery_to_clean": [
                round(t, 9) for t in self.recovery_to_clean
            ],
            "acked_objects": {
                oid: [size, version]
                for oid, (size, version) in sorted(
                    self.acked_objects.items()
                )
            },
            "health": self.health,
            "wire_incidents": dict(sorted(self.wire_incidents.items())),
            "qos_incidents": dict(sorted(self.qos_incidents.items())),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "passed": self.passed,
            "sim_elapsed": self.sim_elapsed,
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "objects_verified": self.objects_verified,
            "replicas_compared": self.replicas_compared,
            "violations": list(self.violations),
            "incidents": [list(e) for e in self.incidents],
            "recovery_to_clean": list(self.recovery_to_clean),
            "settle_timeouts": self.settle_timeouts,
            "max_op_latency": self.max_op_latency,
            "latency_bound": self.latency_bound,
            "fingerprint": self.fingerprint(),
            "health": self.health,
            "wire_incidents": dict(sorted(self.wire_incidents.items())),
            "qos_incidents": dict(sorted(self.qos_incidents.items())),
        }


def collect_qos_incidents(cluster: Cluster) -> dict[str, int]:
    """Sum the QoS-plane counters: every OSD queue's mClock stats plus
    the client's admission sheds.  All zeros when QoS was never
    configured (the counters still exist on every queue)."""
    totals: dict[str, int] = {}
    for osd in cluster.osds:
        for key, count in osd.qos_stats().items():
            totals[key] = totals.get(key, 0) + count
    if cluster.client is not None:
        totals["ops_shed"] = getattr(cluster.client, "ops_shed", 0)
    return totals


def collect_wire_incidents(cluster: Cluster) -> dict[str, int]:
    """Sum every endpoint messenger's ``wire_stats`` counters."""
    totals: dict[str, int] = {}
    messengers = [osd.messenger for osd in cluster.osds]
    if cluster.mon is not None:
        messengers.append(cluster.mon.messenger)
    if cluster.client is not None:
        messengers.append(cluster.client.messenger)
    for msgr in messengers:
        for key, count in msgr.wire_stats.items():
            totals[key] = totals.get(key, 0) + count
    return totals


def chaos_profile(mode: str = "baseline", **overrides: Any) -> HardwareProfile:
    """The chaos testbed: three storage nodes (so a single failure
    leaves a full acting set), client timeouts armed, fast monitor
    detection, scrubbing off.  ``overrides`` replace any field."""
    base: HardwareProfile
    if mode == "doceph":
        base = DocephProfile()
    else:
        base = HardwareProfile()
    params: dict[str, Any] = dict(
        storage_nodes=3,
        replication=2,
        pg_num=16,
        client_op_timeout=2.0,
        client_max_attempts=8,
        client_retry_backoff=0.25,
        mon_down_grace=2.0,
        mon_out_interval=12.0,
        mon_check_period=0.5,
        recovery_tick=0.5,
        scrub_interval=None,
    )
    params.update(overrides)
    return replace(base, **params)


def _client_latency_bound(profile: HardwareProfile) -> float:
    """No-hang contract: the worst case is ``max_attempts`` rounds, each
    paying an op timeout, a (bounded) map refetch, and linear backoff —
    plus slack for queueing behind recovery traffic."""
    n = profile.client_max_attempts
    timeout = profile.client_op_timeout or 0.0
    backoff = profile.client_retry_backoff * n * (n + 1) / 2
    return n * 2.0 * timeout + backoff + 5.0


def run_chaos(
    mode: str = "baseline",
    seed: int = 0,
    duration: float = 10.0,
    clients: int = 2,
    object_size: int = 1 << 20,
    crashes: int = 3,
    partitions: int = 1,
    profile: Optional[HardwareProfile] = None,
    tracer: Any = None,
    fault_plan: Any = None,
    think_time: float = 0.0,
    tenants: int = 0,
) -> ChaosReport:
    """One full chaos experiment: boot, write under a seeded schedule of
    crashes and partitions, heal, then verify every acked write.

    Pass a :class:`~repro.trace.Tracer` to capture spans across the run
    (crashed ops show error spans, resends show retry links); tracing
    never changes the simulated schedule.  Pass a
    :class:`~repro.faults.FaultPlan` to layer per-operation faults
    (dma/rpc/net/storage) under the crash/partition schedule — the
    fuzzer composes both; the plan's injection counters are readable on
    the plan object afterwards.  ``think_time`` inserts a fixed pause
    between consecutive writes of each I/O context (open-loop-ish
    pacing); the default ``0.0`` preserves the original closed-loop
    event sequence byte-for-byte.

    ``tenants`` > 0 turns the run multi-tenant: each I/O context is
    tagged ``t{idx % tenants}``, every OSD gets a modest per-tenant
    mClock spec, and a deliberately tight admission window is attached
    so overload sheds (``-EAGAIN``) actually fire under chaos — those
    land in :attr:`ChaosReport.qos_incidents` for the fuzzer's
    ``qos.*`` coverage keys.  The default ``0`` installs nothing and
    keeps the event sequence byte-identical to pre-QoS runs."""
    profile = profile or chaos_profile(mode)
    env = Environment()
    if mode == "doceph":
        cluster = build_doceph_cluster(
            env, profile, fault_plan=fault_plan, tracer=tracer
        )
    else:
        cluster = build_baseline_cluster(
            env, profile, fault_plan=fault_plan, tracer=tracer
        )
    client = cluster.client
    assert client is not None

    boot = env.process(cluster.boot(), name="cluster-boot")
    env.run(until=boot)

    checker = DurabilityChecker(cluster)
    controller = ChaosController(
        cluster, seed=seed, crashes=crashes, partitions=partitions,
    )

    tenant_names: list[Optional[str]] = [None] * clients
    if tenants > 0:
        # Lazy imports: repro.qos pulls in the bench stack, which this
        # module otherwise only touches at report-collection time.
        from .osd.opqueue import QosSpec
        from .qos.admission import AdmissionController

        tenant_names = [f"t{i % tenants}" for i in range(clients)]
        n_osds = len(cluster.osds)
        admission = AdmissionController()
        for t in range(tenants):
            spec = QosSpec(
                reservation=5.0 / n_osds,
                weight=float(1 + t % 4),
                limit=50.0 / n_osds,
            )
            for osd in cluster.osds:
                osd.set_qos(f"t{t}", spec)
            # Window of 1 per tenant: any overlap between contexts
            # sharing a tenant (or a slow op under faults) sheds.
            admission.set_window(f"t{t}", 1)
        client.admission = admission

    bound = _client_latency_bound(profile)
    t_end = env.now + duration
    failed = [0]
    max_latency = [0.0]

    def io_context(idx: int) -> Generator[Any, Any, None]:
        seq = 0
        while env.now < t_end or not controller.done:
            oid = f"chaos_{idx}_{seq}"
            seq += 1
            blob = DataBlob(object_size)
            try:
                res = yield from client.write_object(
                    BENCH_POOL, oid, object_size, data=blob,
                    tenant=tenant_names[idx],
                )
            except RadosError as exc:
                # Admission sheds (-EAGAIN) are a QoS outcome, not an
                # I/O failure — the client's ops_shed counter carries
                # them into qos_incidents.  The gate raises before any
                # sim yield, so back off for a beat or the closed loop
                # would retry forever at the same simulated instant.
                if exc.result == -11:
                    yield env.timeout(0.001)
                else:
                    failed[0] += 1
            else:
                max_latency[0] = max(max_latency[0], res.latency)
                checker.record(oid, object_size, blob, res.version, env.now)
            if think_time > 0.0:
                yield env.timeout(think_time)

    chaos_proc = controller.start()
    workers = [
        env.process(io_context(i), name=f"chaos-client-{i}")
        for i in range(clients)
    ]
    env.run(until=chaos_proc)
    for w in workers:
        env.run(until=w)

    # final heal: per-operation fault injection stops here — the oracle
    # promises "once the faults stop and the cluster settles, every
    # acked write is intact", and an open-ended probabilistic spec
    # would otherwise fail the verifier's own reads forever.  Recovery
    # triggered by the last client writes may still be trailing; settle
    # before judging durability.
    if fault_plan is not None:
        fault_plan.quiesce(env.now)
    settle = env.process(controller.wait_all_clean(), name="chaos-settle")
    env.run(until=settle)

    verify = env.process(checker.verify(client), name="chaos-verify")
    env.run(until=verify)

    from .bench.metrics import collect_health_report

    health = collect_health_report(cluster, controller).as_dict()
    return ChaosReport(
        mode=mode,
        seed=seed,
        sim_elapsed=env.now,
        writes_acked=checker.writes_recorded,
        writes_failed=failed[0],
        objects_verified=checker.objects_verified,
        replicas_compared=checker.replicas_compared,
        violations=list(checker.violations),
        incidents=list(controller.events),
        recovery_to_clean=list(controller.recovery_to_clean),
        settle_timeouts=controller.settle_timeouts,
        max_op_latency=max_latency[0],
        latency_bound=bound,
        acked_objects={
            oid: (rec.size, rec.version)
            for oid, rec in checker.acked.items()
        },
        health=health,
        wire_incidents=collect_wire_incidents(cluster),
        qos_incidents=collect_qos_incidents(cluster) if tenants else {},
    )
