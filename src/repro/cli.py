"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro fig7                   # one experiment
    python -m repro all                    # every table and figure
    python -m repro bench --size 4M --clients 16 --mode doceph
    python -m repro bench --faults "dma,p=0.3" --fault-seed 7
    python -m repro faults --plan "rpc:reply_loss,p=0.2" --size 4M
    python -m repro chaos --seeds 0,1,2 --crashes 3 --partitions 1 --replay
    python -m repro fuzz --seed 0 --iterations 25 --corpus corpus
    python -m repro fuzz --replay corpus/crash-missing-0123abcd.plan
    python -m repro trace --mode doceph --size 1M --out trace.json --replay
    python -m repro qos --strategy full-osd --tenants 8 --rate 250 --replay
    python -m repro qos --sweep --strategies baseline,full-osd
    python -m repro fig8 --duration 20     # longer, steadier runs

Each experiment prints the paper-vs-measured table that the benchmark
suite also asserts on, and publishes a machine-readable
``BENCH_<name>.json`` under ``--json-dir`` (default
``benchmarks/results``; ``--no-json`` disables).  ``--faults`` takes
the spec format of ``repro.faults`` (``layer[:kind],key=value,...``
joined with ``;``).  ``trace`` runs a bench with the
:mod:`repro.trace` tracer attached and exports Chrome/Perfetto
trace-event JSON.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, Sequence

from .bench import (
    bench_result_dict,
    comparison_point_dict,
    experiment_fallback,
    experiment_fig5,
    experiment_table2,
    experiment_table3,
    fig5_row_dict,
    table2_dict,
    table3_row_dict,
    write_bench_json,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_table2,
    render_table3,
    run_comparison_sweep,
    run_rados_bench,
)
from .cluster import (
    STRATEGY_NAMES,
    build_baseline_cluster,
    build_doceph_cluster,
)
from .faults import FaultPlan
from .hw import StorageError
from .sim import Environment

__all__ = ["main"]


def _parse_size(text: str) -> int:
    """'4M', '512K', '1048576' → bytes."""
    text = text.strip().upper()
    multiplier = 1
    if text.endswith("K"):
        multiplier, text = 1024, text[:-1]
    elif text.endswith("M"):
        multiplier, text = 1 << 20, text[:-1]
    elif text.endswith("G"):
        multiplier, text = 1 << 30, text[:-1]
    try:
        return int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size: {text!r}") from None


def _publish(args: argparse.Namespace, name: str, payload: dict) -> None:
    """Write BENCH_<name>.json unless the user opted out."""
    if getattr(args, "no_json", False):
        return
    out_dir = getattr(args, "json_dir", "benchmarks/results")
    write_bench_json(name, payload, out_dir)


def _cmd_fig5(args: argparse.Namespace) -> str:
    rows = experiment_fig5(duration=args.duration)
    _publish(args, "fig5", {"rows": [fig5_row_dict(r) for r in rows]})
    return render_fig5(rows)


def _cmd_fig6(args: argparse.Namespace) -> str:
    rows = experiment_fig5(duration=args.duration)
    _publish(args, "fig6", {"rows": [fig5_row_dict(r) for r in rows]})
    return render_fig6(rows)


def _cmd_table2(args: argparse.Namespace) -> str:
    result = experiment_table2(duration=args.duration)
    _publish(args, "table2", table2_dict(result))
    return render_table2(result)


def _cmd_fig7(args: argparse.Namespace) -> str:
    points = run_comparison_sweep(duration=args.duration)
    _publish(args, "fig7",
             {"points": [comparison_point_dict(p) for p in points]})
    return render_fig7(points)


def _cmd_fig8(args: argparse.Namespace) -> str:
    points = run_comparison_sweep(duration=args.duration)
    _publish(args, "fig8",
             {"points": [comparison_point_dict(p) for p in points]})
    return render_fig8(points)


def _cmd_table3(args: argparse.Namespace) -> str:
    rows = experiment_table3(duration=args.duration)
    _publish(args, "table3", {"rows": [table3_row_dict(r) for r in rows]})
    return render_table3(rows)


def _cmd_fig9(args: argparse.Namespace) -> str:
    rows = experiment_table3(duration=args.duration)
    _publish(args, "fig9", {"rows": [table3_row_dict(r) for r in rows]})
    return render_fig9(rows)


def _cmd_fig10(args: argparse.Namespace) -> str:
    points = run_comparison_sweep(duration=args.duration)
    _publish(args, "fig10",
             {"points": [comparison_point_dict(p) for p in points]})
    return render_fig10(points)


_EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "table2": _cmd_table2,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "table3": _cmd_table3,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
}


def _cmd_all(args: argparse.Namespace) -> str:
    return "\n\n".join(fn(args) for fn in _EXPERIMENTS.values())


def _cmd_bench(args: argparse.Namespace) -> str:
    builder = (build_doceph_cluster if args.mode == "doceph"
               else build_baseline_cluster)
    plan = None
    if args.faults:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    tracer = None
    if args.trace:
        from .trace import Tracer
        tracer = Tracer(seed=args.fault_seed)
    env = Environment()
    cluster = builder(env, fault_plan=plan, tracer=tracer)
    result = run_rados_bench(
        cluster, object_size=args.size, clients=args.clients,
        duration=args.duration,
    )
    lines = [
        f"mode={args.mode} size={args.size >> 20}MB clients={args.clients}"
        f" duration={args.duration:.0f}s",
        f"  iops:        {result.iops:.1f}",
        f"  throughput:  {result.throughput_bytes / 1e6:.1f} MB/s",
        f"  avg latency: {result.avg_latency * 1e3:.1f} ms"
        f" (p99 {result.latency_percentile(99) * 1e3:.1f} ms)",
        f"  host CPU:    {result.host_utilization_pct:.1f} %",
    ]
    if plan is not None and result.faults is not None:
        lines.append("  fault report:")
        lines.append(
            "    " + json.dumps(result.faults.as_dict(), sort_keys=True)
        )
    if result.trace is not None:
        lines.append("  trace:")
        lines += ["    " + ln
                  for ln in result.trace.flame_summary().splitlines()]
    _publish(args, f"bench_{args.mode}_{args.size >> 20}M",
             bench_result_dict(result))
    return "\n".join(lines)


def _cmd_faults(args: argparse.Namespace) -> str:
    """§4 robustness: DoCeph under an injected fault plan vs fault-free."""
    res = experiment_fallback(
        faults=args.plan, seed=args.fault_seed, object_size=args.size,
        duration=args.duration, clients=args.clients,
    )
    report = res.faulty.faults
    assert report is not None
    _publish(args, "fallback", {
        "plan": str(args.plan),
        "seed": res.plan.seed,
        "iops_retained": round(res.iops_retained, 9),
        "host_cpu_increase_pct": round(res.host_cpu_increase_pct, 9),
        "clean": bench_result_dict(res.clean),
        "faulty": bench_result_dict(res.faulty),
    })
    lines = [
        f"fault plan: {args.plan!r} (seed {res.plan.seed})",
        f"  clean : {res.clean.iops:.1f} IOPS,"
        f" host CPU {res.clean.host_utilization_pct:.1f} %",
        f"  faulty: {res.faulty.iops:.1f} IOPS,"
        f" host CPU {res.faulty.host_utilization_pct:.1f} %",
        f"  IOPS retained: {100 * res.iops_retained:.1f} %"
        f"  host CPU +{res.host_cpu_increase_pct:.1f} pts",
        "  fault report:",
        "    " + json.dumps(report.as_dict(), sort_keys=True),
    ]
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> tuple[str, bool]:
    """Traced bench run: flame summary, critical path, CPU cross-check,
    Perfetto export.  Returns (text, ok); ``--replay`` reruns the same
    seed and requires an identical trace fingerprint."""
    from .trace import Tracer

    builder = (build_doceph_cluster if args.mode == "doceph"
               else build_baseline_cluster)

    def run_once():
        plan = (FaultPlan.parse(args.faults, seed=args.fault_seed)
                if args.faults else None)
        env = Environment()
        tracer = Tracer(seed=args.seed)
        cluster = builder(env, fault_plan=plan, tracer=tracer)
        return run_rados_bench(
            cluster, object_size=args.size, clients=args.clients,
            duration=args.duration,
        )

    result = run_once()
    rep = result.trace
    assert rep is not None
    fingerprint = rep.fingerprint()
    lines = [
        f"mode={args.mode} size={args.size >> 20}MB clients={args.clients}"
        f" duration={args.duration:.0f}s seed={args.seed}",
        f"  iops:        {result.iops:.1f}",
        f"  throughput:  {result.throughput_bytes / 1e6:.1f} MB/s",
        f"  avg latency: {result.avg_latency * 1e3:.1f} ms",
        "",
        rep.flame_summary(),
        "",
        "per-category busy seconds, span-attributed vs sampled:",
    ]
    for cat, (traced, sampled) in sorted(
        rep.cpu_crosscheck(result.ceph_cpu + result.host_cpu).items()
    ):
        dev = (abs(traced - sampled) / sampled * 100) if sampled else 0.0
        lines.append(
            f"  {cat:12s} traced={traced:.4f}s sampled={sampled:.4f}s"
            f" ({dev:.2f}% off)"
        )
    lines.append(f"trace fingerprint: {fingerprint}")
    ok = True
    if args.replay:
        fp2 = run_once().trace.fingerprint()
        if fp2 == fingerprint:
            lines.append("replay: identical fingerprint")
        else:
            lines.append(f"replay: MISMATCH {fp2} — NON-DETERMINISTIC")
            ok = False
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(rep.to_perfetto(), fh)
        lines.append(f"perfetto trace written to {args.out}"
                     f" ({len(rep.spans)} spans)")
    return "\n".join(lines), ok


def _cmd_chaos(args: argparse.Namespace) -> tuple[str, bool]:
    """Seeded crash/partition chaos runs + durability verdict.

    Returns (report text, all passed).  With ``--replay`` each seed runs
    twice and the two fingerprints must match byte-for-byte."""
    from .chaos import run_chaos

    seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
    lines = []
    ok = True
    for seed in seeds:
        runs = 2 if args.replay else 1
        reports = [
            run_chaos(
                mode=args.mode, seed=seed, duration=args.duration,
                clients=args.clients, object_size=args.size,
                crashes=args.crashes, partitions=args.partitions,
            )
            for _ in range(runs)
        ]
        rep = reports[0]
        fps = [r.fingerprint() for r in reports]
        replay_ok = len(set(fps)) == 1
        ok = ok and rep.passed and replay_ok
        lines += [
            f"seed {seed}: {'PASS' if rep.passed else 'FAIL'}"
            f" ({rep.writes_acked} acked, {rep.writes_failed} failed,"
            f" {len(rep.incidents)} incidents,"
            f" {len(rep.violations)} violations)",
            f"  max op latency {rep.max_op_latency:.2f}s"
            f" (bound {rep.latency_bound:.2f}s),"
            f" mean recovery-to-clean "
            f"{sum(rep.recovery_to_clean) / len(rep.recovery_to_clean):.2f}s"
            if rep.recovery_to_clean else
            f"  max op latency {rep.max_op_latency:.2f}s"
            f" (bound {rep.latency_bound:.2f}s)",
            f"  fingerprint {fps[0]}"
            + ("" if not args.replay else
               (" (replay identical)" if replay_ok
                else f" != replay {fps[1]} — NON-DETERMINISTIC")),
        ]
        for v in rep.violations:
            lines.append(f"  violation: {v}")
        if args.json:
            lines.append("  " + json.dumps(rep.as_dict(), sort_keys=True))
    lines.append("chaos: " + ("all seeds passed" if ok else "FAILED"))
    return "\n".join(lines), ok


def _cmd_perf(args: argparse.Namespace) -> tuple[str, int]:
    """Engine-speed benchmark: replay a scenario, report events/sec.

    Returns (report text, exit code): 3 when a digest check fails (the
    replay diverged from ``--baseline``, or the detached/noop hook runs
    disagreed), 4 when wall-clock regressed more than
    ``--max-regression`` times the baseline."""
    from . import perf as perfmod

    tracer = None
    if args.trace:
        from .trace import Tracer
        tracer = Tracer(seed=args.seed)
    result = perfmod.measure(
        args.scenario, seed=args.seed, repeats=args.repeats,
        profile=args.profile, tracer=tracer,
    )
    lines = [perfmod.format_perf_report(result)]
    code = 0

    if args.hook_overhead:
        hov = perfmod.measure_hook_overhead(
            args.scenario, seed=args.seed, repeats=args.repeats,
        )
        lines.append(
            f"  hook overhead: detached {hov.detached_wall_s:.3f} s,"
            f" noop-attached {hov.noop_wall_s:.3f} s"
            f" ({hov.overhead_pct:+.1f} %)"
        )
        if hov.digests_equal:
            lines.append("    digests: identical (noop plan is inert)")
        else:
            lines.append("    digests: MISMATCH — noop fault plan "
                         "changed behavior")
            code = 3

    if args.baseline:
        base = json.loads(pathlib.Path(args.baseline).read_text())
        if base.get("digest") != result.digest:
            lines.append(
                f"baseline digest MISMATCH: expected {base.get('digest')}"
                f" got {result.digest} — engine behavior changed"
            )
            code = 3
        else:
            lines.append("baseline digest: identical")
            base_wall = float(base.get("wall_s", 0.0))
            if base_wall > 0 and result.wall_s > args.max_regression * base_wall:
                lines.append(
                    f"wall-clock REGRESSION: {result.wall_s:.3f} s vs"
                    f" baseline {base_wall:.3f} s"
                    f" (> {args.max_regression:g}x allowed)"
                )
                code = 4
            elif base_wall > 0:
                lines.append(
                    f"wall-clock vs baseline: {result.wall_s / base_wall:.2f}x"
                    f" (limit {args.max_regression:g}x)"
                )

    _publish(args, f"perf_{args.scenario}",
             perfmod.perf_result_dict(result))
    return "\n".join(lines), code


def _cmd_engine(args: argparse.Namespace) -> tuple[str, int]:
    """Compiled-kernel lifecycle: build the optional C extension, or
    prove the built kernel against the pure-Python engine.

    ``build`` compiles ``repro/sim/_ckernel.c`` (exit 1 when the box has
    no C compiler — the pure engine is always available).  ``check``
    replays ``--scenario`` under both engines and enforces three gates:
    the two builds' digests must be byte-identical, they must match the
    committed ``--bench`` row (exit 3 otherwise), and the pure engine's
    events/s must not fall below the committed figure by more than
    ``--max-regression`` (exit 4) — the CI ``perf-engine`` job runs
    exactly this."""
    from . import engine_build
    from . import perf as perfmod
    from .sim import compiled as sim_compiled

    if args.action == "clean":
        removed = engine_build.clean()
        if removed:
            return f"engine: removed {engine_build.artifact_path()}", 0
        return "engine: no artifact to remove", 0

    try:
        out = engine_build.build(force=args.force)
    except RuntimeError as exc:  # no C compiler on this box
        return f"engine: {exc}", 1

    if args.action == "build":
        return f"engine: built {out}", 0

    # action == "check": measure pure first, then the compiled kernel.
    was_compiled = sim_compiled.ACTIVE_ENGINE == "compiled"
    sim_compiled.deactivate()
    pure = perfmod.measure(args.scenario, seed=args.seed,
                           repeats=args.repeats)
    if not sim_compiled.activate():
        return f"engine: built {out} but the extension failed to load", 1
    try:
        comp = perfmod.measure(args.scenario, seed=args.seed,
                               repeats=args.repeats)
    finally:
        if not was_compiled:
            sim_compiled.deactivate()

    lines = [
        f"engine check: scenario={args.scenario} seed={args.seed}"
        f" repeats={args.repeats}",
        f"  pure      {pure.events_per_sec:12,.1f} events/s"
        f"  ({pure.wall_s:.3f} s)",
        f"  compiled  {comp.events_per_sec:12,.1f} events/s"
        f"  ({comp.wall_s:.3f} s)"
        f"  [{comp.events_per_sec / pure.events_per_sec:.2f}x pure]",
    ]
    code = 0
    if pure.digest != comp.digest:
        lines.append(f"  digest MISMATCH: pure {pure.digest} !="
                     f" compiled {comp.digest}")
        code = 3
    else:
        lines.append(f"  digests byte-identical: {pure.digest}")

    if args.bench:
        doc = json.loads(pathlib.Path(args.bench).read_text())
        rows = doc.get("runs_compiled") or doc.get("runs") or []
        row = next((r for r in rows
                    if r.get("scenario") == args.scenario
                    and r.get("seed") == args.seed), None)
        if row is None:
            lines.append(f"  bench: no ({args.scenario}, seed {args.seed})"
                         f" row in {args.bench} — gates skipped")
        else:
            if row.get("digest") != pure.digest:
                lines.append(
                    f"  bench digest MISMATCH: committed"
                    f" {row.get('digest')} — engine behavior changed"
                )
                code = 3
            # Prefer the explicit conservative gate basis when the row
            # carries one: point-estimate events/s is noisy on shared
            # runners, so the trajectory figures stay honest while the
            # gate trips only on genuine regressions.
            committed = float(row.get("gate_pure_events_per_sec")
                              or row.get("pure_events_per_sec")
                              or row.get("post_events_per_sec") or 0.0)
            if committed:
                floor = committed / args.max_regression
                if pure.events_per_sec < floor:
                    lines.append(
                        f"  throughput REGRESSION: pure"
                        f" {pure.events_per_sec:,.1f} events/s <"
                        f" {floor:,.1f}"
                        f" (committed {committed:,.1f}"
                        f" / {args.max_regression:g})"
                    )
                    code = 4
                else:
                    lines.append(
                        f"  throughput vs committed:"
                        f" {pure.events_per_sec / committed:.2f}x"
                        f" (floor 1/{args.max_regression:g})"
                    )
    return "\n".join(lines), code


def _cmd_fuzz(args: argparse.Namespace) -> tuple[str, int]:
    """Coverage-guided scenario fuzzing (repro.fuzz).

    Returns (report text, exit code): 3 when the session found a
    durability/no-hang violation or a corpus entry regressed — the
    shrunk minimal plan is printed so the failure can be replayed with
    ``--replay``; 2 when ``--replay`` is given an unparseable plan."""
    from .fuzz import execute_scenario, run_fuzz, scenario_from_text
    from .fuzz import violation_signature

    if args.replay:
        try:
            text = pathlib.Path(args.replay).read_text()
        except OSError as exc:
            raise ValueError(f"cannot read plan {args.replay!r}: {exc}")
        scenario = scenario_from_text(text)
        outcome = execute_scenario(scenario)
        lines = [
            f"replay {args.replay}: {scenario!r}",
            f"  acked {outcome.writes_acked}, failed"
            f" {outcome.writes_failed},"
            f" max op latency {outcome.max_op_latency:.3f}s"
            f" (bound {outcome.latency_bound:.3f}s)",
        ]
        if outcome.aborted:
            lines.append(f"  aborted: {outcome.aborted}")
        for violation in outcome.violations:
            lines.append(f"  violation: {violation}")
        if outcome.violations:
            lines.append(
                f"replay: VIOLATION"
                f" [{violation_signature(outcome.violations)}]"
            )
            return "\n".join(lines), 3
        lines.append("replay: pass")
        return "\n".join(lines), 0

    if args.soak:
        from .fuzz import run_soak

        log_lines = []
        soak = run_soak(
            base_seed=args.seed,
            time_budget=(
                args.time_budget if args.time_budget is not None else 60.0
            ),
            state_path=args.soak_state,
            corpus_dir=args.corpus,
            iterations=args.iterations if args.iterations else 1_000_000,
            log=log_lines.append,
        )
        report = soak.report
        lines = list(log_lines)
        lines.append(
            f"soak: session {soak.session_index}"
            f" (seed {soak.session_seed}),"
            f" {report.iterations_run} iteration(s),"
            f" +{soak.new_keys} new coverage key(s)"
            f" ({len(report.coverage)} total),"
            f" {soak.total_iterations} iteration(s)"
            f" / {soak.total_executions} execution(s) accumulated over"
            f" {soak.total_sessions} session(s)"
        )
        lines.append(f"fuzz fingerprint: {report.fingerprint()}")
        lines.append(f"soak state: {soak.state_path}")
        _publish(args, "fuzz_soak", soak.as_dict())
        if not soak.passed:
            for record in report.corpus_failures + report.violations:
                lines.append(
                    f"violation [{record.signature}] — minimal replayable"
                    f" plan"
                    + (f" (also at {record.corpus_path})"
                       if record.corpus_path else "")
                    + ":"
                )
                lines += ["  " + ln
                          for ln in record.scenario_text.splitlines()]
            lines.append("fuzz soak: FAILED")
            return "\n".join(lines), 3
        lines.append("fuzz soak: no violations")
        return "\n".join(lines), 0

    log_lines: list[str] = []
    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        corpus_dir=args.corpus,
        log=log_lines.append,
    )
    lines = list(log_lines)
    lines.append(
        f"fuzz: seed {report.seed}, {report.iterations_run} iteration(s)"
        f" ({report.executions} execution(s) incl. replay+shrink),"
        f" coverage {len(report.coverage)} key(s),"
        f" {len(report.corpus_replayed)} corpus entr(ies) replayed"
    )
    lines.append(f"fuzz fingerprint: {report.fingerprint()}")
    _publish(args, f"fuzz_seed{report.seed}", report.as_dict())
    if not report.passed:
        for record in report.corpus_failures + report.violations:
            lines.append(
                f"violation [{record.signature}] — minimal replayable"
                f" plan"
                + (f" (also at {record.corpus_path})"
                   if record.corpus_path else "")
                + ":"
            )
            lines += ["  " + ln
                      for ln in record.scenario_text.splitlines()]
        lines.append("fuzz: FAILED")
        return "\n".join(lines), 3
    lines.append("fuzz: no violations")
    return "\n".join(lines), 0


def _render_qos(result) -> str:
    from .bench.reporting import format_table

    rows = []
    for spec, st in zip(result.specs, result.tenants):
        goodput = st.completed / result.duration
        attain = (f"{goodput / spec.qos.reservation:.2f}"
                  if spec.qos.reservation else "-")
        rows.append([
            spec.name, spec.arrival,
            f"{st.offered / result.duration:.1f}",
            f"{goodput:.1f}",
            f"{spec.qos.reservation:g}",
            attain,
            f"{spec.qos.weight:g}",
            f"{spec.qos.limit:g}" if spec.qos.limit else "-",
            str(st.shed),
            f"{st.lat_stats.mean * 1e3:.1f}" if st.latencies else "-",
        ])
    table = format_table(
        ["tenant", "arrival", "offered/s", "goodput/s", "resv/s",
         "attain", "weight", "limit/s", "shed", "lat ms"],
        rows,
        title=(f"qos — strategy={result.strategy} seed={result.seed}"
               f" duration={result.duration:g}s"),
    )
    summary = (
        f"aggregate goodput {result.bench.iops:.1f} IOPS,"
        f" overload {result.overload_factor:.2f}x,"
        f" Jain {result.jain_goodput:.3f}"
        f" (weighted {result.jain_weighted_goodput:.3f}),"
        f" queue {json.dumps(result.queue_stats, sort_keys=True)}"
    )
    return table + "\n" + summary


def _cmd_qos(args: argparse.Namespace) -> tuple[str, int]:
    """Multi-tenant open-loop QoS run (repro.qos).

    Returns (report text, exit code): 3 when ``--replay`` finds a
    fingerprint mismatch between two runs of the same seed."""
    from .bench import experiment_qos
    from .qos import default_tenants, qos_payload, run_qos

    if args.sweep:
        strategies = tuple(
            s.strip() for s in args.strategies.split(",") if s.strip()
        )
        results = experiment_qos(
            strategies=strategies, tenant_counts=(args.tenants,),
            seed=args.seed, duration=args.duration,
        )
        lines = []
        payload_points = []
        for (strategy, count, label), res in results.items():
            point = qos_payload(res)
            point["tenant_count"] = count
            point["point"] = label
            payload_points.append(point)
            lines.append(
                f"{strategy:9s} {label:5s} tenants={count}"
                f" goodput={res.bench.iops:8.1f} IOPS"
                f" overload={res.overload_factor:5.2f}x"
                f" jain_w={res.jain_weighted_goodput:.3f}"
                f" shed={sum(st.shed for st in res.tenants)}"
            )
        _publish(args, "qos_crossover", {"points": payload_points})
        return "\n".join(lines), 0

    specs = default_tenants(
        args.tenants, reservation=args.reservation, rate=args.rate,
        object_size=args.size, window=args.window,
    )
    result = run_qos(
        args.strategy, specs, seed=args.seed, duration=args.duration,
    )
    lines = [_render_qos(result), f"fingerprint: {result.fingerprint}"]
    code = 0
    if args.replay:
        rerun = run_qos(
            args.strategy, specs, seed=args.seed, duration=args.duration,
        )
        if rerun.fingerprint == result.fingerprint:
            lines.append("replay: identical fingerprint")
        else:
            lines.append(f"replay: MISMATCH {rerun.fingerprint}"
                         " — NON-DETERMINISTIC")
            code = 3
    _publish(args, f"qos_{args.strategy}", qos_payload(result))
    return "\n".join(lines), code


def _cmd_lint(args: argparse.Namespace) -> tuple[str, int]:
    """Static analysis + optional dynamic tie-order probe.

    Returns (report text, exit code): 3 when there are findings not
    covered by the baseline, when the dynamic probe's FIFO control
    run fails to reproduce the native digest (a probe defect, not a
    model property), or when the ownership sanitizer reports a
    violation or a digest perturbation."""
    from . import lint as lintmod

    lines: list[str] = []
    if args.list_rules:
        for rule_code, rule in sorted(lintmod.RULES.items()):
            lines.append(f"{rule_code}  {rule.name} — {rule.description}")
        return "\n".join(lines), 0

    select = (
        [c.strip().upper() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    report = lintmod.lint_paths(args.paths, select=select)
    code = 0

    if args.fix_baseline:
        lintmod.save_baseline(args.baseline, report.findings)
        lines.append(
            f"lint: wrote {len(report.findings)} finding(s) to {args.baseline}"
        )
    else:
        baseline = lintmod.load_baseline(args.baseline)
        new = lintmod.filter_new(report.findings, baseline)
        for finding in new:
            lines.append(
                finding.render_github() if args.format == "github"
                else finding.render()
            )
        grandfathered = len(report.findings) - len(new)
        lines.append(
            f"lint: {len(new)} new finding(s), {grandfathered} baselined,"
            f" {report.files_checked} file(s) checked"
        )
        if new:
            code = 3

    if args.ownership:
        graph = lintmod.ownership_graph(report.project)
        lines.append(lintmod.render_ownership_report(graph))

    if args.dynamic:
        tie = lintmod.check_tie_order(args.dynamic, seed=args.seed)
        lines.append(tie.render())
        if not tie.instrumentation_ok:
            code = 3

    if args.sanitize:
        sane = lintmod.run_sanitized(args.sanitize, seed=args.seed)
        lines.append(sane.render())
        if not sane.ok:
            code = 3

    return "\n".join(lines), code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DoCeph reproduction: regenerate the paper's "
                    "tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json-dir", default="benchmarks/results",
                       metavar="DIR",
                       help="directory for BENCH_<name>.json result files")
        p.add_argument("--no-json", action="store_true",
                       help="skip writing the JSON result file")

    for name in list(_EXPERIMENTS) + ["all"]:
        p = sub.add_parser(name, help=f"run {name}")
        p.add_argument("--duration", type=float, default=8.0,
                       help="measured simulated seconds per run")
        add_json_opts(p)

    bench = sub.add_parser("bench", help="one ad-hoc RADOS bench run")
    bench.add_argument("--mode", choices=["baseline", "doceph"],
                       default="doceph")
    bench.add_argument("--size", type=_parse_size, default=4 << 20,
                       help="object size (e.g. 4M, 512K)")
    bench.add_argument("--clients", type=int, default=16)
    bench.add_argument("--duration", type=float, default=8.0)
    bench.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault plan, e.g. 'dma,p=0.3;rpc:reply_loss,"
                            "nth=5' (see repro.faults)")
    bench.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault plan's RNG streams")
    bench.add_argument("--trace", action="store_true",
                       help="attach the repro.trace tracer and print the "
                            "flame summary")
    add_json_opts(bench)

    faults = sub.add_parser(
        "faults", help="§4 robustness: run DoCeph under a fault plan and"
                       " compare against fault-free")
    faults.add_argument("--plan", default="dma,p=0.3", metavar="SPEC",
                        help="fault plan spec (see repro.faults)")
    faults.add_argument("--fault-seed", type=int, default=0)
    faults.add_argument("--size", type=_parse_size, default=4 << 20)
    faults.add_argument("--clients", type=int, default=16)
    faults.add_argument("--duration", type=float, default=8.0)
    add_json_opts(faults)

    trace = sub.add_parser(
        "trace", help="traced bench run: span flame summary, CPU "
                      "cross-check, Perfetto trace-event export")
    trace.add_argument("--mode", choices=["baseline", "doceph"],
                       default="doceph")
    trace.add_argument("--size", type=_parse_size, default=1 << 20)
    trace.add_argument("--clients", type=int, default=2)
    trace.add_argument("--duration", type=float, default=4.0)
    trace.add_argument("--seed", type=int, default=0,
                       help="tracer ID-minting seed")
    trace.add_argument("--faults", default=None, metavar="SPEC",
                       help="optional fault plan (spans get error tags "
                            "and retry links)")
    trace.add_argument("--fault-seed", type=int, default=0)
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write Chrome/Perfetto trace-event JSON here")
    trace.add_argument("--replay", action="store_true",
                       help="run twice and require identical trace "
                            "fingerprints")

    chaos = sub.add_parser(
        "chaos", help="cluster-level chaos: seeded OSD crash/restart and"
                      " partition schedules + acked-write durability check")
    chaos.add_argument("--mode", choices=["baseline", "doceph"],
                       default="baseline")
    chaos.add_argument("--seeds", default="0", metavar="N[,N...]",
                       help="comma-separated chaos schedule seeds")
    chaos.add_argument("--crashes", type=int, default=3,
                       help="OSD crash/restart incidents per run")
    chaos.add_argument("--partitions", type=int, default=1,
                       help="network partition incidents per run")
    chaos.add_argument("--duration", type=float, default=10.0,
                       help="write-workload seconds (the run extends "
                            "until the schedule completes and heals)")
    chaos.add_argument("--clients", type=int, default=2)
    chaos.add_argument("--size", type=_parse_size, default=1 << 20)
    chaos.add_argument("--replay", action="store_true",
                       help="run each seed twice and require identical "
                            "fingerprints")
    chaos.add_argument("--json", action="store_true",
                       help="also print each report as JSON")

    from .perf import SCENARIOS
    perf = sub.add_parser(
        "perf", help="engine-speed benchmark: replay a deterministic "
                     "scenario, report events/sec + behavior digest")
    perf.add_argument("--scenario", choices=sorted(SCENARIOS),
                      default="fallback",
                      help="named workload from repro.perf.SCENARIOS")
    perf.add_argument("--seed", type=int, default=0,
                      help="fault-plan / tracer seed for the replay")
    perf.add_argument("--repeats", type=int, default=5,
                      help="replay count; wall time is the fastest run "
                           "(digests must all match)")
    perf.add_argument("--profile", action="store_true",
                      help="add a cProfile run and report the "
                           "per-subsystem breakdown")
    perf.add_argument("--trace", action="store_true",
                      help="attach the tracer and report the trace "
                           "fingerprint (slower; separate golden)")
    perf.add_argument("--hook-overhead", action="store_true",
                      help="also compare detached vs attached-noop "
                           "fault-plan runs")
    perf.add_argument("--baseline", default=None, metavar="FILE",
                      help="prior BENCH_perf_<scenario>.json to compare "
                           "against (digest must match; wall time must "
                           "stay within --max-regression)")
    perf.add_argument("--max-regression", type=float, default=3.0,
                      help="allowed wall-clock ratio vs --baseline "
                           "before exiting 4")
    add_json_opts(perf)

    engine = sub.add_parser(
        "engine", help="compiled-kernel lifecycle: build the optional C "
                       "kernel, or prove it against the pure engine "
                       "(exit 3 on digest divergence, 4 on throughput "
                       "regression)")
    engine.add_argument("action", choices=("build", "check", "clean"),
                        help="build the extension, run the cross-build "
                             "digest + throughput gates, or remove the "
                             "artifact")
    engine.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="fallback",
                        help="replay workload for 'check'")
    engine.add_argument("--seed", type=int, default=0,
                        help="scenario seed for 'check'")
    engine.add_argument("--repeats", type=int, default=3,
                        help="replay count per engine; wall time is the "
                             "fastest run")
    engine.add_argument("--force", action="store_true",
                        help="rebuild even when the artifact is newer "
                             "than the source")
    engine.add_argument("--bench", metavar="FILE",
                        default="benchmarks/results/BENCH_perf_engine.json",
                        help="committed trajectory file for the digest + "
                             "throughput gates ('' skips them)")
    engine.add_argument("--max-regression", type=float, default=1.10,
                        help="fail (exit 4) when pure events/s falls "
                             "below committed/<this>")

    fuzz = sub.add_parser(
        "fuzz", help="coverage-guided scenario fuzzing over the chaos/"
                     "durability oracle (exit 3 on violation, with the "
                     "shrunk minimal plan printed)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="session seed: same seed + iterations + corpus"
                           " replays the whole session bit-identically")
    fuzz.add_argument("--iterations", type=int, default=20,
                      help="fuzz iterations after corpus replay")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="wall-clock cutoff; stops drawing new "
                           "scenarios once exceeded")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="regression corpus directory: *.plan entries "
                           "are replayed first, shrunk violations are "
                           "written back")
    fuzz.add_argument("--replay", default=None, metavar="PLAN",
                      help="replay one textual scenario plan file and "
                           "exit (3 if it still violates)")
    fuzz.add_argument("--soak", action="store_true",
                      help="long-horizon mode: one time-budgeted session "
                           "with a fresh per-session seed, resuming "
                           "coverage/queue/signatures from --soak-state "
                           "(default budget 60s when --time-budget unset)")
    fuzz.add_argument("--soak-state", default="fuzz_soak_state.json",
                      metavar="FILE",
                      help="soak checkpoint path (coverage, mutation "
                           "queue, shrunk signatures, session history)")
    add_json_opts(fuzz)

    qos = sub.add_parser(
        "qos", help="multi-tenant open-loop serving under mClock QoS: "
                    "per-tenant reservations/weights/limits, admission "
                    "control, fairness metrics (exit 3 on --replay "
                    "fingerprint mismatch)")
    qos.add_argument("--strategy", choices=list(STRATEGY_NAMES),
                     default="full-osd",
                     help="offload strategy to serve the tenants with")
    qos.add_argument("--tenants", type=int, default=8,
                     help="tenant count (mixed personalities: weights "
                          "cycle 1-4, one bursty, one limit-capped)")
    qos.add_argument("--rate", type=float, default=250.0,
                     help="offered open-loop ops/s per tenant")
    qos.add_argument("--reservation", type=float, default=25.0,
                     help="reserved aggregate ops/s per tenant")
    qos.add_argument("--size", type=_parse_size, default=64 << 10,
                     help="object size (e.g. 4K, 64K)")
    qos.add_argument("--window", type=int, default=64,
                     help="per-tenant admission window (max in-flight)")
    qos.add_argument("--seed", type=int, default=0,
                     help="workload seed (same seed => same fingerprint)")
    qos.add_argument("--duration", type=float, default=10.0,
                     help="open-loop arrival window, simulated seconds")
    qos.add_argument("--replay", action="store_true",
                     help="run twice and require identical fingerprints")
    qos.add_argument("--sweep", action="store_true",
                     help="run the strategy crossover sweep "
                          "(experiment_qos) instead of one configuration")
    qos.add_argument("--strategies", default=",".join(STRATEGY_NAMES),
                     metavar="A,B,...",
                     help="strategies for --sweep")
    add_json_opts(qos)

    lint = sub.add_parser(
        "lint", help="determinism & sim-safety static analysis "
                     "(repro.lint; exit 3 on findings not in the baseline)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files/directories to check (default: src)")
    lint.add_argument("--baseline", default="lint-baseline.txt",
                      metavar="FILE",
                      help="grandfathered-findings file (missing = empty)")
    lint.add_argument("--fix-baseline", action="store_true",
                      help="rewrite the baseline from current findings "
                           "instead of failing on them")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run "
                           "(default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--format", default="human",
                      choices=["human", "github"],
                      help="finding output format: human (default) or "
                           "github (::error workflow-command "
                           "annotations for inline PR review)")
    lint.add_argument("--ownership", action="store_true",
                      help="append the whole-program ownership report "
                           "(per-node class roles, attribute "
                           "classification, declared fabric edges)")
    lint.add_argument("--dynamic", default=None, metavar="SCENARIO",
                      choices=sorted(SCENARIOS),
                      help="also run the tie-order probe against a "
                           "repro.perf scenario and report "
                           "order-sensitive schedule sites")
    lint.add_argument("--sanitize", default=None, metavar="SCENARIO",
                      choices=sorted(SCENARIOS),
                      help="also run the dynamic ownership sanitizer "
                           "against a repro.perf scenario (exit 3 on "
                           "violations or digest perturbation)")
    lint.add_argument("--seed", type=int, default=0,
                      help="scenario seed for --dynamic/--sanitize")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "all":
            print(_cmd_all(args))
        elif args.command == "bench":
            print(_cmd_bench(args))
        elif args.command == "faults":
            print(_cmd_faults(args))
        elif args.command == "trace":
            text, ok = _cmd_trace(args)
            print(text)
            if not ok:
                return 3  # replay fingerprint mismatch
        elif args.command == "chaos":
            text, ok = _cmd_chaos(args)
            print(text)
            if not ok:
                return 3  # durability violation or non-determinism
        elif args.command == "perf":
            text, code = _cmd_perf(args)
            print(text)
            if code:
                return code  # 3 = digest mismatch, 4 = wall regression
        elif args.command == "engine":
            text, code = _cmd_engine(args)
            print(text)
            if code:
                return code  # 1 = no compiler, 3 = digest, 4 = regression
        elif args.command == "fuzz":
            text, code = _cmd_fuzz(args)
            print(text)
            if code:
                return code  # 3 = violation found / corpus regression
        elif args.command == "qos":
            text, code = _cmd_qos(args)
            print(text)
            if code:
                return code  # 3 = replay fingerprint mismatch
        elif args.command == "lint":
            text, code = _cmd_lint(args)
            print(text)
            if code:
                return code  # 3 = new findings / probe defect
        else:
            print(_EXPERIMENTS[args.command](args))
    except ValueError as exc:
        # malformed --faults / --plan spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StorageError as exc:
        # Storage faults are fail-stop: BlueStore treats an I/O error as
        # fatal (like real Ceph's EIO assert), which aborts the run.
        print(f"simulation aborted: {exc}", file=sys.stderr)
        print("(storage faults are fail-stop — the affected OSD cannot "
              "recover; use dma/rpc/net faults for recoverable scenarios)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
