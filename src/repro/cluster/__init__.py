"""Cluster assembly and calibrated hardware profiles."""

from .builder import (
    BENCH_POOL,
    Cluster,
    build_baseline_cluster,
    build_doceph_cluster,
)
from .config import DocephProfile, GIGABIT, HUNDRED_GIG, HardwareProfile

__all__ = [
    "BENCH_POOL",
    "Cluster",
    "DocephProfile",
    "GIGABIT",
    "HUNDRED_GIG",
    "HardwareProfile",
    "build_baseline_cluster",
    "build_doceph_cluster",
]
