"""Cluster assembly, calibrated hardware profiles, offload strategies."""

from .builder import (
    BENCH_POOL,
    Cluster,
    build_baseline_cluster,
    build_doceph_cluster,
)
from .config import DocephProfile, GIGABIT, HUNDRED_GIG, HardwareProfile
from .strategy import (
    STRATEGY_NAMES,
    OffloadStrategy,
    all_strategies,
    get_strategy,
)

__all__ = [
    "BENCH_POOL",
    "Cluster",
    "DocephProfile",
    "GIGABIT",
    "HUNDRED_GIG",
    "HardwareProfile",
    "OffloadStrategy",
    "STRATEGY_NAMES",
    "all_strategies",
    "build_baseline_cluster",
    "build_doceph_cluster",
    "get_strategy",
]
