"""Cluster assembly: Baseline (NIC-mode) and DoCeph (DPU-mode) testbeds.

Mirrors the paper's three-node testbed (§5.1): one client node plus two
storage nodes, 100 GbE (or 1 GbE) through one switch, one OSD per
storage node, replication 2.

* :func:`build_baseline_cluster` — the BlueField runs as a plain NIC;
  MON, OSD, messenger, and BlueStore all burn host CPU.
* :func:`build_doceph_cluster` — the BlueField runs in DPU mode; the
  OSD (and its messenger) live on the DPU's ARM cores, the host keeps
  only BlueStore plus the thin proxy server, and the two talk through
  the RPC/DMA proxy channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..crush import CrushMap
from ..hw.cpu import CpuComplex
from ..hw.dma import DmaEngine
from ..hw.net import Network, Nic
from ..hw.node import ClusterNode, NetStack
from ..hw.storage import SsdDevice
from ..msgr.messenger import AsyncMessenger, MsgrDirectory
from ..objectstore.bluestore import BlueStore
from ..osd.daemon import OsdDaemon
from ..rados.client import RadosClient
from ..rados.monitor import Monitor
from ..rados.osdmap import OsdMap
from ..rados.types import Pool
from ..faults import FaultPlan, FaultSpec
from ..sim import Environment
from .config import DocephProfile, HardwareProfile

__all__ = ["Cluster", "build_baseline_cluster", "build_doceph_cluster"]

#: Benchmark pool name used throughout the experiments.
BENCH_POOL = "bench"

#: Observation hook invoked with every fully wired :class:`Cluster`
#: before it is returned.  The ownership sanitizer
#: (:mod:`repro.lint.sanitizer`) installs its object tagger here —
#: every build path (perf scenarios, qos strategies, chaos, bench)
#: funnels through the two builders below, so this is the single
#: interception point.  The hook must not mutate the cluster.
_POST_BUILD_HOOK: Optional[Any] = None


@dataclass
class Cluster:
    """A fully wired testbed ready for benchmarking."""

    env: Environment
    profile: HardwareProfile
    network: Network
    directory: MsgrDirectory
    osdmap: OsdMap
    nodes: list[ClusterNode] = field(default_factory=list)
    osds: list[OsdDaemon] = field(default_factory=list)
    stores: list[BlueStore] = field(default_factory=list)
    mon: Optional[Monitor] = None
    client: Optional[RadosClient] = None
    client_cpu: Optional[CpuComplex] = None
    mode: str = "baseline"
    #: DoCeph only: per-node host proxy servers (RPC + DMA pollers).
    proxy_servers: list[Any] = field(default_factory=list)
    #: The fault plan attached at build time (None = fault-free run).
    fault_plan: Optional[FaultPlan] = None
    #: The tracer attached at build time (None = tracing disabled).
    tracer: Any = None

    def boot(self) -> Generator[Any, Any, None]:
        """Bring the cluster up: activate PGs, start heartbeats/beacons,
        boot the client.  Run this before benchmarking."""
        for osd in self.osds:
            yield from osd.activate_pgs(BENCH_POOL)
        addrs = {osd.osd_id: self.osdmap.address_of(osd.osd_id)
                 for osd in self.osds}
        for osd in self.osds:
            peers = [a for oid, a in addrs.items() if oid != osd.osd_id]
            osd.start_heartbeats(peers, dynamic=True)
            if self.mon is not None:
                osd.start_mon_beacon(self.mon.address)
            osd.enable_recovery([BENCH_POOL], tick=self.profile.recovery_tick)
            if self.profile.scrub_interval is not None:
                osd.enable_scrub([BENCH_POOL],
                                 interval=self.profile.scrub_interval)
        if self.client is not None:
            yield from self.client.boot()

    def add_pool(
        self, name: str, pg_num: int = 32, size: Optional[int] = None
    ) -> Generator[Any, Any, Pool]:
        """Create an additional pool at runtime and activate its PGs on
        every OSD (run as a process: ``env.process(cluster.add_pool(...))``).

        Returns the new :class:`~repro.rados.types.Pool`."""
        pool_id = max(self.osdmap.pools) + 1
        pool = Pool(id=pool_id, name=name, pg_num=pg_num,
                    size=size or self.profile.replication)
        self.osdmap.create_pool(pool)
        for osd in self.osds:
            yield from osd.activate_pgs(name)
            if osd.recovery is not None:
                osd.recovery.pool_names.append(name)
            if osd.scrub is not None:
                osd.scrub.pool_names.append(name)
        return pool

    # -- observability -----------------------------------------------------------
    def host_cpus(self) -> list[CpuComplex]:
        return [node.host_cpu for node in self.nodes]

    def dpu_cpus(self) -> list[CpuComplex]:
        return [node.dpu_cpu for node in self.nodes if node.dpu_cpu]

    def ceph_cpus(self) -> list[CpuComplex]:
        """The complexes running Ceph daemons (host in baseline, DPU in
        DoCeph) — where Figure 5's breakdown is measured."""
        if self.mode == "doceph":
            return self.dpu_cpus()
        return self.host_cpus()


def _effective_fault_plan(
    profile: HardwareProfile, fault_plan: Optional[FaultPlan]
) -> Optional[FaultPlan]:
    """Resolve the plan for a build: explicit argument wins, then the
    profile's ``fault_plan``, then the legacy ``dma_fault_rate``
    shorthand (converted to a one-spec plan seeded with ``fault_seed``)."""
    if fault_plan is not None:
        return fault_plan
    profile_plan = getattr(profile, "fault_plan", None)
    if profile_plan is not None:
        return profile_plan
    rate = getattr(profile, "dma_fault_rate", 0.0)
    if rate > 0:
        return FaultPlan(
            seed=getattr(profile, "fault_seed", 0),
            specs=[FaultSpec(layer="dma", probability=rate)],
        )
    return None


def _make_crush(n_nodes: int) -> CrushMap:
    cmap = CrushMap()
    cmap.add_bucket("default", "root")
    for i in range(n_nodes):
        host = f"host{i}"
        cmap.add_bucket(host, "host")
        cmap.add_device(host, i, weight=1.0)
        cmap.link_bucket("default", host)
    cmap.add_rule(CrushMap.replicated_rule())
    return cmap


def _make_osdmap(profile: HardwareProfile) -> OsdMap:
    osdmap = OsdMap(crush=_make_crush(profile.storage_nodes))
    osdmap.create_pool(
        Pool(id=1, name=BENCH_POOL, pg_num=profile.pg_num,
             size=profile.replication)
    )
    return osdmap


def _attach_aux_endpoint(
    env: Environment,
    network: Network,
    cpu: CpuComplex,
    address: str,
    profile: HardwareProfile,
    bandwidth: float = 10e9,
) -> NetStack:
    """A light management endpoint (monitor port) sharing a node's CPU."""
    nic = Nic(env, f"{address}.nic", bandwidth_bps=bandwidth)
    network.attach(address, nic)
    return NetStack(cpu=cpu, nic=nic, network=network, address=address,
                    tcp=profile.tcp)


def _build_client(
    env: Environment,
    network: Network,
    directory: MsgrDirectory,
    profile: HardwareProfile,
    mon_addr: str,
) -> tuple[RadosClient, CpuComplex]:
    cpu = CpuComplex(env, "client.cpu", cores=profile.client_cores)
    nic = Nic(env, "client.nic", bandwidth_bps=profile.net_bandwidth)
    network.attach("client", nic)
    client_tcp = getattr(profile, "client_tcp", None) or profile.tcp
    stack = NetStack(cpu=cpu, nic=nic, network=network, address="client",
                     tcp=client_tcp)
    messenger = AsyncMessenger(
        stack, "client", directory, workers=profile.msgr_workers,
        cost=profile.msgr_cost,
    )
    client = RadosClient(
        messenger, mon_addr,
        op_timeout=profile.client_op_timeout,
        max_attempts=profile.client_max_attempts,
        retry_backoff=profile.client_retry_backoff,
    )
    return client, cpu


def _build_monitor(
    messenger: AsyncMessenger, osdmap: OsdMap, profile: HardwareProfile
) -> Monitor:
    return Monitor(
        messenger, osdmap,
        down_grace=profile.mon_down_grace,
        out_interval=profile.mon_out_interval,
        check_period=profile.mon_check_period,
        failure_reporters=profile.mon_failure_reporters,
    )


def build_baseline_cluster(
    env: Environment,
    profile: Optional[HardwareProfile] = None,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Any = None,
) -> Cluster:
    """The conventional deployment: full Ceph stack on host CPUs,
    BlueField in NIC mode."""
    profile = profile or HardwareProfile()
    network = Network(env, latency_s=profile.net_latency)
    directory = MsgrDirectory()
    osdmap = _make_osdmap(profile)
    cluster = Cluster(
        env=env, profile=profile, network=network, directory=directory,
        osdmap=osdmap, mode="baseline",
    )

    for i in range(profile.storage_nodes):
        name = f"node{i}"
        host_cpu = CpuComplex(env, f"{name}.host", cores=profile.host_cores,
                              perf=profile.host_perf)
        ssd = SsdDevice(
            env, f"{name}.ssd",
            write_bandwidth=profile.ssd_write_bandwidth,
            read_bandwidth=profile.ssd_read_bandwidth,
            write_latency=profile.ssd_write_latency,
            read_latency=profile.ssd_read_latency,
        )
        node = ClusterNode(
            env, network, name, host_cpu, ssd,
            nic_bandwidth=profile.net_bandwidth, tcp=profile.tcp,
        )
        store = BlueStore(env, f"{name}.bluestore", host_cpu, ssd,
                          profile.bluestore)
        store.mkfs()
        stack = node.host_stack()
        messenger = AsyncMessenger(
            stack, f"osd.{i}", directory, workers=profile.msgr_workers,
            cost=profile.msgr_cost,
        )
        osd = OsdDaemon(i, messenger, store, osdmap, profile.osd)
        osdmap.add_osd(i, address=name)

        cluster.nodes.append(node)
        cluster.stores.append(store)
        cluster.osds.append(osd)

    # Monitor: shares node0's host CPU, own management port.
    mon_stack = _attach_aux_endpoint(
        env, network, cluster.nodes[0].host_cpu, "mon0", profile
    )
    mon_msgr = AsyncMessenger(mon_stack, "mon.0", directory,
                              workers=1, cost=profile.msgr_cost)
    cluster.mon = _build_monitor(mon_msgr, osdmap, profile)

    cluster.client, cluster.client_cpu = _build_client(
        env, network, directory, profile, "mon0"
    )
    cluster.fault_plan = _effective_fault_plan(profile, fault_plan)
    if cluster.fault_plan is not None:
        cluster.fault_plan.attach_cluster(cluster)
    if tracer is not None:
        tracer.attach_cluster(cluster)
    if _POST_BUILD_HOOK is not None:
        _POST_BUILD_HOOK(cluster)
    return cluster


def build_doceph_cluster(
    env: Environment,
    profile: Optional[DocephProfile] = None,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Any = None,
) -> Cluster:
    """The paper's architecture: OSD + messenger on the DPU, BlueStore
    (plus the thin proxy server) on the host, RPC/DMA in between."""
    from ..core.host_server import HostProxyServer
    from ..core.proxy_objectstore import ProxyObjectStore

    profile = profile or DocephProfile()
    network = Network(env, latency_s=profile.net_latency)
    directory = MsgrDirectory()
    osdmap = _make_osdmap(profile)
    cluster = Cluster(
        env=env, profile=profile, network=network, directory=directory,
        osdmap=osdmap, mode="doceph",
    )

    for i in range(profile.storage_nodes):
        name = f"node{i}"
        host_cpu = CpuComplex(env, f"{name}.host", cores=profile.host_cores,
                              perf=profile.host_perf)
        dpu_cpu = CpuComplex(env, f"{name}.dpu", cores=profile.dpu_cores,
                             perf=profile.dpu_perf)
        ssd = SsdDevice(
            env, f"{name}.ssd",
            write_bandwidth=profile.ssd_write_bandwidth,
            read_bandwidth=profile.ssd_read_bandwidth,
            write_latency=profile.ssd_write_latency,
            read_latency=profile.ssd_read_latency,
        )
        dma = DmaEngine(
            env, f"{name}.dma",
            bandwidth=profile.dma_bandwidth,
            setup_latency=profile.dma_setup_latency,
            channels=profile.dma_channels,
            max_transfer=profile.dma_max_transfer,
        )
        node = ClusterNode(
            env, network, name, host_cpu, ssd,
            nic_bandwidth=profile.net_bandwidth, tcp=profile.tcp,
            dpu_cpu=dpu_cpu, dma=dma,
            pcie_rpc_latency=profile.pcie_rpc_latency,
        )
        store = BlueStore(env, f"{name}.bluestore", host_cpu, ssd,
                          profile.bluestore)
        store.mkfs()

        server = HostProxyServer(node, store, profile)
        proxy = ProxyObjectStore(node, server, profile)

        stack = node.dpu_stack()  # ← the paper's architectural move
        messenger = AsyncMessenger(
            stack, f"osd.{i}", directory, workers=profile.msgr_workers,
            cost=profile.msgr_cost,
        )
        osd = OsdDaemon(i, messenger, proxy, osdmap, profile.osd)
        osdmap.add_osd(i, address=name)

        cluster.nodes.append(node)
        cluster.stores.append(store)
        cluster.osds.append(osd)
        cluster.proxy_servers.append(server)

    # Monitor lives on the DPU too ("the Ceph cluster is instantiated on
    # the DPU", §5.1).
    mon_stack = _attach_aux_endpoint(
        env, network, cluster.nodes[0].dpu_cpu, "mon0", profile
    )
    mon_msgr = AsyncMessenger(mon_stack, "mon.0", directory,
                              workers=1, cost=profile.msgr_cost)
    cluster.mon = _build_monitor(mon_msgr, osdmap, profile)

    cluster.client, cluster.client_cpu = _build_client(
        env, network, directory, profile, "mon0"
    )
    cluster.fault_plan = _effective_fault_plan(profile, fault_plan)
    if cluster.fault_plan is not None:
        cluster.fault_plan.attach_cluster(cluster)
    if tracer is not None:
        tracer.attach_cluster(cluster)
    if _POST_BUILD_HOOK is not None:
        _POST_BUILD_HOOK(cluster)
    return cluster
