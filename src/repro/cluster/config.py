"""Hardware profiles and calibration constants.

Absolute costs on the authors' testbed (AMD EPYC 9474F, BlueField-3,
PM893 SATA SSD, 100 GbE) are unknowable from the paper alone, so the
constants here are calibrated against the *published observables*:

* Fig. 5 — messenger ≈ 81 % of Ceph CPU at both 1 and 100 Gbps; total
  Ceph CPU (single-core-normalized) 24 % → ~70 %;
* Table 2 — messenger : ObjectStore context switches ≈ 10 : 1;
* Fig. 7 — baseline host CPU 94/70/69/67 % vs DoCeph ~5.5 % flat;
* Fig. 8/10 — baseline ≈ 480 MB/s large-block ceiling (storage-bound),
  DoCeph 30 % slower at 1 MB converging to ~4 % at 16 MB;
* Table 3/Fig. 9 — DMA-wait share of DoCeph latency ~45 % (1 MB) →
  ~12 % (16 MB).

CPU utilization percentages throughout this repo are **single-core
normalized** (busy-cores × 100), matching the paper's htop/per-process
convention; see ``repro.bench.metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hw.tcp import TcpStackModel
from ..msgr.messenger import MessengerCostModel
from ..objectstore.bluestore import BlueStoreConfig
from ..osd.daemon import OsdConfig

__all__ = ["HardwareProfile", "DocephProfile", "GIGABIT", "HUNDRED_GIG"]

GIGABIT = 1e9
HUNDRED_GIG = 100e9


@dataclass(frozen=True)
class HardwareProfile:
    """Everything needed to instantiate one testbed configuration."""

    # -- topology --------------------------------------------------------------
    storage_nodes: int = 2
    """Cluster (storage) node count — the paper uses 2."""

    replication: int = 2
    """Pool size; 2 on a 2-node testbed."""

    pg_num: int = 128
    """Placement groups in the benchmark pool."""

    # -- host ------------------------------------------------------------------
    host_cores: int = 16
    """Cores available to Ceph daemons per storage node."""

    host_perf: float = 1.0
    """Host core performance (the reference)."""

    # -- DPU (BlueField-3) -------------------------------------------------------
    dpu_cores: int = 16
    """BF3 has 16 ARMv8.2 A78 cores."""

    dpu_perf: float = 0.45
    """ARM A78 @ 2 GHz relative to an EPYC 9474F core."""

    # -- network ------------------------------------------------------------------
    net_bandwidth: float = HUNDRED_GIG
    """Link speed in bits/s (1 Gbps or 100 Gbps in the paper)."""

    net_latency: float = 20e-6
    """Switch + wire propagation latency."""

    client_cores: int = 32
    """Client node cores (never the bottleneck in the paper)."""

    tcp: TcpStackModel = field(
        default_factory=lambda: TcpStackModel(
            syscall_cpu=5.0e-6,
            syscall_bytes=131_072,
            copy_bandwidth=2.8e9,
            segment_bytes=65_536,
            segment_cpu=5.0e-6,
            softirq_cpu=6.0e-6,
            wakeup_cpu=4.0e-6,
        )
    )
    """Kernel TCP stack costs (identical model on host and DPU; the DPU
    pays more wall-time for them through its perf factor)."""

    client_tcp: TcpStackModel | None = None
    """Override for the *client* node's TCP stack.  Offload strategies
    (``repro.cluster.strategy``) rewrite ``tcp`` to model the storage
    side; setting ``client_tcp`` pins the client's costs so strategy
    comparisons vary only the storage nodes.  ``None`` = use ``tcp``."""

    msgr_cost: MessengerCostModel = field(
        default_factory=lambda: MessengerCostModel(
            encode_fixed=40.0e-6, decode_fixed=55.0e-6,
            crc_bandwidth=3.6e9, dispatch_fixed=5.0e-6,
        )
    )
    """Messenger-internal encode/decode costs."""

    msgr_workers: int = 3
    """msgr-worker threads per messenger (Ceph default)."""

    # -- storage device ------------------------------------------------------------
    ssd_write_bandwidth: float = 500e6
    """PM893 (SATA) sequential write — the large-block ceiling."""

    ssd_read_bandwidth: float = 530e6
    ssd_write_latency: float = 60e-6
    ssd_read_latency: float = 90e-6

    bluestore: BlueStoreConfig = field(
        default_factory=lambda: BlueStoreConfig(
            device_capacity=1 << 40,
            csum_bandwidth=10.0e9,
        )
    )
    """Backend cost/policy constants."""

    osd: OsdConfig = field(
        default_factory=lambda: OsdConfig(
            op_cpu=450.0e-6, repop_cpu=250.0e-6, reply_cpu=80.0e-6,
            dispatch_cpu=5.0e-6,
        )
    )
    """OSD thread counts and per-op costs (per-op work is what separates
    the 94 % (1 MB) from the 67 % (16 MB) baseline utilization)."""

    # -- DPU↔host channels (DoCeph only) ----------------------------------------------
    dma_bandwidth: float = 1.0e9
    """Effective per-channel DOCA DMA payload bandwidth."""

    dma_setup_latency: float = 2.28e-3
    """Per-transfer descriptor/doorbell/poll cost (BF3 measurements in
    Kashyap et al. report hundreds of µs end-to-end per op)."""

    dma_channels: int = 1
    """Concurrent hardware channels per node (serial transfers — the
    paper's DMA-wait stems from this)."""

    dma_max_transfer: int = 2 * 1024 * 1024
    """The ≈2 MB single-transfer hardware cap (§3.3)."""

    pcie_rpc_latency: float = 10e-6
    """One-way latency of the DPU↔host RPC socket (PCIe hop)."""

    rpc_socket_bandwidth: float = 0.45e9
    """Throughput of the kernel-socket RPC path across PCIe — the
    control plane and the DMA-failure fallback path ride this."""

    host_write_buffer_bytes: int = 80 * 1024 * 1024
    """Host-side write-buffer pool (Fig. 4): DMA'd request data parks
    here until BlueStore consumes it."""

    dpu_memcpy_bandwidth: float = 3.0e9
    """DPU-side staging copy rate (ARM cores into DMA-able buffers)."""

    staging_buffers: int = 4
    """2 MB staging buffers per node (bounds pipeline depth)."""

    comm_channel_negotiate_latency: float = 1.2e-3
    """DOCA CommChannel memory-region negotiation round trip (paid once
    per buffer when the MR cache is enabled, per transfer otherwise)."""

    scrub_interval: float | None = None
    """Light-scrub period per OSD in seconds (None disables scrubbing,
    keeping benchmark runs free of background probe noise)."""

    # -- RPC reliability (see repro.core.rpc) -----------------------------------
    rpc_timeout_seconds: float = 5.0
    """Per-attempt reply timeout of the DPU↔host RPC; attempt *k* waits
    ``rpc_timeout_seconds × rpc_backoff_factor^k``.  ``0`` disables the
    timeout (legacy wait-forever behaviour)."""

    rpc_max_retries: int = 4
    """Retries after the first attempt before a call fails RpcError."""

    rpc_backoff_factor: float = 2.0
    """Exponential backoff multiplier between RPC attempts."""

    # -- client robustness (see repro.rados.client) ------------------------------
    client_op_timeout: float | None = None
    """Per-op client timeout; ``None`` keeps the legacy wait-forever
    behaviour (and its exact event sequence).  Chaos runs set it so no
    client op can hang on a dead OSD."""

    client_max_attempts: int = 5
    """Attempts (first send + resends) before an op fails -ETIMEDOUT."""

    client_retry_backoff: float = 0.5
    """Backoff before resend attempt *k* is ``backoff × k`` seconds."""

    # -- monitor failure detection (see repro.rados.monitor) ----------------------
    mon_down_grace: float = 5.0
    """Beacon silence before an OSD is marked down."""

    mon_out_interval: float = 30.0
    """Down time before an OSD is marked out (CRUSH reweight 0)."""

    mon_check_period: float = 1.0
    """Failure-detector sweep period."""

    mon_failure_reporters: int = 2
    """Distinct heartbeat reporters needed to mark a peer down early."""

    recovery_tick: float = 1.0
    """Recovery manager detection-loop period per OSD."""

    # -- fault injection (see repro.faults) -------------------------------------
    fault_seed: int = 0
    """Seed of the fault plan's RNG streams; the same seed reproduces
    the exact same fault schedule."""

    fault_plan: object | None = None
    """Optional :class:`repro.faults.FaultPlan` attached to every layer
    by the cluster builders.  Takes precedence over ``dma_fault_rate``."""

    def with_bandwidth(self, bps: float) -> "HardwareProfile":
        """This profile at a different link speed."""
        return replace(self, net_bandwidth=bps)


@dataclass(frozen=True)
class DocephProfile(HardwareProfile):
    """DoCeph feature switches layered on the hardware profile."""

    pipelining: bool = True
    """Overlap segment staging with DMA transmission (§3.3, Fig. 4)."""

    mr_cache: bool = True
    """Reuse pre-established memory regions instead of renegotiating
    the CommChannel per transfer (§3.3)."""

    fallback_enabled: bool = True
    """RPC fallback + cooldown on DMA errors (§4)."""

    cooldown_seconds: float = 2.0
    """DMA disable window after a failure."""

    dma_fault_rate: float = 0.0
    """Injected per-transfer DMA failure probability (robustness tests).
    Shorthand for a fault plan of ``dma,p=<rate>`` seeded with
    ``fault_seed``; ignored when ``fault_plan`` is set."""

    zero_copy: bool = False
    """Skip the DPU-side staging memcpy into DMA-able buffers (Palladium-
    style zero-copy fabric: NIC buffers are DMA-registered, so requests
    move host↔DPU without a bounce-buffer copy charge)."""
