"""Pluggable bulk-data offload strategies (the design-space axis).

The paper hard-codes one point in the offload design space — move the
whole OSD (messenger included) onto the DPU.  Related work maps the
rest: PnO-TCP offloads only the TCP stack to an off-path SmartNIC (the
host still handles the data), and Palladium builds zero-copy DMA
fabrics with no bounce-buffer copy.  This module factors that choice
into one small interface so experiments sweep *strategy* like any other
parameter:

* ``baseline``  — no offload; the full Ceph stack burns host CPU.
* ``tcp-only``  — PnO-TCP: storage-node TCP *stack processing*
  (syscalls, segmentation, softirq, wakeups) moves to the NIC, but the
  host still pays the user↔kernel data copy; topology stays baseline.
* ``full-osd``  — DoCeph as published: OSD + messenger on the DPU,
  BlueStore + proxy on the host, staged DMA in between.
* ``zero-copy`` — DoCeph with a Palladium-style registered-buffer
  fabric: the DPU staging memcpy disappears (``zero_copy=True``).

Every strategy pins the *client* node's TCP costs to the stock model
(``client_tcp``), so a sweep varies only the storage side.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Optional

from ..faults import FaultPlan
from ..sim import Environment
from .builder import Cluster, build_baseline_cluster, build_doceph_cluster
from .config import DocephProfile, HardwareProfile

__all__ = ["OffloadStrategy", "STRATEGY_NAMES", "get_strategy",
           "all_strategies"]


class OffloadStrategy:
    """One point in the offload design space.

    ``make_profile(**overrides)`` yields the strategy's hardware
    profile (overrides applied on top); ``build(env, ...)`` assembles
    the matching cluster topology.
    """

    __slots__ = ("name", "summary", "_profile_fn", "_build_fn")

    def __init__(
        self,
        name: str,
        summary: str,
        profile_fn: Callable[[], HardwareProfile],
        build_fn: Callable[..., Cluster],
    ) -> None:
        self.name = name
        self.summary = summary
        self._profile_fn = profile_fn
        self._build_fn = build_fn

    def make_profile(self, **overrides: Any) -> HardwareProfile:
        """The strategy's profile with ``overrides`` applied on top."""
        profile = self._profile_fn()
        if overrides:
            profile = replace(profile, **overrides)
        return profile

    def build(
        self,
        env: Environment,
        profile: Optional[HardwareProfile] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Any = None,
    ) -> Cluster:
        """Assemble this strategy's cluster (``profile`` defaults to
        :meth:`make_profile`)."""
        if profile is None:
            profile = self.make_profile()
        return self._build_fn(env, profile, fault_plan=fault_plan,
                              tracer=tracer)

    def __repr__(self) -> str:
        return f"<OffloadStrategy {self.name}>"


def _baseline_profile() -> HardwareProfile:
    base = HardwareProfile()
    return replace(base, client_tcp=base.tcp)


def _tcp_only_profile() -> HardwareProfile:
    base = HardwareProfile()
    return replace(base, tcp=base.tcp.stack_free(), client_tcp=base.tcp)


def _full_osd_profile() -> DocephProfile:
    base = DocephProfile()
    return replace(base, client_tcp=base.tcp)


def _zero_copy_profile() -> DocephProfile:
    base = DocephProfile()
    return replace(base, client_tcp=base.tcp, zero_copy=True)


_REGISTRY: dict[str, OffloadStrategy] = {
    s.name: s
    for s in (
        OffloadStrategy(
            "baseline",
            "no offload: full Ceph stack on host CPUs",
            _baseline_profile, build_baseline_cluster,
        ),
        OffloadStrategy(
            "tcp-only",
            "PnO-TCP: NIC runs the TCP stack, host keeps data handling",
            _tcp_only_profile, build_baseline_cluster,
        ),
        OffloadStrategy(
            "full-osd",
            "DoCeph: OSD+messenger on the DPU, staged DMA to the host",
            _full_osd_profile, build_doceph_cluster,
        ),
        OffloadStrategy(
            "zero-copy",
            "DoCeph + registered-buffer fabric: no staging memcpy",
            _zero_copy_profile, build_doceph_cluster,
        ),
    )
}

#: Stable sweep order (cheapest topology first).
STRATEGY_NAMES: tuple[str, ...] = (
    "baseline", "tcp-only", "full-osd", "zero-copy",
)


def get_strategy(name: str) -> OffloadStrategy:
    """Look up a strategy by name (raises ``KeyError`` with the valid
    set listed)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown offload strategy {name!r}; "
            f"choose from {', '.join(STRATEGY_NAMES)}"
        ) from None


def all_strategies() -> tuple[OffloadStrategy, ...]:
    """Every registered strategy in sweep order."""
    return tuple(_REGISTRY[name] for name in STRATEGY_NAMES)
