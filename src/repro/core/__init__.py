"""DoCeph: the paper's contribution.

The transparent ProxyObjectStore on the DPU, the lightweight RPC
control plane, DOCA-style DMA with memory-region caching, pipelined
segmented transfers, the host-side BlueStore server, and the adaptive
fallback/cooldown machinery.
"""

from .doca import CommChannel, DocaDma, MemoryRegion
from .fallback import FallbackController, PROBE_BYTES
from .host_server import HostProxyServer
from .pipeline import DmaPipeline, RequestTiming, segment_sizes
from .proxy_objectstore import ProxyObjectStore, WriteBreakdown
from .rpc import DEFERRED, PROXY_CATEGORY, RpcChannel, RpcError, RpcRequest

__all__ = [
    "CommChannel",
    "DEFERRED",
    "DmaPipeline",
    "DocaDma",
    "FallbackController",
    "HostProxyServer",
    "MemoryRegion",
    "PROBE_BYTES",
    "PROXY_CATEGORY",
    "ProxyObjectStore",
    "RequestTiming",
    "RpcChannel",
    "RpcError",
    "RpcRequest",
    "WriteBreakdown",
    "segment_sizes",
]
