"""DOCA-style DMA wrappers: CommChannel negotiation + memory-region
cache.

Models the NVIDIA DOCA primitives DoCeph builds on (§3.2):

* :class:`MemoryRegion` — a DMA-able buffer that must be *exported*
  (negotiated over the CommChannel) before the engine may touch it;
* :class:`CommChannel` — the negotiation handshake: a fixed round-trip
  latency plus a little CPU on both sides;
* :class:`DocaDma` — transfer entry point that consults the
  memory-region cache: with the cache on (DoCeph's optimization, §3.3),
  a region negotiates once and every later transfer skips the
  handshake; with it off, every transfer pays the negotiation — the
  difference is the MR-cache ablation benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator

from ..hw.cpu import SimThread
from ..hw.dma import DmaEngine, DmaError
from ..hw.node import ClusterNode

__all__ = ["MemoryRegion", "CommChannel", "DocaDma"]

_region_ids = itertools.count(1)


@dataclass(slots=True)
class MemoryRegion:
    """A fixed-size DMA-able buffer on one side of the PCIe bridge."""

    size: int
    side: str = "dpu"  # "dpu" or "host"
    region_id: int = field(default_factory=lambda: next(_region_ids))


class CommChannel:
    """The DOCA CommChannel: export/negotiate memory regions."""

    #: CPU cost of a negotiation on each participating complex.
    NEGOTIATE_CPU = 8.0e-6

    def __init__(self, node: ClusterNode, negotiate_latency: float) -> None:
        self.node = node
        self.env = node.env
        self.negotiate_latency = negotiate_latency
        self.negotiations = 0

    def negotiate(
        self, region: MemoryRegion, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Export ``region`` and exchange access handles (one RTT)."""
        yield from thread.charge(self.NEGOTIATE_CPU)
        yield self.env.timeout(self.negotiate_latency)
        self.negotiations += 1


class DocaDma:
    """DMA transfers with an optional exported-region cache."""

    def __init__(
        self,
        node: ClusterNode,
        comm_channel: CommChannel,
        mr_cache_enabled: bool = True,
    ) -> None:
        if node.dma is None:
            raise ValueError(f"node {node.name} has no DMA engine")
        self.engine: DmaEngine = node.dma
        self.comm = comm_channel
        self.mr_cache_enabled = mr_cache_enabled
        self._exported: set[int] = set()

        # statistics
        self.cache_hits = 0
        self.cache_misses = 0

    def ensure_exported(
        self, region: MemoryRegion, thread: SimThread
    ) -> Generator[Any, Any, float]:
        """Prepare the region's export; returns the negotiation time the
        transfer must additionally occupy the engine's command queue
        for (0 when the MR cache already holds the region).

        The handshake's CPU cost lands on the caller here; its *latency*
        is charged inside the engine because the descriptor exchange
        serializes with data transfers on the same command queue.
        """
        if self.mr_cache_enabled and region.region_id in self._exported:
            self.cache_hits += 1
            return 0.0
        self.cache_misses += 1
        yield from thread.charge(CommChannel.NEGOTIATE_CPU)
        self.comm.negotiations += 1
        if self.mr_cache_enabled:
            self._exported.add(region.region_id)
        return self.comm.negotiate_latency

    def invalidate(self, region: MemoryRegion) -> None:
        """Drop a region from the cache (e.g. after a DMA error)."""
        self._exported.discard(region.region_id)

    def transfer(
        self, region: MemoryRegion, nbytes: int, thread: SimThread
    ) -> Generator[Any, Any, float]:
        """Move ``nbytes`` through ``region``; returns channel-queue wait.

        Raises :class:`~repro.hw.dma.DmaError` on (injected) failure —
        callers route the fallback logic.
        """
        if nbytes > region.size:
            raise ValueError(
                f"transfer of {nbytes} B exceeds region size {region.size} B"
            )
        negotiation = yield from self.ensure_exported(region, thread)
        try:
            waited = yield from self.engine.transfer(
                nbytes, extra_setup=negotiation
            )
        except DmaError:
            # a failed region may be stale — renegotiate next time
            self.invalidate(region)
            raise
        return waited
