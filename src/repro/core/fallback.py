"""Adaptive fallback and cooldown (§4, robustness).

On a DMA failure the proxy immediately reroutes the failed segment —
and everything that follows — through the socket RPC path, preserving
already-completed segments.  An atomic cooldown flag plus expiration
timestamp keeps *all* traffic on the RPC path for a fixed window; after
expiry the next request first issues a small **probe** transfer, and
only a successful probe re-arms the DMA path.

State machine (one controller shared by all requests on a node)::

    ARMED ──failure──▶ COOLDOWN ──expiry──▶ PROBE_DUE ──begin_probe──▶
    PROBING ──probe ok──▶ ARMED
            └─probe fail─▶ COOLDOWN (restarted)

``dma_allowed`` is true only in ARMED.  The transition into PROBING is
guarded: with many concurrent requests, all of them observe
``probe_due()`` true the instant the cooldown expires, but only the one
that wins :meth:`begin_probe` issues the probe transfer — everyone else
stays on the RPC path until the probe resolves.  (Without the guard,
*n* concurrent writers issued *n* duplicate probes per expiry.)
"""

from __future__ import annotations

__all__ = ["FallbackController", "PROBE_BYTES"]

#: Size of the test transfer used to re-validate the DMA path.
PROBE_BYTES = 4096


class FallbackController:
    """Cooldown state machine shared by all requests on one node."""

    def __init__(self, cooldown_seconds: float, enabled: bool = True) -> None:
        self.cooldown_seconds = cooldown_seconds
        self.enabled = enabled
        self._cooldown_until = -float("inf")
        self._needs_probe = False
        self._probe_inflight = False
        self._outage_start: float | None = None

        # statistics
        self.failures = 0
        self.fallback_segments = 0
        self.probes_attempted = 0
        self.probes_succeeded = 0
        #: begin_probe() calls refused because a probe was already out.
        self.probes_suppressed = 0
        #: Per-outage seconds from first failure to the re-arming probe.
        self.recovery_latencies: list[float] = []

    # -- state queries -----------------------------------------------------------
    def dma_allowed(self, now: float) -> bool:
        """May a normal segment use DMA right now?"""
        if not self.enabled:
            return True  # fallback machinery disabled: always try DMA
        return now >= self._cooldown_until and not self._needs_probe

    def in_cooldown(self, now: float) -> bool:
        return self.enabled and now < self._cooldown_until

    def probe_due(self, now: float) -> bool:
        """Cooldown expired but DMA not yet revalidated."""
        return (
            self.enabled
            and self._needs_probe
            and now >= self._cooldown_until
        )

    def probe_inflight(self) -> bool:
        return self._probe_inflight

    # -- transitions -----------------------------------------------------------
    def record_failure(self, now: float) -> None:
        """A DMA transfer failed: start (or restart) the cooldown."""
        self.failures += 1
        if self.enabled:
            self._cooldown_until = now + self.cooldown_seconds
            self._needs_probe = True
            if self._outage_start is None:
                self._outage_start = now

    def record_fallback_segment(self) -> None:
        self.fallback_segments += 1

    def begin_probe(self, now: float) -> bool:
        """Try to claim the single probe slot for this cooldown expiry.

        Returns ``True`` for exactly one caller per expiry; that caller
        MUST follow up with :meth:`record_probe`.  Everyone else gets
        ``False`` and should treat DMA as still disallowed.
        """
        if not self.probe_due(now):
            return False
        if self._probe_inflight:
            self.probes_suppressed += 1
            return False
        self._probe_inflight = True
        return True

    def record_probe(self, success: bool, now: float) -> None:
        """Outcome of a test transfer after cooldown expiry."""
        self._probe_inflight = False
        self.probes_attempted += 1
        if success:
            self.probes_succeeded += 1
            self._needs_probe = False
            if self._outage_start is not None:
                self.recovery_latencies.append(now - self._outage_start)
                self._outage_start = None
        else:
            # still broken: back to cooldown
            self._cooldown_until = now + self.cooldown_seconds

    def __repr__(self) -> str:
        return (
            f"<FallbackController failures={self.failures}"
            f" fallback_segments={self.fallback_segments}"
            f" probes={self.probes_succeeded}/{self.probes_attempted}>"
        )
