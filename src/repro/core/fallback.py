"""Adaptive fallback and cooldown (§4, robustness).

On a DMA failure the proxy immediately reroutes the failed segment —
and everything that follows — through the socket RPC path, preserving
already-completed segments.  An atomic cooldown flag plus expiration
timestamp keeps *all* traffic on the RPC path for a fixed window; after
expiry the next request first issues a small **probe** transfer, and
only a successful probe re-arms the DMA path.
"""

from __future__ import annotations

__all__ = ["FallbackController", "PROBE_BYTES"]

#: Size of the test transfer used to re-validate the DMA path.
PROBE_BYTES = 4096


class FallbackController:
    """Cooldown state machine shared by all requests on one node."""

    def __init__(self, cooldown_seconds: float, enabled: bool = True) -> None:
        self.cooldown_seconds = cooldown_seconds
        self.enabled = enabled
        self._cooldown_until = -float("inf")
        self._needs_probe = False

        # statistics
        self.failures = 0
        self.fallback_segments = 0
        self.probes_attempted = 0
        self.probes_succeeded = 0

    # -- state queries -----------------------------------------------------------
    def dma_allowed(self, now: float) -> bool:
        """May a normal segment use DMA right now?"""
        if not self.enabled:
            return True  # fallback machinery disabled: always try DMA
        return now >= self._cooldown_until and not self._needs_probe

    def in_cooldown(self, now: float) -> bool:
        return self.enabled and now < self._cooldown_until

    def probe_due(self, now: float) -> bool:
        """Cooldown expired but DMA not yet revalidated."""
        return (
            self.enabled
            and self._needs_probe
            and now >= self._cooldown_until
        )

    # -- transitions -----------------------------------------------------------
    def record_failure(self, now: float) -> None:
        """A DMA transfer failed: start (or restart) the cooldown."""
        self.failures += 1
        if self.enabled:
            self._cooldown_until = now + self.cooldown_seconds
            self._needs_probe = True

    def record_fallback_segment(self) -> None:
        self.fallback_segments += 1

    def record_probe(self, success: bool, now: float) -> None:
        """Outcome of a test transfer after cooldown expiry."""
        self.probes_attempted += 1
        if success:
            self.probes_succeeded += 1
            self._needs_probe = False
        else:
            # still broken: back to cooldown
            self._cooldown_until = now + self.cooldown_seconds

    def __repr__(self) -> str:
        return (
            f"<FallbackController failures={self.failures}"
            f" fallback_segments={self.fallback_segments}"
            f" probes={self.probes_succeeded}/{self.probes_attempted}>"
        )
