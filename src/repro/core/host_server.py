"""The host-side proxy server.

The thin remnant of Ceph left on the host under DoCeph (§3.1): it owns
the real BlueStore and exposes it to the DPU over two channels —

* the **RPC listener** (event-driven, §4) for control-plane ops and
  transaction commits;
* the **DMA completion poller** whose per-segment handling cost is
  charged by the pipeline's ``completion_thread`` hook;
* the **write-buffer pool** (Fig. 4): DMA'd request data parks here
  until BlueStore consumes it, providing natural backpressure.

Everything here runs on host CPU under the ``proxy`` category, so the
experiments can show exactly how little host CPU survives the offload
(BlueStore + this server ≈ the paper's 5–6 %).
"""

from __future__ import annotations

from typing import Any, Generator

from ..hw.cpu import SimThread
from ..hw.node import ClusterNode
from ..objectstore.api import NoSuchObject, Transaction
from ..objectstore.bluestore import BlueStore
from ..sim import Container
from .doca import CommChannel
from .rpc import DEFERRED, PROXY_CATEGORY, RpcChannel, RpcRequest

__all__ = ["HostProxyServer"]


class HostProxyServer:
    """Host side of the ProxyObjectStore split."""

    def __init__(self, node: ClusterNode, store: BlueStore, profile: Any) -> None:
        self.node = node
        self.store = store
        self.profile = profile
        self.env = node.env

        self.rpc = RpcChannel(node, profile)
        self.comm = CommChannel(node, profile.comm_channel_negotiate_latency)
        self.write_buffers = Container(
            self.env,
            capacity=profile.host_write_buffer_bytes,
            init=profile.host_write_buffer_bytes,
        )
        #: Polling thread servicing DMA completions (plugged into the
        #: pipeline as its completion hook).
        self.poll_thread = SimThread(
            node.host_cpu, f"{node.name}.proxy-poll", PROXY_CATEGORY
        )
        #: Thread executing BlueStore submissions on behalf of the DPU.
        self.exec_thread = SimThread(
            node.host_cpu, f"{node.name}.proxy-exec", PROXY_CATEGORY
        )

        self.rpc.register_handler("queue_txn", self._handle_queue_txn)
        self.rpc.register_handler("stat", self._handle_stat)
        self.rpc.register_handler("exists", self._handle_exists)
        self.rpc.register_handler("getattr", self._handle_getattr)
        self.rpc.register_handler("list", self._handle_list)
        self.rpc.register_handler("read", self._handle_read)
        self.rpc.register_handler("bulk", self._handle_bulk)

        #: Set by the ProxyObjectStore once its pipelines exist; used to
        #: stream read data back (host → DPU direction).
        self.read_pipeline: Any = None

        # statistics
        self.txns_executed = 0
        self.control_ops = 0

    # ---------------------------------------------------------------- handlers
    def _handle_queue_txn(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Commit a transaction whose bulk data already arrived via DMA
        (or the fallback socket).  Async: BlueStore commit must not
        block the RPC listener."""
        txn = Transaction.decode(req.payload.decoder())
        # span context does not survive the wire encoding; re-attach the
        # one carried by the RPC request so BlueStore's commit span
        # parents under the rpc.queue_txn attempt
        txn.span_ctx = req.span_ctx
        req.reply = DEFERRED
        self.env.process(
            self._execute_txn(req, txn), name=f"{self.node.name}.proxy-txn"
        )
        if False:  # generator form
            yield

    def _execute_txn(
        self, req: RpcRequest, txn: Transaction
    ) -> Generator[Any, Any, None]:
        try:
            info = yield from self.store.queue_transaction(txn, self.exec_thread)
            req.reply = {"host_write": info.device_time,
                         "commit_time": info.total_time}
        except Exception as exc:  # noqa: BLE001 - reported to the DPU
            req.error = str(exc)
        finally:
            if txn.data_len:
                # release the parked request data (Fig. 4 write buffers)
                yield self.write_buffers.put(txn.data_len)
        self.txns_executed += 1
        self.rpc.respond(req)

    def _handle_bulk(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Fallback-path data landing: bytes are already accounted by the
        socket costs; nothing else to do."""
        req.reply = {"ok": True}
        if False:
            yield

    def _handle_stat(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        d = req.payload.decoder()
        coll, oid = d.decode_str(), d.decode_str()
        self.control_ops += 1
        st = yield from self.store.stat(coll, oid, thread)
        req.reply = {"size": st.size, "attrs": st.attrs,
                     "version": st.version, "content": st.content_id}

    def _handle_exists(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        d = req.payload.decoder()
        coll, oid = d.decode_str(), d.decode_str()
        self.control_ops += 1
        ok = yield from self.store.exists(coll, oid, thread)
        req.reply = {"exists": ok}

    def _handle_getattr(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        d = req.payload.decoder()
        coll, oid, key = d.decode_str(), d.decode_str(), d.decode_str()
        self.control_ops += 1
        value = yield from self.store.getattr(coll, oid, key, thread)
        req.reply = {"value": value}

    def _handle_list(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        coll = req.payload.decoder().decode_str()
        self.control_ops += 1
        names = yield from self.store.list_objects(coll, thread)
        req.reply = {"names": names}

    def _handle_read(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Read path (§5.5): host reads from BlueStore, then streams the
        data back to the DPU through the reverse DMA pipeline.  Async."""
        d = req.payload.decoder()
        coll, oid = d.decode_str(), d.decode_str()
        offset, length = d.decode_u64(), d.decode_u64()
        req.reply = DEFERRED
        self.env.process(
            self._execute_read(req, coll, oid, offset, length),
            name=f"{self.node.name}.proxy-read",
        )
        if False:
            yield

    def _execute_read(
        self, req: RpcRequest, coll: str, oid: str, offset: int, length: int
    ) -> Generator[Any, Any, None]:
        try:
            blob = yield from self.store.read(
                coll, oid, offset, length, self.exec_thread,
                span_ctx=req.span_ctx,
            )
            content = blob.parent_id or 0
            if blob.length and self.read_pipeline is not None:
                timing = yield from self.read_pipeline.push(
                    blob.length, self.exec_thread, span_ctx=req.span_ctx
                )
                req.reply = {"length": blob.length, "timing": timing,
                             "content": content}
            else:
                req.reply = {"length": blob.length, "timing": None,
                             "content": content}
        except NoSuchObject as exc:
            req.error = f"ENOENT: {exc}"
        except Exception as exc:  # noqa: BLE001
            req.error = str(exc)
        self.rpc.respond(req)

    def __repr__(self) -> str:
        return f"<HostProxyServer {self.node.name} txns={self.txns_executed}>"
