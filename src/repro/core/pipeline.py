"""Pipelined segmented DMA (§3.3, Figure 4).

The 2 MB hardware cap forces a request of size N into
``k = ceil(N / 2 MB)`` segments.  Naively each segment would be staged
(memcpy into a DMA-able buffer), transferred, and only then would the
next begin.  DoCeph's pipeline overlaps the phases: as soon as segment
*i*'s DMA is posted, segment *i+1* starts staging into the next buffer
from a small pre-exported pool — so staging and transmission proceed
concurrently and the DMA engine rarely idles.

Per-request timing is recorded the way Table 3 reports it:

* ``dma_time`` — engine service time (setup + wire) summed over segments;
* ``dma_wait`` — everything spent *waiting to move data*: free-buffer
  waits plus channel-queue waits (the serial-transfer contention the
  paper attributes DMA-wait to);
* ``stage_time`` — memcpy into staging buffers;
* ``fallback_bytes`` — data rerouted over the RPC socket by the
  fallback machinery.

The same class, pointed the other way (staging on the host), carries
read responses — the symmetric design of §3.3/§5.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..hw.cpu import SimThread
from ..hw.dma import DmaError
from ..sim import Environment, Store
from ..sim.exceptions import SimulationError
from ..sim.machine import Machine
from .doca import CommChannel, DocaDma, MemoryRegion
from .fallback import FallbackController, PROBE_BYTES
from .rpc import RpcChannel
from ..util.bufferlist import BufferList

__all__ = ["DmaPipeline", "RequestTiming", "segment_sizes"]


def segment_sizes(total: int, max_segment: int) -> list[int]:
    """§4's segmentation: each segment is ``min(max transferable,
    remaining bytes)``."""
    if total < 0:
        raise ValueError(f"negative transfer size: {total}")
    if max_segment <= 0:
        raise ValueError("max_segment must be positive")
    sizes = []
    remaining = total
    while remaining > 0:
        seg = min(max_segment, remaining)
        sizes.append(seg)
        remaining -= seg
    return sizes


def union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals.

    Used for DMA-wait: concurrent segments of one request may wait
    simultaneously, and wall-clock waiting must not be double-counted.
    """
    if not intervals:
        return 0.0
    merged = 0.0
    cur_start, cur_end = None, None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            merged += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        merged += cur_end - cur_start
    return merged


@dataclass(slots=True)
class RequestTiming:
    """Latency breakdown of one proxied bulk transfer (Table 3 inputs).

    ``dma_time`` and ``dma_wait`` are *disjoint wall-clock categories*
    over the request's window: an instant counts as DMA time when at
    least one of the request's segments occupies the engine, as
    DMA-wait when at least one is waiting (for a buffer or the channel)
    and none is transferring.  This matches the paper's serial
    per-request decomposition and guarantees
    ``dma_time + dma_wait <= total``.
    """

    size: int = 0
    segments: int = 0
    total: float = 0.0
    stage_time: float = 0.0
    fallback_bytes: int = 0
    wait_intervals: list[tuple[float, float]] = field(default_factory=list)
    service_intervals: list[tuple[float, float]] = field(default_factory=list)

    @property
    def dma_time(self) -> float:
        """Wall-clock time with ≥1 segment in engine service."""
        return union_length(self.service_intervals)

    @property
    def dma_wait(self) -> float:
        """Wall-clock time waiting to move data and not transferring."""
        both = union_length(self.wait_intervals + self.service_intervals)
        return both - self.dma_time

    def merge(self, other: "RequestTiming") -> None:
        self.size += other.size
        self.segments += other.segments
        self.total += other.total
        self.stage_time += other.stage_time
        self.fallback_bytes += other.fallback_bytes
        self.wait_intervals.extend(other.wait_intervals)
        self.service_intervals.extend(other.service_intervals)


class DmaPipeline:
    """Segmented, optionally-pipelined transfers through one DMA engine.

    Parameters
    ----------
    env:
        Simulation environment.
    doca:
        The DMA entry point (engine + MR cache).
    rpc:
        Fallback transport for segments that cannot use DMA.
    fallback:
        Shared cooldown controller.
    stage_thread:
        Thread charged for staging memcpys (DPU proxy thread for writes,
        host proxy thread for read returns).
    memcpy_bandwidth:
        Achieved staging copy rate on that side, bytes/s of wall time.
    segment_bytes / n_buffers:
        Buffer geometry: ``n_buffers`` pre-allocated regions of
        ``segment_bytes`` each.
    pipelined:
        The §3.3 overlap; ``False`` reproduces the naive serial path
        (the pipelining ablation).
    completion_thread:
        Optional far-side polling thread charged a small cost per
        completed segment (§4's polling mode).
    """

    COMPLETION_POLL_CPU = 1.5e-6

    def __init__(
        self,
        env: Environment,
        doca: DocaDma,
        rpc: RpcChannel,
        fallback: FallbackController,
        stage_thread: SimThread,
        memcpy_bandwidth: float,
        segment_bytes: int,
        n_buffers: int = 4,
        pipelined: bool = True,
        completion_thread: Optional[SimThread] = None,
        region_side: str = "dpu",
        zero_copy: bool = False,
    ) -> None:
        if n_buffers < 1:
            raise ValueError("need at least one staging buffer")
        if pipelined and n_buffers < 2:
            raise ValueError("pipelining requires at least two buffers")
        self.env = env
        self.doca = doca
        self.rpc = rpc
        self.fallback = fallback
        self.stage_thread = stage_thread
        self.memcpy_bandwidth = memcpy_bandwidth
        self.segment_bytes = segment_bytes
        self.pipelined = pipelined
        self.completion_thread = completion_thread
        self.zero_copy = zero_copy

        self._buffers: Store = Store(env)
        for _ in range(n_buffers):
            self._buffers.items.append(
                MemoryRegion(segment_bytes, side=region_side)
            )

        # statistics
        self.bytes_pushed = 0
        self.requests = 0

    # ---------------------------------------------------------------- public
    def push(
        self, nbytes: int, thread: SimThread, span_ctx: Any = None
    ) -> Generator[Any, Any, RequestTiming]:
        """Move ``nbytes`` across the bridge; returns the timing record.

        With ``span_ctx`` set, every segment gets a ``dma.segment``
        span (stage/transmit overlap shows as overlapping spans), DMA
        failures are error spans, and rerouted segments get a
        ``dma.fallback`` span retry-linked to the failed attempt."""
        sizes = segment_sizes(nbytes, self.segment_bytes)
        timing = RequestTiming(size=nbytes, segments=len(sizes))
        t_start = self.env.now
        if self.pipelined:
            yield from self._push_pipelined(sizes, thread, timing, span_ctx)
        else:
            yield from self._push_sequential(sizes, thread, timing, span_ctx)
        timing.total = self.env.now - t_start
        self.bytes_pushed += nbytes
        self.requests += 1
        return timing

    # ---------------------------------------------------------------- modes
    def _push_pipelined(
        self,
        sizes: list[int],
        thread: SimThread,
        timing: RequestTiming,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, None]:
        inflight = []
        for i, seg in enumerate(sizes):
            now = self.env.now
            if self.fallback.probe_due(now) and self.fallback.begin_probe(now):
                yield from self._probe(thread, span_ctx)
            if not self.fallback.dma_allowed(self.env.now):
                yield from self._segment_via_rpc(
                    seg, thread, timing, span_ctx, reason="cooldown"
                )
                continue
            seg_span = self._segment_span(span_ctx, i, seg)
            t0 = self.env.now
            region: MemoryRegion = yield self._buffers.get()
            if self.env.now > t0:  # waited for a free staging buffer
                timing.wait_intervals.append((t0, self.env.now))
            yield from self._stage(region, seg, timing, seg_span)
            # post the DMA and immediately start staging the next segment
            inflight.append(
                _DmaSeg(self, region, seg, thread, timing, span_ctx, seg_span)
            )
        for proc in inflight:
            yield proc

    def _push_sequential(
        self,
        sizes: list[int],
        thread: SimThread,
        timing: RequestTiming,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, None]:
        for i, seg in enumerate(sizes):
            now = self.env.now
            if self.fallback.probe_due(now) and self.fallback.begin_probe(now):
                yield from self._probe(thread, span_ctx)
            if not self.fallback.dma_allowed(self.env.now):
                yield from self._segment_via_rpc(
                    seg, thread, timing, span_ctx, reason="cooldown"
                )
                continue
            seg_span = self._segment_span(span_ctx, i, seg)
            t0 = self.env.now
            region: MemoryRegion = yield self._buffers.get()
            if self.env.now > t0:
                timing.wait_intervals.append((t0, self.env.now))
            yield from self._stage(region, seg, timing, seg_span)
            yield from self._dma_segment(region, seg, thread, timing,
                                         span_ctx, seg_span)

    def _segment_span(self, span_ctx: Any, index: int, seg: int) -> Any:
        if span_ctx is None:
            return None
        span = span_ctx.start_span(
            "dma.segment", self.env.now, thread=self.stage_thread,
            nbytes=seg,
        )
        span.tag("seg", index)
        return span

    # ---------------------------------------------------------------- pieces
    def _stage(
        self,
        region: MemoryRegion,
        seg: int,
        timing: RequestTiming,
        span: Any = None,
    ) -> Generator[Any, Any, None]:
        """memcpy ``seg`` bytes into the staging buffer."""
        if self.zero_copy:
            # Palladium-style zero-copy fabric: the wire buffer is
            # already DMA-registered, so no bounce-buffer copy charge.
            if span is not None:
                span.event(self.env.now, "staged")
            return
        wall = seg / self.memcpy_bandwidth
        # charge() takes reference-CPU work; convert so the copy's wall
        # time is exactly seg / memcpy_bandwidth on this complex.
        work = wall * self.stage_thread.cpu.perf
        t0 = self.env.now
        yield from self.stage_thread.charge(work)
        timing.stage_time += self.env.now - t0
        if span is not None:
            span.event(self.env.now, "staged")

    def _dma_segment(
        self,
        region: MemoryRegion,
        seg: int,
        thread: SimThread,
        timing: RequestTiming,
        span_ctx: Any = None,
        span: Any = None,
    ) -> Generator[Any, Any, None]:
        t0 = self.env.now
        closing = False
        try:
            try:
                waited = yield from self.doca.transfer(region, seg, thread)
                if waited > 0:
                    # queueing for the serial channel precedes the service
                    timing.wait_intervals.append((t0, t0 + waited))
                timing.service_intervals.append((t0 + waited, self.env.now))
                if self.completion_thread is not None:
                    yield from self.completion_thread.charge(
                        self.COMPLETION_POLL_CPU
                    )
                if span is not None:
                    span.finish(self.env.now)
            except DmaError:
                self.fallback.record_failure(self.env.now)
                if span is not None:
                    span.error(self.env.now, "dma-error")
                # resend THIS segment over RPC; prior segments preserved
                yield from self._segment_via_rpc(
                    seg, thread, timing, span_ctx, retry_of=span,
                    reason="dma-error",
                )
        except GeneratorExit:
            # the owning process was abandoned mid-transfer: a closing
            # generator may not yield again, but the put below inserts
            # synchronously, so the buffer is still released
            closing = True
            raise
        finally:
            put_event = self._buffers.put(region)
            if not closing:
                yield put_event

    def _segment_via_rpc(
        self,
        seg: int,
        thread: SimThread,
        timing: RequestTiming,
        span_ctx: Any = None,
        retry_of: Any = None,
        reason: str = "",
    ) -> Generator[Any, Any, None]:
        self.fallback.record_fallback_segment()
        timing.fallback_bytes += seg
        fb_span = None
        if span_ctx is not None:
            fb_span = span_ctx.start_span(
                "dma.fallback", self.env.now, thread=thread, nbytes=seg,
            )
            if retry_of is not None:
                fb_span.link(retry_of, "retry")
            if reason:
                fb_span.tag("reason", reason)
        bl = BufferList()
        bl.encode_str("bulk")
        bl.encode_u64(seg)
        yield from self.rpc.call(
            "bulk", bl, thread, bulk_bytes=seg,
            span_ctx=fb_span.context if fb_span is not None else None,
        )
        if fb_span is not None:
            fb_span.finish(self.env.now)

    def _probe(
        self, thread: SimThread, span_ctx: Any = None
    ) -> Generator[Any, Any, None]:
        """Small test transfer deciding whether DMA may be re-enabled."""
        probe_span = None
        if span_ctx is not None:
            probe_span = span_ctx.start_span(
                "dma.probe", self.env.now, thread=thread,
                nbytes=PROBE_BYTES,
            )
        region: MemoryRegion = yield self._buffers.get()
        closing = False
        try:
            yield from self.doca.transfer(region, PROBE_BYTES, thread)
            self.fallback.record_probe(True, self.env.now)
            if probe_span is not None:
                probe_span.finish(self.env.now)
        except DmaError:
            self.fallback.record_probe(False, self.env.now)
            if probe_span is not None:
                probe_span.error(self.env.now, "dma-error")
        except GeneratorExit:
            closing = True
            raise
        finally:
            put_event = self._buffers.put(region)
            if not closing:
                yield put_event


class _DmaSeg(Machine):
    """Flattened pipelined DMA segment.

    Replaces ``env.process(self._dma_segment(...), name="dma-seg")`` in
    :meth:`DmaPipeline._push_pipelined` with a state machine holding the
    whole hot path inline: MR-cache lookup (``DocaDma.ensure_exported``),
    channel request, service sleep, engine accounting, completion-poll
    charge, buffer return.  Event parity with the generator chain is
    exact, including the fault path: engine failure accounting, channel
    release, cache invalidation, then the RPC fallback generator driven
    to completion, and in *every* outcome the staging buffer is put back
    before the machine completes (the generator's ``finally``).

    The ``_dma_segment`` generator remains the sequential-mode
    (ablation) implementation: inlining it there via ``yield from`` has
    no completion event, so a machine cannot substitute without
    changing the digest.
    """

    __slots__ = (
        "_pl",
        "_region",
        "_seg",
        "_thread",
        "_timing",
        "_span_ctx",
        "_span",
        "_t0",
        "_t_req",
        "_req",
        "_negotiation",
        "_waited",
        "_setup",
        "_duration",
        "_exc",
    )

    def __init__(
        self,
        pipeline: DmaPipeline,
        region: MemoryRegion,
        seg: int,
        thread: SimThread,
        timing: RequestTiming,
        span_ctx: Any,
        span: Any,
    ) -> None:
        super().__init__(pipeline.env, "dma-seg")
        self._init_interruptible()
        self._pl = pipeline
        self._region = region
        self._seg = seg
        self._thread = thread
        self._timing = timing
        self._span_ctx = span_ctx
        self._span = span
        self._req: Any = None
        self._exc: Optional[BaseException] = None
        self._start(self._s_kicked)

    def _s_kicked(self, event: Any) -> None:
        self._t0 = self.env.now
        doca = self._pl.doca
        region = self._region
        seg = self._seg
        if seg > region.size:
            self._error_put(
                ValueError(
                    f"transfer of {seg} B exceeds region size {region.size} B"
                )
            )
            return
        # DocaDma.ensure_exported, flattened: cache hit is the zero-event
        # fast path; a miss charges the negotiation CPU on the caller.
        if doca.mr_cache_enabled and region.region_id in doca._exported:
            doca.cache_hits += 1
            self._s_engine(0.0)
            return
        doca.cache_misses += 1
        self._charge(
            self._thread, CommChannel.NEGOTIATE_CPU, self._s_negotiated
        )

    def _s_negotiated(self) -> None:
        doca = self._pl.doca
        doca.comm.negotiations += 1
        if doca.mr_cache_enabled:
            doca._exported.add(self._region.region_id)
        self._s_engine(doca.comm.negotiate_latency)

    def _s_engine(self, negotiation: float) -> None:
        # DmaEngine.transfer, flattened (validations included so a bad
        # segmentation fails the machine the way it failed the process).
        engine = self._pl.doca.engine
        seg = self._seg
        if seg <= 0:
            self._error_put(
                SimulationError(f"transfer size must be positive: {seg}")
            )
            return
        if seg > engine.max_transfer:
            self._error_put(
                SimulationError(
                    f"transfer of {seg} B exceeds hardware cap "
                    f"{engine.max_transfer} B — callers must segment"
                )
            )
            return
        self._negotiation = negotiation
        self._t_req = self.env.now
        req = engine._channels.request()
        self._req = req
        self._park(req, self._s_granted)

    def _s_granted(self, event: Any) -> None:
        engine = self._pl.doca.engine
        waited = self.env.now - self._t_req
        engine.wait_time += waited
        self._waited = waited
        setup = engine.setup_latency + self._negotiation
        duration = setup + self._seg / engine.bandwidth
        self._setup = setup
        self._duration = duration
        self._park(self.env.sleep(duration), self._s_served)

    def _s_served(self, event: Any) -> None:
        pl = self._pl
        engine = pl.doca.engine
        seg = self._seg
        now = self.env.now
        engine.busy_time += self._duration
        engine.setup_time += self._setup
        if (engine.fault_hook is not None and engine.fault_hook(seg)) or (
            engine.fault_injector is not None
            and engine.fault_injector.fire(now, size=seg)
        ):
            # A failed transfer held the channel just as long as a
            # successful one; its bytes stay on the books for busy-time
            # conservation.  Ordering matches the generator unwind:
            # engine stats, channel release, cache invalidation, then
            # the pipeline's DmaError handling and the RPC resend.
            engine.failures += 1
            engine.failed_bytes += seg
            engine._channels.finish(self._req)
            self._req = None
            pl.doca.invalidate(self._region)
            pl.fallback.record_failure(self.env.now)
            if self._span is not None:
                self._span.error(self.env.now, "dma-error")
            self._drive(
                pl._segment_via_rpc(
                    seg, self._thread, self._timing, self._span_ctx,
                    retry_of=self._span, reason="dma-error",
                ),
                self._s_rpc_done,
            )
            return
        engine.transfers += 1
        engine.bytes_transferred += seg
        engine._channels.finish(self._req)
        self._req = None
        timing = self._timing
        waited = self._waited
        t0 = self._t0
        if waited > 0:
            # queueing for the serial channel precedes the service
            timing.wait_intervals.append((t0, t0 + waited))
        timing.service_intervals.append((t0 + waited, self.env.now))
        if pl.completion_thread is not None:
            self._charge(
                pl.completion_thread, pl.COMPLETION_POLL_CPU, self._s_polled
            )
            return
        self._s_polled()

    def _s_polled(self) -> None:
        if self._span is not None:
            self._span.finish(self.env.now)
        self._s_put()

    def _s_rpc_done(self, value: Any) -> None:
        self._s_put()

    def _s_put(self) -> None:
        self._park(self._pl._buffers.put(self._region), self._s_done)

    def _s_done(self, event: Any) -> None:
        self._finish(None)

    # -- failure paths: the buffer is returned before the machine fails,
    # matching the generator's `finally: yield self._buffers.put(region)`.
    def _error_put(self, exc: BaseException) -> None:
        self._exc = exc
        self._park(self._pl._buffers.put(self._region), self._s_error_done)

    def _s_error_done(self, event: Any) -> None:
        exc = self._exc
        self._exc = None
        self._fail(exc)  # type: ignore[arg-type]

    def _on_gen_error(self, exc: BaseException) -> None:
        self._error_put(exc)
