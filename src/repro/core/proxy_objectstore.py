"""ProxyObjectStore: the DPU-side transparent ObjectStore (§3.1–§3.3).

Implements the standard :class:`~repro.objectstore.api.ObjectStore`
interface, so the unmodified OSD plugs into it exactly as it would into
BlueStore — and forwards every call to the host:

* **binary op classification** (§3.2): data-plane operations
  (``queue_transaction`` with payload, ``read``) go through DOCA DMA;
  control-plane operations (``stat``, ``exists``, ``getattr``,
  ``list_objects``, data-less transactions) go over the lightweight RPC
  socket;
* write data is staged in DPU memory and pushed through the
  **pipelined, segmented DMA** path; the commit RPC is sent once the
  full request has landed in the host's write buffers, and the client
  ack only fires after host BlueStore commits — preserving Ceph's
  write-through semantics;
* per-request latency breakdowns (Table 3's Host-write / DMA /
  DMA-wait / Others) are recorded on every write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..hw.cpu import SimThread
from ..hw.node import ClusterNode
from ..objectstore.api import (
    NoSuchObject,
    ObjectStore,
    StatResult,
    StoreError,
    Transaction,
)
from ..util.bufferlist import BufferList, DataBlob
from .doca import DocaDma
from .fallback import FallbackController
from .host_server import HostProxyServer
from .pipeline import DmaPipeline, RequestTiming
from .rpc import PROXY_CATEGORY, RpcError

__all__ = ["ProxyObjectStore", "WriteBreakdown"]

#: DPU-side thread category for proxy work.
DPU_PROXY_CATEGORY = "proxy"


def _store_error(exc: RpcError) -> StoreError:
    """Map a host-side failure back to the ObjectStore exception type."""
    text = str(exc)
    if "NoSuchObject" in text or "ENOENT" in text:
        return NoSuchObject(text)
    return StoreError(text)


@dataclass(slots=True)
class WriteBreakdown:
    """Table 3's per-write latency decomposition."""

    size: int
    total: float
    host_write: float
    dma: float
    dma_wait: float
    stage: float
    fallback_bytes: int = 0

    @property
    def others(self) -> float:
        """Everything not attributed: DPU OSD processing, messenger
        activity, replication coordination, serialization, ACK waits."""
        return max(0.0, self.total - self.host_write - self.dma - self.dma_wait)


class ProxyObjectStore(ObjectStore):
    """The DPU's ObjectStore: a forwarder, not a store."""

    SERIALIZE_CPU = 4.0e-6
    """Cost of serializing one transaction's metadata on the DPU."""

    def __init__(
        self,
        node: ClusterNode,
        server: HostProxyServer,
        profile: Any,
        seed: int = 0,
    ) -> None:
        if node.dpu_cpu is None:
            raise ValueError("ProxyObjectStore requires a DPU-mode node")
        self.node = node
        self.server = server
        self.profile = profile
        self.env = node.env
        self.rpc = server.rpc

        self.doca = DocaDma(
            node, server.comm,
            mr_cache_enabled=getattr(profile, "mr_cache", True),
        )
        self.fallback = FallbackController(
            cooldown_seconds=getattr(profile, "cooldown_seconds", 2.0),
            enabled=getattr(profile, "fallback_enabled", True),
        )

        self._stage_thread = SimThread(
            node.dpu_cpu, f"{node.name}.proxy-stage", DPU_PROXY_CATEGORY
        )
        pipelined = getattr(profile, "pipelining", True)
        self.write_pipeline = DmaPipeline(
            self.env,
            self.doca,
            self.rpc,
            self.fallback,
            stage_thread=self._stage_thread,
            memcpy_bandwidth=profile.dpu_memcpy_bandwidth,
            segment_bytes=profile.dma_max_transfer,
            n_buffers=profile.staging_buffers,
            pipelined=pipelined,
            completion_thread=server.poll_thread,
            region_side="dpu",
            zero_copy=getattr(profile, "zero_copy", False),
        )
        # Reverse direction (read returns): staging buffers on the host
        # side, staged by host CPU at host memcpy rates (§3.3 symmetry).
        self.read_pipeline = DmaPipeline(
            self.env,
            self.doca,
            self.rpc,
            self.fallback,
            stage_thread=server.poll_thread,
            memcpy_bandwidth=12.0e9,
            segment_bytes=profile.dma_max_transfer,
            n_buffers=profile.staging_buffers,
            pipelined=pipelined,
            completion_thread=self._stage_thread,
            region_side="host",
            zero_copy=getattr(profile, "zero_copy", False),
        )
        server.read_pipeline = self.read_pipeline

        # DMA fault injection (``profile.dma_fault_rate`` and friends) is
        # wired by the cluster builder through a repro.faults.FaultPlan.

        #: Per-write breakdown records (cleared by the bench harness).
        self.breakdowns: list[WriteBreakdown] = []

        # statistics
        self.data_ops = 0
        self.control_ops = 0

    # ---------------------------------------------------------------- data plane
    def queue_transaction(
        self, txn: Transaction, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Forward a transaction: bulk via DMA, commit via RPC."""
        data_len = txn.data_len
        payload = txn.encode()
        yield from thread.charge(self.SERIALIZE_CPU * max(1, txn.num_ops))
        span = None
        if txn.span_ctx is not None:
            span = txn.span_ctx.start_span(
                "proxy.dispatch", self.env.now, thread=self._stage_thread,
                nbytes=data_len,
            )
            span.tag("ops", txn.num_ops)
            span.tag("control", data_len == 0)
        ctx = span.context if span is not None else None

        if data_len == 0:
            # §3.2: metadata-only transactions are control plane.
            self.control_ops += 1
            try:
                yield from self.rpc.call(
                    "queue_txn", payload, thread, span_ctx=ctx
                )
            except RpcError as exc:
                if span is not None:
                    span.error(self.env.now, "rpc-error")
                raise _store_error(exc) from None
            if span is not None:
                span.finish(self.env.now)
            return

        if data_len > self.server.write_buffers.capacity:
            if span is not None:
                span.error(self.env.now, "write-buffer-overflow")
            raise StoreError(
                f"request of {data_len} B exceeds the host write-buffer "
                f"pool ({self.server.write_buffers.capacity} B)"
            )
        self.data_ops += 1
        t0 = self.env.now
        # Reserve host-side write-buffer space (Fig. 4 backpressure) …
        yield self.server.write_buffers.get(data_len)
        if span is not None:
            span.event(self.env.now, "write_buffers_reserved")
        # … stream the payload across …
        try:
            timing: RequestTiming = yield from self.write_pipeline.push(
                data_len, thread, span_ctx=ctx
            )
        except RpcError as exc:
            # Bulk transfer failed before the commit RPC was ever sent:
            # the host never saw this transaction, so it will never free
            # the reservation — release it here or the pool leaks and
            # later writes block forever.  Surface the failure as a
            # StoreError like every other backend error.
            yield self.server.write_buffers.put(data_len)
            if span is not None:
                span.error(self.env.now, "rpc-error")
            raise _store_error(exc) from None
        # … then commit on the host and wait for durability.
        try:
            resp = yield from self.rpc.call(
                "queue_txn", payload, thread, span_ctx=ctx
            )
        except RpcError as exc:
            if span is not None:
                span.error(self.env.now, "rpc-error")
            raise _store_error(exc) from None
        if span is not None:
            span.finish(self.env.now)
        host_write = (resp.reply or {}).get("host_write", 0.0)
        self.breakdowns.append(
            WriteBreakdown(
                size=data_len,
                total=self.env.now - t0,
                host_write=host_write,
                dma=timing.dma_time,
                dma_wait=timing.dma_wait,
                stage=timing.stage_time,
                fallback_bytes=timing.fallback_bytes,
            )
        )

    def read(
        self,
        coll: str,
        oid: str,
        offset: int,
        length: int,
        thread: SimThread,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, DataBlob]:
        """Read via the host: request over RPC, data back via DMA."""
        span = None
        if span_ctx is not None:
            span = span_ctx.start_span(
                "proxy.read", self.env.now, thread=self._stage_thread,
                nbytes=length,
            )
        ctx = span.context if span is not None else None
        bl = BufferList()
        bl.encode_str(coll)
        bl.encode_str(oid)
        bl.encode_u64(offset)
        bl.encode_u64(length)
        self.data_ops += 1
        try:
            resp = yield from self.rpc.call("read", bl, thread,
                                            span_ctx=ctx)
        except RpcError as exc:
            if "ENOENT" in str(exc):
                if span is not None:
                    span.error(self.env.now, "enoent")
                raise NoSuchObject(f"{coll}/{oid}") from None
            if span is not None:
                span.error(self.env.now, "rpc-error")
            raise StoreError(str(exc)) from None
        reply = resp.reply or {}
        content = reply.get("content") or None
        if span is not None:
            span.nbytes = reply.get("length", 0)
            span.finish(self.env.now)
        return DataBlob(reply.get("length", 0), parent_id=content)

    # ---------------------------------------------------------------- control plane
    def stat(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, StatResult]:
        reply = yield from self._control("stat", [coll, oid], thread)
        return StatResult(
            size=reply["size"], attrs=reply["attrs"], version=reply["version"],
            content_id=reply.get("content", 0),
        )

    def exists(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, bool]:
        reply = yield from self._control("exists", [coll, oid], thread)
        return reply["exists"]

    def getattr(
        self, coll: str, oid: str, key: str, thread: SimThread
    ) -> Generator[Any, Any, bytes]:
        reply = yield from self._control("getattr", [coll, oid, key], thread)
        return reply["value"]

    def list_objects(
        self, coll: str, thread: SimThread
    ) -> Generator[Any, Any, list[str]]:
        reply = yield from self._control("list", [coll], thread)
        return reply["names"]

    def _control(
        self, op: str, args: list[str], thread: SimThread
    ) -> Generator[Any, Any, dict]:
        bl = BufferList()
        for arg in args:
            bl.encode_str(arg)
        self.control_ops += 1
        try:
            resp = yield from self.rpc.call(op, bl, thread)
        except RpcError as exc:
            raise _store_error(exc) from None
        return resp.reply

    # ---------------------------------------------------------------- metrics
    def reset_breakdowns(self) -> None:
        self.breakdowns.clear()

    def __repr__(self) -> str:
        return (
            f"<ProxyObjectStore {self.node.name} data={self.data_ops}"
            f" control={self.control_ops}>"
        )
