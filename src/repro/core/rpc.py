"""The lightweight DPU↔host RPC channel (control plane + fallback path).

Implements §4's control-plane transport: a persistent socket between the
ProxyObjectStore (DPU) and the host-side server, initialized once at OSD
start.  Each RPC carries a header — operation name, unique request id,
payload length — plus a serialized bufferlist payload.

The same channel doubles as the **fallback bulk path**: when DMA is in
cooldown, request data travels here instead, paying kernel-socket CPU on
*both* ends — which is exactly why the fallback visibly raises host CPU
in the ablation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..hw.cpu import SimThread
from ..hw.net import BandwidthPipe
from ..hw.node import ClusterNode
from ..sim import Event, Store
from ..util.bufferlist import BufferList

__all__ = ["RpcChannel", "RpcRequest", "RpcError", "DEFERRED", "PROXY_CATEGORY"]

#: Sentinel a handler assigns to ``request.reply`` to take ownership of
#: responding (for handlers that must wait on I/O without blocking the
#: listener loop).  The handler later calls :meth:`RpcChannel.respond`.
DEFERRED = object()

#: Host-side thread category for proxy work (counted in host CPU, like
#: the paper's 5.5 %).
PROXY_CATEGORY = "proxy"


class RpcError(Exception):
    """The host handler failed the request."""


@dataclass
class RpcRequest:
    """One in-flight RPC."""

    req_id: int
    op: str
    payload: BufferList
    bulk_bytes: int = 0
    response: Optional[Event] = None
    #: Handler-filled reply payload.
    reply: Any = None
    error: Optional[str] = None
    submitted_at: float = 0.0


class RpcChannel:
    """Persistent DPU↔host socket with request/response matching.

    The DPU side issues :meth:`call`; the host side registers handlers
    (generators executed on the host proxy thread).  Transport costs:

    * latency: one PCIe hop each way;
    * bandwidth: a shared :class:`~repro.hw.net.BandwidthPipe` per
      direction (matters only for fallback bulk traffic);
    * CPU: kernel socket send/recv on the owning complex of each side.
    """

    def __init__(self, node: ClusterNode, profile: Any) -> None:
        if node.dpu_cpu is None:
            raise ValueError("RPC channel requires a DPU-mode node")
        self.node = node
        self.env = node.env
        self.profile = profile
        self._req_ids = itertools.count(1)
        self._server_queue: Store = Store(self.env)
        self._handlers: dict[str, Callable[..., Generator]] = {}

        bw = profile.rpc_socket_bandwidth
        self._to_host = BandwidthPipe(self.env, f"{node.name}.rpc.tx", bw * 8)
        self._to_dpu = BandwidthPipe(self.env, f"{node.name}.rpc.rx", bw * 8)

        self._server_thread = SimThread(
            node.host_cpu, f"{node.name}.proxy-rpc", PROXY_CATEGORY
        )
        self.env.process(self._server_loop(), name=f"{node.name}.proxy-rpc")

        # statistics
        self.calls = 0
        self.bulk_bytes = 0
        self.errors = 0

    def register_handler(
        self, op: str, handler: Callable[..., Generator]
    ) -> None:
        """Host side: handle requests named ``op``.

        ``handler(request, thread)`` runs on the host proxy thread and
        may set ``request.reply``; raising :class:`RpcError` (or any
        StoreError) marks the request failed.
        """
        self._handlers[op] = handler

    # ---------------------------------------------------------------- DPU side
    def call(
        self,
        op: str,
        payload: BufferList,
        thread: SimThread,
        bulk_bytes: int = 0,
    ) -> Generator[Any, Any, RpcRequest]:
        """Issue one RPC from the DPU; resumes when the reply arrives.

        ``bulk_bytes`` models request data shipped through the socket
        (the fallback path); it rides the pipe and is charged like any
        socket payload on both CPUs.
        """
        req = RpcRequest(
            req_id=next(self._req_ids),
            op=op,
            payload=payload,
            bulk_bytes=bulk_bytes,
            response=self.env.event(),
            submitted_at=self.env.now,
        )
        wire = payload.real_length + bulk_bytes + 32  # header
        tcp = self.profile.tcp
        yield from thread.charge(tcp.send_cpu(wire))
        yield from thread.ctx_switch(tcp.send_ctx(wire))
        yield from self._to_host.transmit(wire)
        yield self.env.timeout(self.node.pcie_rpc_latency)
        yield self._server_queue.put(req)

        yield req.response
        self.calls += 1
        self.bulk_bytes += bulk_bytes
        if req.error is not None:
            self.errors += 1
            raise RpcError(req.error)
        return req

    # ---------------------------------------------------------------- host side
    def _server_loop(self) -> Generator[Any, Any, None]:
        """Event-driven listener on the host (§4: 'persistent socket
        listener … effectively acting as an event-driven loop')."""
        tcp = self.profile.tcp
        thread = self._server_thread
        while True:
            req: RpcRequest = yield self._server_queue.get()
            yield from thread.ctx_switch()
            wire = req.payload.real_length + req.bulk_bytes + 32
            yield from thread.charge(tcp.recv_cpu(wire))
            handler = self._handlers.get(req.op)
            if handler is None:
                req.error = f"no handler for op {req.op!r}"
            else:
                try:
                    yield from handler(req, thread)
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    req.error = f"{type(exc).__name__}: {exc}"
            if req.reply is DEFERRED:
                continue  # the handler owns responding
            yield from self._send_reply(req, thread)

    def respond(self, req: RpcRequest) -> None:
        """Complete a DEFERRED request (called by async handlers)."""
        self.env.process(
            self._deferred_reply(req), name=f"rpc-respond-{req.req_id}"
        )

    def _deferred_reply(self, req: RpcRequest) -> Generator[Any, Any, None]:
        yield from self._send_reply(req, self._server_thread)

    def _send_reply(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        # response path (small unless a read returns bulk data)
        reply_bytes = 64 + getattr(req.reply, "length", 0)
        yield from thread.charge(self.profile.tcp.send_cpu(reply_bytes))
        yield from self._to_dpu.transmit(reply_bytes)
        yield self.env.timeout(self.node.pcie_rpc_latency)
        assert req.response is not None
        req.response.succeed()

    def __repr__(self) -> str:
        return f"<RpcChannel {self.node.name} calls={self.calls}>"
