"""The lightweight DPU↔host RPC channel (control plane + fallback path).

Implements §4's control-plane transport: a persistent socket between the
ProxyObjectStore (DPU) and the host-side server, initialized once at OSD
start.  Each RPC carries a header — operation name, unique request id,
payload length — plus a serialized bufferlist payload.

The same channel doubles as the **fallback bulk path**: when DMA is in
cooldown, request data travels here instead, paying kernel-socket CPU on
*both* ends — which is exactly why the fallback visibly raises host CPU
in the ablation benchmarks.

Reliability semantics
---------------------
A lost request or reply must never hang the simulation: every call
carries a **timeout**; on expiry the caller retries with exponential
backoff (attempt *k* waits ``rpc_timeout_seconds × rpc_backoff_factor^k``)
up to ``rpc_max_retries`` retries, then fails with :class:`RpcError`.
Delivery is therefore at-least-once, but the server **deduplicates by
request id**: a retry of a request whose handler already ran gets the
recorded outcome replayed instead of a second execution (handlers —
BlueStore commits, write-buffer releases — are not idempotent), and a
retry that lands while the original is still executing just re-points
the eventual reply at the newest attempt.  The retried *transport* still
pays socket CPU on both ends — which is why fallback traffic under
faults costs extra CPU.  Request/reply loss and delay are injected
through the unified :mod:`repro.faults` plan (``rpc:request_loss``,
``rpc:reply_loss``, ``rpc:delay``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..hw.cpu import SimThread
from ..hw.net import BandwidthPipe
from ..hw.node import ClusterNode
from ..sim import Event, Store
from ..util.bufferlist import BufferList

__all__ = ["RpcChannel", "RpcRequest", "RpcError", "DEFERRED", "PROXY_CATEGORY"]

#: Sentinel a handler assigns to ``request.reply`` to take ownership of
#: responding (for handlers that must wait on I/O without blocking the
#: listener loop).  The handler later calls :meth:`RpcChannel.respond`.
DEFERRED = object()

#: Host-side thread category for proxy work (counted in host CPU, like
#: the paper's 5.5 %).
PROXY_CATEGORY = "proxy"


class RpcError(Exception):
    """The host handler failed the request."""


@dataclass(slots=True)
class RpcRequest:
    """One attempt of one in-flight RPC (retries are new attempts)."""

    req_id: int
    op: str
    payload: BufferList
    bulk_bytes: int = 0
    response: Optional[Event] = None
    #: Handler-filled reply payload.
    reply: Any = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    #: 0 for the first send, 1.. for retries of the same req_id.
    attempt: int = 0
    #: Wire size of the reply, recorded when the host sends it, so the
    #: caller charges the exact receive cost.
    reply_wire_bytes: int = 0
    #: :class:`repro.trace.SpanContext` of this attempt's span; host
    #: handlers parent their work (BlueStore commit, read pipeline)
    #: under it.  ``None`` when the caller is untraced.
    span_ctx: Any = None


class RpcChannel:
    """Persistent DPU↔host socket with request/response matching.

    The DPU side issues :meth:`call`; the host side registers handlers
    (generators executed on the host proxy thread).  Transport costs:

    * latency: one PCIe hop each way;
    * bandwidth: a shared :class:`~repro.hw.net.BandwidthPipe` per
      direction (matters only for fallback bulk traffic);
    * CPU: kernel socket send/recv on the owning complex of each side.
    """

    def __init__(self, node: ClusterNode, profile: Any) -> None:
        if node.dpu_cpu is None:
            raise ValueError("RPC channel requires a DPU-mode node")
        self.node = node
        self.env = node.env
        self.profile = profile
        self._req_ids = itertools.count(1)
        self._server_queue: Store = Store(self.env)
        self._handlers: dict[str, Callable[..., Generator]] = {}
        # server-side retry dedup: req_id -> executing attempt / outcome
        self._inflight: dict[int, RpcRequest] = {}
        self._done: dict[int, tuple[Any, Optional[str]]] = {}

        bw = profile.rpc_socket_bandwidth
        self._to_host = BandwidthPipe(self.env, f"{node.name}.rpc.tx", bw * 8)
        self._to_dpu = BandwidthPipe(self.env, f"{node.name}.rpc.rx", bw * 8)

        self._server_thread = SimThread(
            node.host_cpu, f"{node.name}.proxy-rpc", PROXY_CATEGORY
        )
        self.env.process(self._server_loop(), name=f"{node.name}.proxy-rpc")

        # reliability knobs (see module docstring)
        self.timeout_seconds: float = getattr(
            profile, "rpc_timeout_seconds", 5.0
        )
        self.max_retries: int = getattr(profile, "rpc_max_retries", 4)
        self.backoff_factor: float = getattr(
            profile, "rpc_backoff_factor", 2.0
        )

        #: Optional :class:`~repro.faults.LayerInjector` (layer "rpc")
        #: injecting request/reply loss and delivery delay.
        self.fault_injector: Optional[Any] = None

        # statistics
        self.calls = 0
        self.bulk_bytes = 0
        self.errors = 0
        self.timeouts = 0
        self.retries = 0
        self.request_losses = 0
        self.reply_losses = 0
        self.delays = 0
        #: Retries the server answered without re-running the handler.
        self.duplicates_suppressed = 0

    def register_handler(
        self, op: str, handler: Callable[..., Generator]
    ) -> None:
        """Host side: handle requests named ``op``.

        ``handler(request, thread)`` runs on the host proxy thread and
        may set ``request.reply``; raising :class:`RpcError` (or any
        StoreError) marks the request failed.
        """
        self._handlers[op] = handler

    # ---------------------------------------------------------------- DPU side
    def call(
        self,
        op: str,
        payload: BufferList,
        thread: SimThread,
        bulk_bytes: int = 0,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, RpcRequest]:
        """Issue one RPC from the DPU; resumes when the reply arrives.

        ``bulk_bytes`` models request data shipped through the socket
        (the fallback path); it rides the pipe and is charged like any
        socket payload on both CPUs.

        Each attempt waits ``timeout_seconds × backoff_factor^attempt``
        for the reply; a timed-out attempt is retried (up to
        ``max_retries`` times) before the call fails with
        :class:`RpcError`.  Attempts are distinct :class:`RpcRequest`
        objects sharing one ``req_id``, so a late reply to a superseded
        attempt triggers only that attempt's stale event.
        """
        req_id = next(self._req_ids)
        wire = payload.real_length + bulk_bytes + 32  # header
        tcp = self.profile.tcp
        send_cpu, _, send_ctx, _ = tcp.costs(wire)
        attempts = 1 + max(0, self.max_retries)
        prev_span = None
        for attempt in range(attempts):
            span = None
            if span_ctx is not None:
                span = span_ctx.start_span(
                    f"rpc.{op}", self.env.now, thread=thread, nbytes=wire,
                )
                span.tag("req_id", req_id)
                span.tag("attempt", attempt)
                if prev_span is not None:
                    span.link(prev_span, "retry")
                prev_span = span
            req = RpcRequest(
                req_id=req_id,
                op=op,
                payload=payload,
                bulk_bytes=bulk_bytes,
                response=self.env.event(),
                submitted_at=self.env.now,
                attempt=attempt,
                span_ctx=span.context if span is not None else None,
            )
            yield from thread.charge(send_cpu)
            yield from thread.ctx_switch(send_ctx)
            yield from self._to_host.transmit(wire)
            latency = self.node.pcie_rpc_latency
            lost = False
            if self.fault_injector is not None:
                spec = self.fault_injector.fire(
                    self.env.now, kind="delay", size=wire
                )
                if spec is not None:
                    latency += spec.delay
                    self.delays += 1
                if self.fault_injector.fire(
                    self.env.now, kind="request_loss", size=wire
                ):
                    lost = True
                    self.request_losses += 1
                    if span is not None:
                        span.tag("dropped", "request-loss")
            yield self.env.timeout(latency)
            if not lost:
                yield self._server_queue.put(req)

            assert req.response is not None
            if self.timeout_seconds > 0:
                deadline = self.timeout_seconds * (
                    self.backoff_factor ** attempt
                )
                yield self.env.any_of(
                    [req.response, self.env.timeout(deadline)]
                )
            else:  # timeout disabled: legacy wait-forever behaviour
                yield req.response

            if req.response.triggered:
                # Receiving the reply is a kernel socket read on the
                # caller's complex — charge it, or fallback bulk reads
                # undercount DPU CPU.
                reply_wire = req.reply_wire_bytes or 64
                _, recv_cpu, _, recv_ctx = tcp.costs(reply_wire)
                yield from thread.charge(recv_cpu)
                yield from thread.ctx_switch(recv_ctx)
                self.calls += 1
                self.bulk_bytes += bulk_bytes
                if req.error is not None:
                    self.errors += 1
                    if span is not None:
                        span.error(self.env.now, "handler-error")
                    raise RpcError(req.error)
                if span is not None:
                    span.finish(self.env.now)
                return req

            self.timeouts += 1
            if span is not None:
                span.error(self.env.now, "timeout")
            if attempt < attempts - 1:
                self.retries += 1
        self.errors += 1
        raise RpcError(
            f"{op}: no reply for req {req_id} after {attempts} attempts"
            f" (timeout)"
        )

    # ---------------------------------------------------------------- host side
    #: Completed-outcome entries kept for retry deduplication.
    DEDUP_CACHE = 4096

    def _server_loop(self) -> Generator[Any, Any, None]:
        """Event-driven listener on the host (§4: 'persistent socket
        listener … effectively acting as an event-driven loop')."""
        tcp = self.profile.tcp
        thread = self._server_thread
        while True:
            req: RpcRequest = yield self._server_queue.get()
            yield from thread.ctx_switch()
            wire = req.payload.real_length + req.bulk_bytes + 32
            yield from thread.charge(tcp.costs(wire)[1])
            if req.req_id in self._done:
                # retry of a completed request: replay the recorded
                # outcome — handlers must not run twice (commits and
                # write-buffer releases are not idempotent)
                req.reply, req.error = self._done[req.req_id]
                self.duplicates_suppressed += 1
                yield from self._send_reply(req, thread)
                continue
            if req.req_id in self._inflight:
                # retry while the original is still executing: answer
                # the newest attempt when that execution completes
                self._inflight[req.req_id] = req
                self.duplicates_suppressed += 1
                continue
            self._inflight[req.req_id] = req
            handler = self._handlers.get(req.op)
            if handler is None:
                req.error = f"no handler for op {req.op!r}"
            else:
                try:
                    yield from handler(req, thread)
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    req.error = f"{type(exc).__name__}: {exc}"
            if req.reply is DEFERRED:
                continue  # the handler owns responding
            req = self._finalize(req)
            yield from self._send_reply(req, thread)

    def _finalize(self, req: RpcRequest) -> RpcRequest:
        """Record ``req``'s outcome for dedup and return the newest
        attempt (a retry may have superseded ``req`` mid-execution)."""
        latest = self._inflight.pop(req.req_id, req)
        self._done[req.req_id] = (req.reply, req.error)
        while len(self._done) > self.DEDUP_CACHE:
            self._done.pop(next(iter(self._done)))
        if latest is not req:
            latest.reply, latest.error = req.reply, req.error
        return latest

    def respond(self, req: RpcRequest) -> None:
        """Complete a DEFERRED request (called by async handlers)."""
        self.env.process(
            self._deferred_reply(req), name=f"rpc-respond-{req.req_id}"
        )

    def _deferred_reply(self, req: RpcRequest) -> Generator[Any, Any, None]:
        req = self._finalize(req)
        yield from self._send_reply(req, self._server_thread)

    def _send_reply(
        self, req: RpcRequest, thread: SimThread
    ) -> Generator[Any, Any, None]:
        # response path (small unless a read returns bulk data)
        reply_bytes = 64 + getattr(req.reply, "length", 0)
        yield from thread.charge(self.profile.tcp.costs(reply_bytes)[0])
        if self.fault_injector is not None and self.fault_injector.fire(
            self.env.now, kind="reply_loss", size=reply_bytes
        ):
            # The host did the send work, but the reply vanishes on the
            # wire; the caller's timeout + retry machinery recovers.
            self.reply_losses += 1
            return
        yield from self._to_dpu.transmit(reply_bytes)
        yield self.env.timeout(self.node.pcie_rpc_latency)
        req.reply_wire_bytes = reply_bytes
        assert req.response is not None
        req.response.succeed()

    def __repr__(self) -> str:
        return f"<RpcChannel {self.node.name} calls={self.calls}>"
