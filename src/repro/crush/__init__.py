"""CRUSH: Controlled Replication Under Scalable Hashing.

A from-scratch implementation of the placement algorithm Ceph uses to
map placement groups onto OSDs (straw2 buckets, firstn replicated
rules, device reweights) — see Weil et al., "CRUSH: Controlled,
scalable, decentralized placement of replicated data", SC'06.
"""

from .buckets import BucketItem, Straw2Bucket, UniformBucket
from .map import ChooseStep, CrushMap, CrushRule

__all__ = [
    "BucketItem",
    "ChooseStep",
    "CrushMap",
    "CrushRule",
    "Straw2Bucket",
    "UniformBucket",
]
