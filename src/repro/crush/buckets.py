"""CRUSH bucket types.

Implements the straw2 bucket (Ceph's default since Hammer) exactly as in
``crush/mapper.c``: each item draws a pseudo-random "straw" from the
rjenkins hash of ``(input x, item id, trial r)``, scaled by
``ln(u) / weight``; the item with the maximal draw wins.  Straw2's key
property — changing one item's weight only moves inputs to or from that
item — is what makes CRUSH rebalancing minimal, and is covered by a
dedicated test.

A ``UniformBucket`` (hash-modulo over equally weighted items) is also
provided for completeness and for tests that need trivially predictable
placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..util.rjenkins import crush_hash32_3

__all__ = ["BucketItem", "Straw2Bucket", "UniformBucket"]


@dataclass(frozen=True)
class BucketItem:
    """One child of a bucket: a device (id >= 0) or a bucket (id < 0)."""

    id: int
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"negative CRUSH weight for item {self.id}")


@dataclass
class Straw2Bucket:
    """A straw2 bucket: weighted selection with minimal data movement."""

    id: int
    name: str
    type_name: str  # e.g. "root", "host"
    items: list[BucketItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.id >= 0:
            raise ValueError("bucket ids must be negative (devices are >= 0)")

    @property
    def weight(self) -> float:
        """Total weight of all children."""
        return sum(item.weight for item in self.items)

    def add_item(self, item_id: int, weight: float) -> None:
        if any(i.id == item_id for i in self.items):
            raise ValueError(f"duplicate item {item_id} in bucket {self.name}")
        self.items.append(BucketItem(item_id, weight))

    def remove_item(self, item_id: int) -> None:
        before = len(self.items)
        self.items = [i for i in self.items if i.id != item_id]
        if len(self.items) == before:
            raise ValueError(f"item {item_id} not in bucket {self.name}")

    def adjust_weight(self, item_id: int, weight: float) -> None:
        for idx, item in enumerate(self.items):
            if item.id == item_id:
                self.items[idx] = BucketItem(item_id, weight)
                return
        raise ValueError(f"item {item_id} not in bucket {self.name}")

    def choose(self, x: int, r: int) -> int:
        """Select one child for input ``x`` at trial ``r`` (straw2 draw).

        Returns the chosen item id; raises if the bucket is empty or all
        weights are zero.
        """
        best_id: int | None = None
        best_draw = -math.inf
        for item in self.items:
            if item.weight <= 0:
                continue
            u = crush_hash32_3(x, item.id & 0xFFFFFFFF, r) & 0xFFFF
            # ln of a uniform (0, 1] draw, scaled by weight: equivalent to
            # an exponential race, giving weight-proportional win odds.
            draw = math.log((u + 1) / 65536.0) / item.weight
            if draw > best_draw:
                best_draw = draw
                best_id = item.id
        if best_id is None:
            raise ValueError(f"bucket {self.name} has no selectable items")
        return best_id


@dataclass
class UniformBucket:
    """Equal-weight hash-modulo bucket (CRUSH 'uniform' type)."""

    id: int
    name: str
    type_name: str
    items: list[BucketItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.id >= 0:
            raise ValueError("bucket ids must be negative")

    @property
    def weight(self) -> float:
        return sum(item.weight for item in self.items)

    def add_item(self, item_id: int, weight: float) -> None:
        if any(i.id == item_id for i in self.items):
            raise ValueError(f"duplicate item {item_id} in bucket {self.name}")
        self.items.append(BucketItem(item_id, weight))

    def choose(self, x: int, r: int) -> int:
        if not self.items:
            raise ValueError(f"bucket {self.name} is empty")
        idx = crush_hash32_3(x, self.id & 0xFFFFFFFF, r) % len(self.items)
        return self.items[idx].id
