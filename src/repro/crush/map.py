"""The CRUSH map: device/bucket hierarchy plus rule evaluation.

Implements the subset of CRUSH that RADOS replication pools use:

* a hierarchy of straw2 buckets (root → host → osd in our testbeds),
* per-device reweight (0 = out, used for failure handling),
* ``firstn`` rules with ``take`` / ``chooseleaf`` / ``emit`` steps and
  collision/retry semantics (``choose_total_tries``).

``map_x`` deterministically maps an input (a placement-group
pseudo-seed) to an ordered list of distinct OSDs spread across the
failure domain, which is exactly what the OSDMap needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .buckets import Straw2Bucket, UniformBucket

__all__ = ["CrushMap", "CrushRule", "ChooseStep"]

Bucket = Union[Straw2Bucket, UniformBucket]


@dataclass(frozen=True)
class ChooseStep:
    """One rule step: pick ``num`` subtrees of ``bucket_type`` and descend
    to leaves (``chooseleaf``).  ``num == 0`` means "pool size"."""

    num: int
    bucket_type: str


@dataclass
class CrushRule:
    """A replication rule: start at ``root_name``, then run the steps."""

    name: str
    root_name: str
    steps: list[ChooseStep] = field(default_factory=list)


class CrushMap:
    """Hierarchy + rules + device reweights."""

    #: Matches Ceph's default choose_total_tries tunable.
    CHOOSE_TOTAL_TRIES = 50

    def __init__(self) -> None:
        self._buckets: dict[int, Bucket] = {}
        self._by_name: dict[str, Bucket] = {}
        self._device_weights: dict[int, float] = {}
        self._reweights: dict[int, float] = {}
        self._rules: dict[str, CrushRule] = {}
        self._next_bucket_id = -1

    # -- construction -----------------------------------------------------------
    def add_bucket(
        self, name: str, type_name: str, uniform: bool = False
    ) -> Bucket:
        """Create an empty bucket and return it."""
        if name in self._by_name:
            raise ValueError(f"duplicate bucket name: {name}")
        bucket_id = self._next_bucket_id
        self._next_bucket_id -= 1
        bucket: Bucket
        if uniform:
            bucket = UniformBucket(bucket_id, name, type_name)
        else:
            bucket = Straw2Bucket(bucket_id, name, type_name)
        self._buckets[bucket_id] = bucket
        self._by_name[name] = bucket
        return bucket

    def add_device(self, parent: str, osd_id: int, weight: float = 1.0) -> None:
        """Register OSD ``osd_id`` under bucket ``parent``."""
        if osd_id < 0:
            raise ValueError("device ids must be >= 0")
        if osd_id in self._device_weights:
            raise ValueError(f"duplicate device: osd.{osd_id}")
        self.bucket(parent).add_item(osd_id, weight)
        self._device_weights[osd_id] = weight
        self._reweights[osd_id] = 1.0

    def link_bucket(self, parent: str, child: str) -> None:
        """Attach bucket ``child`` under ``parent`` with its subtree weight."""
        child_bucket = self.bucket(child)
        self.bucket(parent).add_item(child_bucket.id, child_bucket.weight)

    def add_rule(self, rule: CrushRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"duplicate rule: {rule.name}")
        if rule.root_name not in self._by_name:
            raise ValueError(f"rule {rule.name}: unknown root {rule.root_name}")
        self._rules[rule.name] = rule

    @staticmethod
    def replicated_rule(
        name: str = "replicated_rule",
        root: str = "default",
        failure_domain: str = "host",
    ) -> CrushRule:
        """The standard RADOS replicated rule: chooseleaf firstn 0 type
        <failure_domain>, emit."""
        return CrushRule(
            name=name,
            root_name=root,
            steps=[ChooseStep(num=0, bucket_type=failure_domain)],
        )

    # -- lookups ---------------------------------------------------------------
    def bucket(self, name: str) -> Bucket:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(f"unknown bucket: {name}") from None

    def devices(self) -> list[int]:
        return sorted(self._device_weights)

    def rule(self, name: str) -> CrushRule:
        try:
            return self._rules[name]
        except KeyError:
            raise ValueError(f"unknown rule: {name}") from None

    # -- reweight / failure handling ------------------------------------------------
    def set_reweight(self, osd_id: int, reweight: float) -> None:
        """Override a device's effective weight multiplier in [0, 1].

        ``0`` marks the device out (the monitor does this on failure)."""
        if osd_id not in self._device_weights:
            raise ValueError(f"unknown device: osd.{osd_id}")
        if not 0.0 <= reweight <= 1.0:
            raise ValueError(f"reweight must be in [0, 1], got {reweight}")
        self._reweights[osd_id] = reweight

    def is_selectable(self, osd_id: int) -> bool:
        return self._reweights.get(osd_id, 0.0) > 0.0

    # -- mapping -----------------------------------------------------------------
    def map_x(self, rule_name: str, x: int, num_rep: int) -> list[int]:
        """Map input ``x`` to up to ``num_rep`` distinct OSDs.

        Implements firstn chooseleaf with collision retry.  May return
        fewer than ``num_rep`` devices if the hierarchy cannot satisfy
        the failure-domain constraint (like real CRUSH).
        """
        rule = self.rule(rule_name)
        root = self.bucket(rule.root_name)
        result: list[int] = []
        for step in rule.steps:
            want = step.num if step.num > 0 else num_rep
            result.extend(
                self._chooseleaf_firstn(root, x, want, step.bucket_type, result)
            )
        return result[:num_rep]

    def _chooseleaf_firstn(
        self,
        root: Bucket,
        x: int,
        num: int,
        domain_type: str,
        already: list[int],
    ) -> list[int]:
        chosen: list[int] = []
        chosen_domains: set[int] = set()
        rep = 0
        tries = 0
        while len(chosen) < num and tries < self.CHOOSE_TOTAL_TRIES:
            r = rep + tries
            tries += 1
            domain = self._descend_to_type(root, x, r, domain_type)
            if domain is None or domain.id in chosen_domains:
                continue
            leaf = self._descend_to_leaf(domain, x, r)
            if leaf is None or leaf in chosen or leaf in already:
                continue
            chosen.append(leaf)
            chosen_domains.add(domain.id)
            rep += 1
        return chosen

    def _descend_to_type(
        self, bucket: Bucket, x: int, r: int, type_name: str
    ) -> Optional[Bucket]:
        """Walk down from ``bucket`` until reaching a bucket of
        ``type_name`` (straw2 choice at every level)."""
        current = bucket
        for _ in range(16):  # hierarchy depth guard
            if current.type_name == type_name:
                return current
            try:
                child_id = current.choose(x, r)
            except ValueError:
                return None
            if child_id >= 0:
                return None  # hit a device before the wanted type
            current = self._buckets[child_id]
        return None

    def _descend_to_leaf(self, bucket: Bucket, x: int, r: int) -> Optional[int]:
        """Walk from ``bucket`` down to a selectable device."""
        current = bucket
        for _ in range(16):
            try:
                child_id = current.choose(x, r)
            except ValueError:
                return None
            if child_id >= 0:
                return child_id if self.is_selectable(child_id) else None
            current = self._buckets[child_id]
        return None

    def __repr__(self) -> str:
        return (
            f"<CrushMap {len(self._device_weights)} devices,"
            f" {len(self._buckets)} buckets, {len(self._rules)} rules>"
        )
