"""Build the optional compiled simulation kernel (``_ckernel.c`` → ``.so``).

Lives at the package top level, *outside* the simulated layers: building
shells out to the C compiler, and SIM201 (rightly) bans real
subprocesses anywhere under ``repro/sim/``.  The simulation side only
ever imports the finished artifact (see :mod:`repro.sim.compiled`).

No third-party build system is involved — just the in-tree compiler and
the interpreter's own headers — so the build is a single, reproducible
command::

    cc -O2 -fPIC -shared -I<python-include> _ckernel.c -o _ckernel<ext-suffix>

Invoke via ``python -m repro engine build`` or
``repro.engine_build.build()``.
"""

from __future__ import annotations

import shutil
import subprocess
import sysconfig
from pathlib import Path
from typing import Optional

#: Compilers probed in order when $CC is not forced by the caller.
_COMPILERS = ("cc", "gcc", "clang")


def source_path() -> Path:
    """Location of the kernel's C source inside the package."""
    return Path(__file__).resolve().parent / "sim" / "_ckernel.c"


def artifact_path() -> Path:
    """Target path of the built extension (importable as repro.sim._ckernel)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return source_path().with_name("_ckernel" + suffix)


def find_compiler(explicit: Optional[str] = None) -> Optional[str]:
    """Resolve a C compiler binary, or None if the box has none."""
    candidates = (explicit,) if explicit else _COMPILERS
    for name in candidates:
        if name and shutil.which(name):
            return name
    return None


def build(
    compiler: Optional[str] = None,
    force: bool = False,
    quiet: bool = False,
) -> Path:
    """Compile ``_ckernel.c`` into an importable extension module.

    Skips the compile when the artifact is already newer than the
    source (unless ``force``).  Raises ``RuntimeError`` when no compiler
    is available and ``subprocess.CalledProcessError`` when the compile
    itself fails — callers decide whether missing-compiler is fatal
    (the CI perf-engine job) or a graceful fallback (everything else).
    """
    src = source_path()
    out = artifact_path()
    if (
        not force
        and out.exists()
        and out.stat().st_mtime_ns >= src.stat().st_mtime_ns
    ):
        return out
    cc = find_compiler(compiler)
    if cc is None:
        raise RuntimeError(
            "no C compiler found (tried: %s); the pure-Python engine "
            "remains fully functional" % ", ".join(_COMPILERS)
        )
    include = sysconfig.get_paths()["include"]
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include}",
        str(src),
        "-o",
        str(out),
    ]
    subprocess.run(cmd, check=True, capture_output=quiet)
    return out


def clean() -> bool:
    """Remove the built artifact; True if one was present."""
    out = artifact_path()
    if out.exists():
        out.unlink()
        return True
    return False
