"""Unified, deterministic fault injection (the §4 robustness harness).

Every failure the simulation can inject — DMA transfer errors, RPC
request/reply loss and delay, network link degradation, storage I/O
errors — is declared as a :class:`FaultSpec` and scheduled by a seeded
:class:`FaultPlan`.  The plan derives one independent RNG stream per
(layer, scope), so fault schedules are bit-reproducible regardless of
how many nodes exist or in which order the hardware fires operations.

A spec composes four trigger shapes (all optional, all AND-ed):

* ``probability`` — per-operation firing probability (default 1.0, so a
  bare time window means "every operation in the window fails");
* ``window`` — an absolute simulated-time interval ``(start, end)``
  outside which the spec is dormant;
* ``nth`` — fire on exactly the nth operation (1-based) seen by the
  injector for the spec's kind;
* ``burst`` — once triggered, also fail the next ``burst - 1``
  consecutive operations.

Layers and their fault kinds:

========  =======================================  ==========================
layer     kinds                                    injected effect
========  =======================================  ==========================
dma       ``error``                                transfer raises ``DmaError``
rpc       ``request_loss``, ``reply_loss``,        request/reply vanishes (the
          ``delay``                                caller's timeout + retry
                                                   machinery recovers); delay
                                                   adds ``delay`` seconds
net       ``degrade``, ``partition``,              degrade: chunk serialization
          ``corrupt``, ``dup``, ``reorder``,       slowed by ``factor``×;
          ``truncate``, ``jitter``                 partition: every delivery
                                                   crossing the ``nodes``
                                                   boundary during ``window``
                                                   is dropped; the remaining
                                                   kinds drive the wire
                                                   adversary
                                                   (``repro.msgr.adversary``):
                                                   frame corruption,
                                                   duplication, bounded
                                                   reordering, truncation and
                                                   delivery delay-jitter
storage   ``error``                                I/O raises ``StorageError``
========  =======================================  ==========================

The textual plan format (CLI ``--faults``, benchmarks, examples)::

    dma,p=0.02;rpc:reply_loss,nth=3;net:degrade,window=4-5,factor=8

Specs are ``;``-separated; each is ``layer[:kind]`` followed by
``,key=value`` options (``p``/``probability``, ``window=start-end``,
``nth``, ``burst``, ``delay``, ``factor``, ``nodes=a|b``).

A plan instance carries mutable injection counters, so use one plan per
cluster/run; two plans built from the same seed and specs produce
byte-identical schedules and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .util.rng import SeededRng

__all__ = [
    "ADVERSARY_KINDS",
    "FAULT_LAYERS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "LayerInjector",
    "format_fault_specs",
    "parse_fault_specs",
]

#: Hardware layers a spec may target.
FAULT_LAYERS = ("dma", "rpc", "net", "storage")

#: ``net`` kinds handled by the per-messenger wire adversary
#: (:mod:`repro.msgr.adversary`) rather than the NIC pipes or fabric.
ADVERSARY_KINDS = ("corrupt", "dup", "reorder", "truncate", "jitter")

#: Valid fault kinds per layer (first entry is the layer's default).
FAULT_KINDS = {
    "dma": ("error",),
    "rpc": ("request_loss", "reply_loss", "delay"),
    "net": ("degrade", "partition") + ADVERSARY_KINDS,
    "storage": ("error",),
}

#: ``net`` kinds that must never reach the chunk-granular pipe
#: injectors: partitions are topology-level, adversary kinds frame-level.
_PIPE_EXCLUDED = frozenset(("partition",) + ADVERSARY_KINDS)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault shape (immutable, hashable, composable)."""

    layer: str
    kind: str = ""
    probability: float = 1.0
    window: Optional[tuple[float, float]] = None
    nth: Optional[int] = None
    burst: int = 1
    nodes: Optional[tuple[str, ...]] = None
    delay: float = 0.0
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.layer not in FAULT_LAYERS:
            raise ValueError(
                f"unknown fault layer {self.layer!r}; one of {FAULT_LAYERS}"
            )
        kind = self.kind or FAULT_KINDS[self.layer][0]
        object.__setattr__(self, "kind", kind)
        if kind not in FAULT_KINDS[self.layer]:
            raise ValueError(
                f"layer {self.layer!r} has no fault kind {kind!r}; "
                f"one of {FAULT_KINDS[self.layer]}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0,1]: {self.probability}")
        if self.window is not None:
            start, end = self.window
            if end <= start:
                raise ValueError(f"empty fault window: {self.window}")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.delay < 0:
            raise ValueError(f"negative delay: {self.delay}")
        if self.factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {self.factor}")
        if kind == "partition":
            if self.window is None:
                raise ValueError(
                    "net:partition needs a window=start-end (a sustained "
                    "link-down interval, not a per-operation trigger)"
                )
            if not self.nodes:
                raise ValueError(
                    "net:partition needs nodes=a|b (the group to isolate)"
                )

    def active_at(self, now: float) -> bool:
        """Is the spec's time window open at ``now`` (always, if none)?"""
        if self.window is None:
            return True
        return self.window[0] <= now < self.window[1]

    def applies_to(self, scope: str) -> bool:
        """Does the spec target ``scope`` (a node name)?"""
        return self.nodes is None or scope in self.nodes


class LayerInjector:
    """The per-(layer, scope) decision point hardware models consult.

    Hardware calls :meth:`fire` once per operation; the injector walks
    its specs in declaration order and returns the first one that
    triggers (or ``None``).  All randomness comes from the plan-derived
    stream, so the schedule is a pure function of (seed, call sequence).
    """

    def __init__(
        self, plan: "FaultPlan", layer: str, scope: str,
        specs: list[FaultSpec], rng: Any,
    ) -> None:
        self.plan = plan
        self.layer = layer
        self.scope = scope
        self.specs = specs
        self._rng = rng
        self._ops: dict[str, int] = {}
        self._burst_left: dict[int, int] = {}
        # The overwhelmingly common shape — one always-active
        # probabilistic spec with no burst — gets a fast path in
        # :meth:`fire` that makes the identical RNG draw without
        # walking the spec list or maintaining the nth-op counter
        # (which only nth-triggered specs ever read).
        self._simple = (
            len(specs) == 1
            and specs[0].window is None
            and specs[0].nth is None
            and specs[0].burst == 1
            and 0.0 < specs[0].probability < 1.0
        )

    def fire(
        self, now: float, kind: Optional[str] = None, size: int = 0
    ) -> Optional[FaultSpec]:
        """Decide whether this operation fails; returns the spec if so.

        ``kind`` narrows matching for multi-kind layers (RPC); single-
        kind layers pass ``None``.  ``size`` feeds the byte counters.
        """
        quiesced = self.plan.quiesced_at
        if quiesced is not None and now >= quiesced:
            return None
        if self._simple and kind is None:
            spec = self.specs[0]
            if self._rng.random() < spec.probability:
                self.plan._record(self.layer, spec.kind, size)
                return spec
            return None
        key = kind or ""
        index = self._ops.get(key, 0) + 1
        self._ops[key] = index
        for i, spec in enumerate(self.specs):
            if kind is not None and spec.kind != kind:
                continue
            if not spec.active_at(now):
                continue
            hit = False
            if self._burst_left.get(i, 0) > 0:
                self._burst_left[i] -= 1
                hit = True
            elif spec.nth is not None:
                hit = index == spec.nth
                if hit:
                    self._burst_left[i] = spec.burst - 1
            elif spec.probability > 0.0 and (
                spec.probability >= 1.0
                or self._rng.random() < spec.probability
            ):
                hit = True
                self._burst_left[i] = spec.burst - 1
            if hit:
                self.plan._record(self.layer, spec.kind, size)
                return spec
        return None

    def __repr__(self) -> str:
        return (
            f"<LayerInjector {self.layer}@{self.scope} "
            f"{len(self.specs)} specs>"
        )


class FaultPlan:
    """A seeded schedule of faults across every hardware layer.

    Build one per run, attach it to a cluster (the builders do this when
    the plan is passed in, or call :meth:`attach_cluster` post-hoc), and
    read :attr:`injected` / :meth:`snapshot` afterwards.
    """

    def __init__(self, seed: int = 0, specs: Any = ()) -> None:
        self.seed = int(seed)
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._rng = SeededRng(self.seed)
        self._injectors: dict[tuple[str, str], LayerInjector] = {}
        #: ``"layer.kind"`` → number of injected faults.
        self.injected: dict[str, int] = {}
        #: ``"layer.kind"`` → bytes belonging to injected faults.
        self.injected_bytes: dict[str, int] = {}
        #: once set, per-operation injection after this sim-time is off
        #: (see :meth:`quiesce`).
        self.quiesced_at: Optional[float] = None

    def quiesce(self, now: float) -> None:
        """Stop per-operation injection from ``now`` on.

        Open-ended probabilistic specs have no window; a harness whose
        oracle promises "after the faults stop, the healed cluster is
        intact" calls this at the heal boundary, otherwise the
        verifier's own reads keep being failed and every run ends in a
        vacuous violation.  Already-scheduled sustained windows (e.g.
        ``net:partition``) are not cut short — they are bounded by
        construction."""
        self.quiesced_at = now

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the textual spec format (see module doc)."""
        return cls(seed=seed, specs=parse_fault_specs(text))

    # ------------------------------------------------------------- wiring
    def injector(self, layer: str, scope: str) -> LayerInjector:
        """The (cached) injector for ``layer`` on node ``scope``."""
        if layer not in FAULT_LAYERS:
            raise ValueError(f"unknown fault layer: {layer!r}")
        key = (layer, scope)
        inj = self._injectors.get(key)
        if inj is None:
            # partitions are topology-level (Network) and adversary kinds
            # frame-level (messenger); keep both out of the chunk-granular
            # pipe injectors
            specs = [
                s for s in self.specs
                if s.layer == layer and s.applies_to(scope)
                and s.kind not in _PIPE_EXCLUDED
            ]
            rng = self._rng.child(scope).stream(layer)
            inj = self._injectors[key] = LayerInjector(
                self, layer, scope, specs, rng
            )
        return inj

    def adversary_injector(self, scope: str) -> LayerInjector:
        """The (cached) wire-adversary injector for the messenger at
        ``scope``.

        Kept separate from the pipe injector for the same scope — and on
        its own derived RNG stream — so enabling the adversary never
        perturbs the existing ``net:degrade`` draw sequence.
        """
        key = ("net:adversary", scope)
        inj = self._injectors.get(key)
        if inj is None:
            specs = [
                s for s in self.specs
                if s.layer == "net" and s.kind in ADVERSARY_KINDS
                and s.applies_to(scope)
            ]
            rng = self._rng.child(scope).stream("net:adversary")
            inj = self._injectors[key] = LayerInjector(
                self, "net", scope, specs, rng
            )
        return inj

    def layer_specs(self, layer: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.layer == layer]

    def attach_dma(self, engine: Any, scope: str) -> None:
        engine.fault_injector = self.injector("dma", scope)

    def attach_storage(self, device: Any, scope: str) -> None:
        device.fault_injector = self.injector("storage", scope)

    def attach_net(self, nic: Any, scope: str) -> None:
        inj = self.injector("net", scope)
        nic.tx.fault_injector = inj
        nic.rx.fault_injector = inj

    def attach_rpc(self, channel: Any, scope: str) -> None:
        channel.fault_injector = self.injector("rpc", scope)

    def attach_msgr(self, messenger: Any, scope: str) -> None:
        """Arm the wire adversary on one messenger's outbound frames.

        A no-op when the plan has no adversary-kind ``net`` specs for
        ``scope``, so un-adversarial runs keep a ``None`` adversary and
        the messenger's integrity layer stays entirely event-free.
        """
        inj = self.adversary_injector(scope)
        if not inj.specs:
            return
        from .msgr.adversary import WireAdversary  # local: layering

        messenger.adversary = WireAdversary(inj)

    def attach_network(self, network: Any) -> None:
        """Install every ``net:partition`` spec as a sustained link-down
        window on the fabric (drops are recorded in the plan counters)."""
        for spec in self.layer_specs("net"):
            if spec.kind != "partition":
                continue
            assert spec.window is not None and spec.nodes is not None
            network.partition(
                spec.nodes, spec.window[0], spec.window[1],
                on_drop=lambda size: self._record("net", "partition", size),
            )

    def attach_cluster(self, cluster: Any) -> None:
        """Wire every layer of an already-built cluster to this plan."""
        for node in cluster.nodes:
            if node.dma is not None:
                self.attach_dma(node.dma, node.name)
            self.attach_storage(node.ssd, node.name)
            self.attach_net(node.nic, node.name)
        for server in getattr(cluster, "proxy_servers", []):
            self.attach_rpc(server.rpc, server.node.name)
        self.attach_network(cluster.network)
        if any(s.kind in ADVERSARY_KINDS for s in self.layer_specs("net")):
            for osd in getattr(cluster, "osds", []):
                self.attach_msgr(osd.messenger, osd.messenger.address)
            mon = getattr(cluster, "mon", None)
            if mon is not None:
                self.attach_msgr(mon.messenger, mon.messenger.address)
            client = getattr(cluster, "client", None)
            if client is not None:
                self.attach_msgr(client.messenger, client.messenger.address)

    # ------------------------------------------------------------- counters
    def _record(self, layer: str, kind: str, size: int) -> None:
        key = f"{layer}.{kind}"
        self.injected[key] = self.injected.get(key, 0) + 1
        if size:
            self.injected_bytes[key] = self.injected_bytes.get(key, 0) + size

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Stable, comparison-friendly copy of all plan counters."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "injected_bytes": dict(sorted(self.injected_bytes.items())),
        }

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
            f"injected={self.total_injected}>"
        )


def format_fault_specs(specs: Any) -> str:
    """Render specs back into the textual plan format (the exact inverse
    of :func:`parse_fault_specs`): non-default options only, floats via
    ``repr`` so ``parse(format(specs))`` round-trips to equal specs."""

    def fnum(x: float) -> str:
        return repr(int(x)) if float(x).is_integer() else repr(float(x))

    chunks: list[str] = []
    for spec in specs:
        head = spec.layer
        if spec.kind != FAULT_KINDS[spec.layer][0]:
            head = f"{spec.layer}:{spec.kind}"
        opts: list[str] = []
        if spec.probability != 1.0:
            opts.append(f"p={fnum(spec.probability)}")
        if spec.window is not None:
            opts.append(
                f"window={fnum(spec.window[0])}-{fnum(spec.window[1])}"
            )
        if spec.nth is not None:
            opts.append(f"nth={spec.nth}")
        if spec.burst != 1:
            opts.append(f"burst={spec.burst}")
        if spec.delay:
            opts.append(f"delay={fnum(spec.delay)}")
        if spec.factor != 8.0:
            opts.append(f"factor={fnum(spec.factor)}")
        if spec.nodes is not None:
            opts.append("nodes=" + "|".join(spec.nodes))
        chunks.append(",".join([head] + opts))
    return ";".join(chunks)


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse ``"dma,p=0.02;rpc:reply_loss,nth=3"`` into specs."""
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, *options = [part.strip() for part in chunk.split(",")]
        layer, _, kind = head.partition(":")
        kwargs: dict[str, Any] = {"layer": layer.strip(), "kind": kind.strip()}
        for opt in options:
            key, sep, value = opt.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"malformed fault option {opt!r} in {chunk!r}")
            if key in ("p", "probability"):
                kwargs["probability"] = float(value)
            elif key == "window":
                start, sep2, end = value.partition("-")
                if not sep2:
                    raise ValueError(
                        f"window must be start-end, got {value!r}"
                    )
                kwargs["window"] = (float(start), float(end))
            elif key == "nth":
                kwargs["nth"] = int(value)
            elif key == "burst":
                kwargs["burst"] = int(value)
            elif key == "delay":
                kwargs["delay"] = float(value)
            elif key == "factor":
                kwargs["factor"] = float(value)
            elif key == "nodes":
                kwargs["nodes"] = tuple(
                    n.strip() for n in value.split("|") if n.strip()
                )
            else:
                raise ValueError(f"unknown fault option {key!r} in {chunk!r}")
        specs.append(FaultSpec(**kwargs))
    if not specs:
        raise ValueError(f"no fault specs in {text!r}")
    return specs
