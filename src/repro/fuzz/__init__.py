"""Coverage-guided scenario fuzzing over the chaos/durability oracle.

``repro.fuzz`` searches the space of *scenarios* — fault-plan specs
(dma/rpc/net/storage), seeded chaos crash/partition schedules, and
workload shape (clients, object size, duration, mode) — for inputs
that violate the acked-write durability invariant or the no-hang
latency bound.  The search is coverage-guided: every execution's
already-emitted signals (trace span categories, fired ``layer.kind``
fault counters, chaos incident kinds, error/retry spans) feed a
coverage map, and mutation is biased toward keys never seen.

Everything is seeded: the same ``(seed, iterations, corpus)`` replays
the entire session bit-identically, and every violation is shrunk to a
minimal scenario serialized in the textual corpus format (header plus
the PR-1 FaultPlan line) that replays the failure on its own.

Entry points: :func:`run_fuzz` / :class:`Fuzzer` (the session loop),
:func:`execute_scenario` (one input → one verdict), :func:`run_soak`
(checkpoint-resumed long-horizon sessions), and
``python -m repro fuzz`` on the command line.
"""

from .coverage import CoverageMap
from .executor import ScenarioOutcome, execute_scenario, violation_signature
from .fuzzer import FuzzReport, Fuzzer, ViolationRecord, run_fuzz
from .generator import TARGET_KEYS, ScenarioGenerator
from .scenario import (
    SCENARIO_FORMAT_VERSION,
    Scenario,
    scenario_from_text,
    scenario_to_text,
)
from .shrink import ShrinkResult, shrink
from .soak import SOAK_STATE_VERSION, SoakReport, load_soak_state, run_soak

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "SOAK_STATE_VERSION",
    "CoverageMap",
    "FuzzReport",
    "Fuzzer",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioOutcome",
    "ShrinkResult",
    "SoakReport",
    "TARGET_KEYS",
    "ViolationRecord",
    "execute_scenario",
    "load_soak_state",
    "run_fuzz",
    "run_soak",
    "scenario_from_text",
    "scenario_to_text",
    "shrink",
    "violation_signature",
]
