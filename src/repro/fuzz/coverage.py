"""The coverage map: which behaviors the fuzzer has already seen.

Coverage keys are signals the simulation already emits — no extra
instrumentation is added for fuzzing:

* ``span.<category>`` — a trace span of that category was recorded
  (client/msgr/osd/objectstore/dma/rpc/...), plus the synthetic
  ``span.error`` / ``span.retry`` for error status and retry links;
* ``fault.<layer>.<kind>`` — the fault plan actually injected that
  fault at least once (a spec that never fires covers nothing);
* ``chaos.<kind>`` — a chaos incident of that kind ran
  (crash/restart/partition/heal), plus ``chaos.settle_timeout``;
* ``mode.<mode>``, ``client.op_failed``, ``abort.<reason>`` — run-level
  outcomes.

The map counts how often each key has been hit; rarity (``1/count``)
weights parent selection so mutation is biased toward scenarios that
exercised behaviors few other scenarios reached.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["CoverageMap"]


class CoverageMap:
    """Hit counts per coverage key, with rarity weighting."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def add(self, keys: Iterable[str]) -> list[str]:
        """Record one execution's keys; returns the keys seen for the
        first time (sorted — discovery order must not leak set order)."""
        new: list[str] = []
        for key in sorted(set(keys)):
            seen = self.counts.get(key, 0)
            if seen == 0:
                new.append(key)
            self.counts[key] = seen + 1
        return new

    def __contains__(self, key: str) -> bool:
        return key in self.counts

    def __len__(self) -> int:
        return len(self.counts)

    def keys(self) -> list[str]:
        return sorted(self.counts)

    def rarity(self, keys: Iterable[str]) -> float:
        """Sum of ``1/count`` over ``keys`` — higher means the scenario
        touched behaviors few executions have reached."""
        total = 0.0
        for key in keys:
            count = self.counts.get(key, 0)
            if count:
                total += 1.0 / count
        return total

    def as_dict(self) -> dict[str, int]:
        return dict(sorted(self.counts.items()))

    def __repr__(self) -> str:
        return f"<CoverageMap {len(self.counts)} keys>"
