"""Scenario execution: one fuzz input → one verdict + coverage set.

The executor composes the three prior layers: the scenario's
:class:`~repro.faults.FaultPlan` (per-operation dma/rpc/net/storage
faults), the :class:`~repro.chaos.ChaosController` crash/partition
schedule, and a :class:`~repro.trace.Tracer` whose span categories feed
the coverage map.  The oracle is the :class:`~repro.chaos.DurabilityChecker`
verdict plus the no-hang latency bound: every violation string from the
checker, and a synthetic ``no-hang`` violation when any client op
exceeded the bound the profile guarantees.

Storage faults are fail-stop by design (BlueStore treats an I/O error
like real Ceph's EIO assert), so a run they abort is *not* a violation
— it is recorded as ``abort.storage`` coverage and the durability
verdict is skipped (there is no healed cluster to verify against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..chaos import ChaosReport, run_chaos
from ..faults import FaultPlan
from ..hw import StorageError
from ..rados.client import RadosError
from ..trace import Tracer
from .scenario import Scenario

__all__ = ["ScenarioOutcome", "execute_scenario", "violation_signature"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one execution produced (everything the fuzzer consumes)."""

    scenario: Scenario
    violations: tuple[str, ...]
    coverage: frozenset[str]
    fingerprint: str  # ChaosReport fingerprint; "" when the run aborted
    aborted: str  # "" | "storage: ..." | "rados: ..."
    writes_acked: int = 0
    writes_failed: int = 0
    sim_elapsed: float = 0.0
    max_op_latency: float = 0.0
    latency_bound: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


#: Violation-kind classifiers: (marker substring, signature token).  The
#: signature strips object names so "which invariant broke" — not which
#: oid — identifies a finding across shrink steps and corpus replays.
_SIGNATURE_MARKERS: tuple[tuple[str, str], ...] = (
    ("no-hang", "no-hang"),
    ("stat failed", "stat-error"),
    ("missing (stat result", "missing"),
    ("size ", "size"),
    ("read failed", "read-error"),
    ("unreadable", "unreadable"),
    ("short read", "short-read"),
    ("payload identity", "identity"),
    ("stored identity", "identity"),
    ("replicas diverge", "divergence"),
    ("has no copy", "replica-missing"),
    ("no acting set", "no-acting-set"),
)


def violation_signature(violations: Iterable[str]) -> str:
    """Stable class of a violation set, e.g. ``"identity+missing"``."""
    kinds: set[str] = set()
    for violation in violations:
        for marker, token in _SIGNATURE_MARKERS:
            if marker in violation:
                kinds.add(token)
                break
        else:
            kinds.add("other")
    return "+".join(sorted(kinds)) if kinds else "none"


def _coverage_keys(
    scenario: Scenario,
    plan: Optional[FaultPlan],
    tracer: Tracer,
    report: Optional[ChaosReport],
    aborted: str,
) -> frozenset[str]:
    keys: set[str] = {f"mode.{scenario.mode}"}
    for span in tracer.spans:
        keys.add(f"span.{span.category}")
        if span.status == "error":
            keys.add("span.error")
        for _linked, link_kind in span.links:
            if link_kind == "retry":
                keys.add("span.retry")
    if plan is not None:
        for injected_key in plan.injected:
            keys.add(f"fault.{injected_key}")
    if report is not None:
        for incident_kind, _target, _t in report.incidents:
            keys.add(f"chaos.{incident_kind}")
        if report.settle_timeouts:
            keys.add("chaos.settle_timeout")
        if report.writes_failed:
            keys.add("client.op_failed")
        for wire_key, count in report.wire_incidents.items():
            if count:
                keys.add(f"wire.{wire_key}")
        # QoS-plane incidents (multi-tenant scenarios only): admission
        # sheds, mClock limit throttling, reservation-phase service.
        # Zero counters stay silent, mirroring the wire.* convention.
        for qos_key, count in report.qos_incidents.items():
            if count:
                keys.add(f"qos.{qos_key}")
    if aborted:
        keys.add("abort." + aborted.split(":", 1)[0])
    return frozenset(keys)


def execute_scenario(
    scenario: Scenario, tracer_seed: int = 0
) -> ScenarioOutcome:
    """Run ``scenario`` end to end and judge it.

    Deterministic: the outcome (violations, coverage, fingerprint) is a
    pure function of the scenario tuple — the executor re-run on a
    shrunk candidate or a corpus entry reproduces the verdict exactly.
    """
    plan: Optional[FaultPlan] = None
    if scenario.specs:
        plan = FaultPlan(seed=scenario.fault_seed, specs=scenario.specs)
    tracer = Tracer(seed=tracer_seed)
    report: Optional[ChaosReport] = None
    aborted = ""
    try:
        report = run_chaos(
            mode=scenario.mode,
            seed=scenario.chaos_seed,
            duration=scenario.duration,
            clients=scenario.clients,
            object_size=scenario.object_size,
            crashes=scenario.crashes,
            partitions=scenario.partitions,
            tracer=tracer,
            fault_plan=plan,
            think_time=scenario.think_time,
            tenants=scenario.tenants,
        )
    except StorageError as exc:
        aborted = f"storage: {exc}"
    except RadosError as exc:
        aborted = f"rados: {exc}"

    violations: list[str] = []
    if report is not None:
        violations.extend(report.violations)
        if report.max_op_latency > report.latency_bound:
            violations.append(
                f"no-hang: max op latency {report.max_op_latency:.3f}s"
                f" > bound {report.latency_bound:.3f}s"
            )
    coverage = _coverage_keys(scenario, plan, tracer, report, aborted)
    return ScenarioOutcome(
        scenario=scenario,
        violations=tuple(violations),
        coverage=coverage,
        fingerprint=report.fingerprint() if report is not None else "",
        aborted=aborted,
        writes_acked=report.writes_acked if report is not None else 0,
        writes_failed=report.writes_failed if report is not None else 0,
        sim_elapsed=report.sim_elapsed if report is not None else 0.0,
        max_op_latency=report.max_op_latency if report is not None else 0.0,
        latency_bound=report.latency_bound if report is not None else 0.0,
    )


#: Executors share this signature; the fuzzer takes one as a dependency
#: so tests can substitute a synthetic (fast, or deliberately buggy)
#: system under test without touching the loop.
ExecuteFn = Callable[[Scenario], Any]
