"""The fuzzing loop: corpus replay → generate/mutate → execute → shrink.

One :class:`Fuzzer` owns the seeded generator, the coverage map, the
queue of "interesting" scenarios (those that discovered new coverage)
and the regression corpus directory.  A session is:

1. **Corpus replay** — every ``*.plan`` file under the corpus directory
   (shrunk violations from earlier sessions) is replayed first; any
   that still violates is a regression and fails the run.
2. **Fuzzing** — each iteration either mutates a queue parent (chosen
   with probability proportional to the rarity of the coverage it
   discovered) or draws a fresh random scenario, executes it, and folds
   the result into the coverage map.
3. **Shrinking** — the first scenario exhibiting each new violation
   signature is greedily shrunk (re-executing every candidate) and the
   minimal plan is written to the corpus in the textual format.

Determinism: with the same seed, iteration count, executor and corpus
contents, the whole session — every scenario proposed, every verdict,
the report fingerprint — replays bit-identically.  Wall-clock is read
only through :func:`repro.util.wallclock.perf_counter` and only feeds
the (fingerprint-excluded) ``wall_s`` field and the ``--time-budget``
cutoff.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..util.rng import SeededRng
from ..util.wallclock import perf_counter
from .coverage import CoverageMap
from .executor import execute_scenario, violation_signature
from .generator import ScenarioGenerator
from .scenario import Scenario, scenario_from_text, scenario_to_text
from .shrink import shrink

__all__ = ["FuzzReport", "Fuzzer", "ViolationRecord", "run_fuzz"]


@dataclass(frozen=True)
class ViolationRecord:
    """One (shrunk) violation the session found or replayed."""

    iteration: int  # -1 for corpus-replay regressions
    signature: str
    violations: tuple[str, ...]
    fingerprint: str
    scenario_text: str  # minimal plan, corpus format
    original_text: str  # the pre-shrink scenario
    shrink_executions: int
    corpus_path: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "signature": self.signature,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
            "scenario": self.scenario_text,
            "original": self.original_text,
            "shrink_executions": self.shrink_executions,
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    seed: int
    iterations_requested: int
    iterations_run: int
    executions: int
    coverage: dict[str, int]
    progression: list[tuple[int, int]]  # (iteration, coverage size)
    violations: list[ViolationRecord]
    corpus_replayed: list[str]
    corpus_failures: list[ViolationRecord]
    wall_s: float = 0.0
    log: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations and not self.corpus_failures

    def fingerprint(self) -> str:
        """Replay digest over everything that is a pure function of
        (seed, iterations, executor, corpus): scenarios judged, coverage
        counts, progression, violation plans.  Excludes wall-clock and
        filesystem paths."""
        doc = {
            "seed": self.seed,
            "iterations": self.iterations_run,
            "executions": self.executions,
            "coverage": dict(sorted(self.coverage.items())),
            "progression": [list(p) for p in self.progression],
            "violations": [
                {
                    "signature": v.signature,
                    "violations": list(v.violations),
                    "fingerprint": v.fingerprint,
                    "scenario": v.scenario_text,
                }
                for v in self.violations
            ],
            "corpus_replayed": list(self.corpus_replayed),
            "corpus_failures": [
                {"signature": v.signature, "scenario": v.scenario_text}
                for v in self.corpus_failures
            ],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "iterations_requested": self.iterations_requested,
            "iterations_run": self.iterations_run,
            "executions": self.executions,
            "coverage": dict(sorted(self.coverage.items())),
            "coverage_keys": sorted(self.coverage),
            "progression": [list(p) for p in self.progression],
            "violations": [v.as_dict() for v in self.violations],
            "corpus_replayed": list(self.corpus_replayed),
            "corpus_failures": [v.as_dict() for v in self.corpus_failures],
            "wall_s": round(self.wall_s, 6),
            "fingerprint": self.fingerprint(),
        }


class Fuzzer:
    """Coverage-guided scenario fuzzer over the chaos/durability oracle."""

    def __init__(
        self,
        seed: int = 0,
        corpus_dir: Optional[str | pathlib.Path] = None,
        execute: Optional[Callable[[Scenario], Any]] = None,
        log: Optional[Callable[[str], None]] = None,
        shrink_budget: int = 60,
        nodes: int = 3,
    ) -> None:
        self.seed = int(seed)
        self.corpus_dir = (
            pathlib.Path(corpus_dir) if corpus_dir is not None else None
        )
        self._execute = execute if execute is not None else execute_scenario
        self._log_sink = log
        self.shrink_budget = shrink_budget
        self.generator = ScenarioGenerator(self.seed, nodes=nodes)
        self._rng = SeededRng(self.seed).child("fuzz").stream("loop")
        self.coverage = CoverageMap()
        #: (scenario, keys it discovered) — the mutation parent pool.
        self.queue: list[tuple[Scenario, tuple[str, ...]]] = []
        #: violation signatures already shrunk (here or in a previous
        #: soak session) — each signature is shrunk at most once.
        self.seen_signatures: set[str] = set()
        self.executions = 0
        self._lines: list[str] = []

    def restore(
        self,
        coverage: dict[str, int],
        queue: Iterable[tuple[str, Iterable[str]]] = (),
        seen_signatures: Iterable[str] = (),
    ) -> None:
        """Preload a previous session's checkpoint (soak mode).

        ``coverage`` is hit counts per key; ``queue`` is the persisted
        mutation-parent pool as ``(scenario text, discovered keys)``
        pairs; ``seen_signatures`` suppresses re-shrinking violation
        classes already minimized in an earlier session."""
        for key, count in coverage.items():
            if count > 0:
                self.coverage.counts[key] = (
                    self.coverage.counts.get(key, 0) + int(count)
                )
        for text, keys in queue:
            self.queue.append((scenario_from_text(text), tuple(keys)))
        self.seen_signatures.update(seen_signatures)

    # ------------------------------------------------------------- plumbing
    def _log(self, message: str) -> None:
        self._lines.append(message)
        if self._log_sink is not None:
            self._log_sink(message)

    def _run_one(self, scenario: Scenario) -> Any:
        self.executions += 1
        return self._execute(scenario)

    # ------------------------------------------------------------- corpus
    def corpus_entries(self) -> list[pathlib.Path]:
        if self.corpus_dir is None or not self.corpus_dir.is_dir():
            return []
        return sorted(self.corpus_dir.glob("*.plan"))

    def _write_corpus_entry(self, record_text: str, signature: str) -> str:
        """Persist a shrunk violation plan; returns the path written."""
        assert self.corpus_dir is not None
        digest = hashlib.sha256(record_text.encode("utf-8")).hexdigest()
        name = f"crash-{signature.replace('+', '_')}-{digest[:12]}.plan"
        self.corpus_dir.mkdir(parents=True, exist_ok=True)
        path = self.corpus_dir / name
        if not path.exists():
            path.write_text(record_text)
        return str(path)

    def _replay_corpus(
        self,
    ) -> tuple[list[str], list[ViolationRecord]]:
        replayed: list[str] = []
        failures: list[ViolationRecord] = []
        for path in self.corpus_entries():
            try:
                scenario = scenario_from_text(path.read_text())
            except ValueError as exc:
                self._log(f"corpus {path.name}: UNPARSEABLE ({exc})")
                failures.append(ViolationRecord(
                    iteration=-1, signature="unparseable",
                    violations=(str(exc),), fingerprint="",
                    scenario_text="", original_text="",
                    shrink_executions=0, corpus_path=str(path),
                ))
                continue
            outcome = self._run_one(scenario)
            new_keys = self.coverage.add(outcome.coverage)
            if new_keys:
                self.queue.append((scenario, tuple(new_keys)))
            replayed.append(path.name)
            if outcome.violations:
                signature = violation_signature(outcome.violations)
                self._log(
                    f"corpus {path.name}: REGRESSION ({signature})"
                )
                failures.append(ViolationRecord(
                    iteration=-1, signature=signature,
                    violations=outcome.violations,
                    fingerprint=outcome.fingerprint,
                    scenario_text=scenario_to_text(scenario),
                    original_text=scenario_to_text(scenario),
                    shrink_executions=0, corpus_path=str(path),
                ))
            else:
                self._log(
                    f"corpus {path.name}: pass"
                    f" (coverage {len(self.coverage)})"
                )
        return replayed, failures

    # ------------------------------------------------------------- search
    def _next_scenario(self) -> Scenario:
        if self.queue and self._rng.random() < 0.7:
            weights = [
                max(self.coverage.rarity(keys), 1e-6)
                for _scenario, keys in self.queue
            ]
            pick = self._rng.random() * sum(weights)
            for (parent, _keys), weight in zip(self.queue, weights):
                pick -= weight
                if pick <= 0.0:
                    return self.generator.mutate(parent, self.coverage)
            parent = self.queue[-1][0]
            return self.generator.mutate(parent, self.coverage)
        return self.generator.random_scenario()

    def _shrink_violation(
        self, scenario: Scenario, signature: str, iteration: int
    ) -> ViolationRecord:
        def still_fails(candidate: Scenario) -> bool:
            outcome = self._run_one(candidate)
            self.coverage.add(outcome.coverage)
            return violation_signature(outcome.violations) == signature

        result = shrink(
            scenario, still_fails, max_executions=self.shrink_budget
        )
        final = self._run_one(result.scenario)
        minimal_text = scenario_to_text(
            result.scenario,
            comments=[
                f"violation signature: {signature}",
                *(f"violation: {v}" for v in final.violations),
                f"found by repro.fuzz seed={self.seed}"
                f" iteration={iteration}",
            ],
        )
        corpus_path = ""
        if self.corpus_dir is not None:
            corpus_path = self._write_corpus_entry(minimal_text, signature)
        self._log(
            f"  shrunk to {result.scenario!r}"
            f" in {result.executions} executions"
            + (f" -> {corpus_path}" if corpus_path else "")
        )
        return ViolationRecord(
            iteration=iteration,
            signature=signature,
            violations=final.violations,
            fingerprint=final.fingerprint,
            scenario_text=minimal_text,
            original_text=scenario_to_text(scenario),
            shrink_executions=result.executions,
            corpus_path=corpus_path,
        )

    # ------------------------------------------------------------- session
    def run(
        self,
        iterations: int = 20,
        time_budget: Optional[float] = None,
    ) -> FuzzReport:
        """One full session: corpus replay, then ``iterations`` fuzz
        iterations (cut short by ``time_budget`` wall seconds, if set)."""
        t_start = perf_counter()
        replayed, corpus_failures = self._replay_corpus()
        progression: list[tuple[int, int]] = []
        violations: list[ViolationRecord] = []
        seen_signatures = self.seen_signatures
        iterations_run = 0
        for iteration in range(iterations):
            if (
                time_budget is not None
                and perf_counter() - t_start >= time_budget
            ):
                self._log(
                    f"time budget {time_budget:g}s exhausted after"
                    f" {iteration} iterations"
                )
                break
            scenario = self._next_scenario()
            outcome = self._run_one(scenario)
            iterations_run += 1
            new_keys = self.coverage.add(outcome.coverage)
            if new_keys:
                self.queue.append((scenario, tuple(new_keys)))
            progression.append((iteration, len(self.coverage)))
            status = ""
            if outcome.aborted:
                status = f", aborted ({outcome.aborted.split(':', 1)[0]})"
            signature = ""
            if outcome.violations:
                signature = violation_signature(outcome.violations)
                status = f", VIOLATION [{signature}]"
            self._log(
                f"iter {iteration}: coverage {len(self.coverage)}"
                f" (+{len(new_keys)}), acked {outcome.writes_acked},"
                f" failed {outcome.writes_failed}{status}"
            )
            if outcome.violations and signature not in seen_signatures:
                seen_signatures.add(signature)
                violations.append(
                    self._shrink_violation(scenario, signature, iteration)
                )
        return FuzzReport(
            seed=self.seed,
            iterations_requested=iterations,
            iterations_run=iterations_run,
            executions=self.executions,
            coverage=self.coverage.as_dict(),
            progression=progression,
            violations=violations,
            corpus_replayed=replayed,
            corpus_failures=corpus_failures,
            wall_s=perf_counter() - t_start,
            log=list(self._lines),
        )


def run_fuzz(
    seed: int = 0,
    iterations: int = 20,
    time_budget: Optional[float] = None,
    corpus_dir: Optional[str | pathlib.Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Convenience wrapper: one seeded session against the real executor."""
    fuzzer = Fuzzer(seed=seed, corpus_dir=corpus_dir, log=log)
    return fuzzer.run(iterations=iterations, time_budget=time_budget)
