"""Seeded scenario generation and coverage-directed mutation.

All randomness flows through one :class:`~repro.util.rng.SeededRng`
stream derived from the fuzzer seed, so the i-th scenario proposed is a
pure function of ``(seed, accept/reject history)`` — the whole fuzzing
session replays bit-identically.

Mutation is *coverage-directed*: :meth:`ScenarioGenerator.mutate`
consults the :class:`~.coverage.CoverageMap` for target keys (the known
universe of fault ``layer.kind`` combinations, chaos incident kinds and
deployment modes) that have never been hit, and with high probability
applies the mutation that specifically aims at one — adding a fault
spec of the missing kind, raising the missing incident count, or
flipping the deployment mode.  Once the universe is covered, mutation
falls back to undirected parameter/seed tweaks, and *parent* rarity
weighting (see :class:`~.fuzzer.Fuzzer`) keeps pushing toward rare
schedules.
"""

from __future__ import annotations

from typing import Optional

from ..faults import FAULT_KINDS, FaultSpec
from ..util.rng import SeededRng
from .coverage import CoverageMap
from .scenario import Scenario

__all__ = ["ScenarioGenerator", "TARGET_KEYS"]

#: Sizes/durations/pacing the generator draws from — small enough that a
#: single execution stays in the ~0.3-1.5 s wall-clock range, large
#: enough to cross segment/stripe boundaries.
_SIZES = (1 << 18, 1 << 19, 1 << 20)
_DURATIONS = (1.0, 1.5, 2.0)
_THINKS = (0.05, 0.1, 0.2)
_MAX_CLIENTS = 2
_MAX_CRASHES = 2
_MAX_PARTITIONS = 1
#: Multi-tenant draws stay small (0 = single-tenant dominates) — QoS
#: machinery only changes the schedule when tenants > 0, and a tenant
#: count at or below the client count guarantees slot contention.
_TENANT_CHOICES = (0, 0, 0, 1, 2)
_MAX_SPECS = 3
_SEED_SPACE = 1 << 12

#: The directed-mutation universe: coverage keys the generator knows how
#: to aim a mutation at.  (The coverage map itself is open — span
#: categories etc. count as coverage when discovered — but only these
#: keys have a targeted move.)
TARGET_KEYS: tuple[str, ...] = tuple(
    [f"fault.{layer}.{kind}"
     for layer in sorted(FAULT_KINDS)
     for kind in FAULT_KINDS[layer]]
    + ["chaos.crash", "chaos.partition", "mode.baseline", "mode.doceph",
       "client.op_failed", "span.error", "span.retry",
       "qos.ops_shed", "qos.limit_deferrals"]
)

#: dma engines and the host<->DPU RPC channel only exist in the DoCeph
#: deployment; aiming at their fault kinds implies flipping the mode.
_DOCEPH_ONLY_LAYERS = ("dma", "rpc")


class ScenarioGenerator:
    """Draws random scenarios and coverage-directed mutants."""

    def __init__(self, seed: int = 0, nodes: int = 3) -> None:
        self.seed = int(seed)
        self.nodes = nodes
        self._rng = SeededRng(self.seed).child("fuzz").stream("gen")

    # ------------------------------------------------------------- drawing
    def random_scenario(self) -> Scenario:
        """A fresh scenario drawn uniformly over the search space."""
        rng = self._rng
        mode = rng.choice(["baseline", "doceph"])
        specs = tuple(
            self._random_spec(mode) for _ in range(rng.randrange(3))
        )
        return Scenario(
            mode=mode,
            clients=rng.randint(1, _MAX_CLIENTS),
            object_size=rng.choice(_SIZES),
            duration=rng.choice(_DURATIONS),
            think_time=rng.choice(_THINKS),
            crashes=rng.randint(0, _MAX_CRASHES),
            partitions=rng.randint(0, _MAX_PARTITIONS),
            chaos_seed=rng.randrange(_SEED_SPACE),
            fault_seed=rng.randrange(_SEED_SPACE),
            tenants=rng.choice(_TENANT_CHOICES),
            specs=specs,
        )

    def _random_spec(
        self, mode: str, layer: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> FaultSpec:
        """One fault spec with parameters sized for the layer/kind."""
        rng = self._rng
        if layer is None:
            # storage faults are fail-stop (they abort the run), so they
            # are drawn rarely; dma/rpc need the DoCeph deployment to
            # matter but are still legal (inert) in baseline.
            pool = ["net", "net", "rpc", "dma"]
            if mode == "doceph":
                pool += ["rpc", "dma"]
            pool.append("storage")
            layer = rng.choice(pool)
        if kind is None:
            kind = rng.choice(list(FAULT_KINDS[layer]))
        p = round(rng.uniform(0.05, 0.4), 3)
        if layer == "dma":
            return FaultSpec(layer="dma", kind="error",
                             probability=round(rng.uniform(0.02, 0.3), 3))
        if layer == "rpc":
            if kind == "delay":
                return FaultSpec(
                    layer="rpc", kind="delay", probability=p,
                    delay=round(rng.uniform(0.2, 1.5), 3),
                )
            return FaultSpec(layer="rpc", kind=kind, probability=p,
                             burst=rng.choice([1, 1, 2, 3]))
        if layer == "net":
            if kind == "jitter":
                return FaultSpec(
                    layer="net", kind="jitter",
                    probability=round(rng.uniform(0.05, 0.35), 3),
                    delay=round(rng.uniform(0.0005, 0.01), 4),
                )
            if kind in ("corrupt", "dup", "reorder", "truncate"):
                # wire-adversary kinds: per-frame probabilistic, with an
                # occasional burst so retransmits get corrupted too
                return FaultSpec(
                    layer="net", kind=kind,
                    probability=round(rng.uniform(0.05, 0.35), 3),
                    burst=rng.choice([1, 1, 1, 2]),
                )
            start = round(rng.uniform(0.5, 2.0), 3)
            length = round(rng.uniform(1.0, 3.0), 3)
            if kind == "partition":
                node = rng.randrange(self.nodes)
                return FaultSpec(
                    layer="net", kind="partition",
                    window=(start, round(start + length, 3)),
                    nodes=(f"node{node}",),
                )
            return FaultSpec(
                layer="net", kind="degrade",
                window=(start, round(start + length, 3)),
                factor=float(rng.choice([2, 4, 8])),
            )
        # storage: nth-triggered so it fires (if at all) after real work;
        # the executor treats the resulting fail-stop abort as coverage.
        return FaultSpec(layer="storage", kind="error",
                         nth=rng.randrange(200, 2000))

    # ------------------------------------------------------------- mutation
    def mutate(self, parent: Scenario, coverage: CoverageMap) -> Scenario:
        """One mutant of ``parent``, directed toward unexplored keys.

        With probability 0.7 (when any :data:`TARGET_KEYS` entry is
        uncovered) the mutation explicitly targets one uncovered key;
        otherwise an undirected tweak is applied.
        """
        rng = self._rng
        unseen = [k for k in TARGET_KEYS if k not in coverage]
        if unseen and rng.random() < 0.7:
            return self._directed(parent, rng.choice(unseen))
        return self._undirected(parent)

    def _directed(self, parent: Scenario, key: str) -> Scenario:
        rng = self._rng
        if key.startswith("fault."):
            _, layer, kind = key.split(".", 2)
            mode = parent.mode
            if layer in _DOCEPH_ONLY_LAYERS:
                mode = "doceph"
            spec = self._random_spec(mode, layer=layer, kind=kind)
            specs = parent.specs[-(_MAX_SPECS - 1):] + (spec,)
            return parent.with_(mode=mode, specs=specs)
        if key == "chaos.crash":
            return parent.with_(crashes=max(1, parent.crashes))
        if key == "chaos.partition":
            return parent.with_(partitions=max(1, parent.partitions))
        if key.startswith("mode."):
            return parent.with_(mode=key.split(".", 1)[1])
        if key.startswith("qos."):
            # Sheds need two contexts sharing a tenant (window is 1 per
            # tenant); deferrals need offered load above the per-tenant
            # limit — both are most likely with everyone on one tenant.
            return parent.with_(tenants=1, clients=_MAX_CLIENTS)
        # client.op_failed / span.error / span.retry: pressure the retry
        # machinery — heavy reply loss plus at least one crash.
        spec = FaultSpec(
            layer="rpc", kind="reply_loss",
            probability=round(rng.uniform(0.3, 0.7), 3),
            burst=rng.choice([2, 3]),
        )
        specs = parent.specs[-(_MAX_SPECS - 1):] + (spec,)
        return parent.with_(
            mode="doceph", crashes=max(1, parent.crashes), specs=specs
        )

    def _undirected(self, parent: Scenario) -> Scenario:
        rng = self._rng
        op = rng.choice([
            "clients", "size", "duration", "think", "crashes",
            "partitions", "chaos_seed", "fault_seed", "mode",
            "tenants", "add_spec", "drop_spec",
        ])
        if op == "clients":
            return parent.with_(clients=rng.randint(1, _MAX_CLIENTS))
        if op == "size":
            return parent.with_(object_size=rng.choice(_SIZES))
        if op == "duration":
            return parent.with_(duration=rng.choice(_DURATIONS))
        if op == "think":
            return parent.with_(think_time=rng.choice(_THINKS))
        if op == "crashes":
            return parent.with_(crashes=rng.randint(0, _MAX_CRASHES))
        if op == "partitions":
            return parent.with_(partitions=rng.randint(0, _MAX_PARTITIONS))
        if op == "chaos_seed":
            return parent.with_(chaos_seed=rng.randrange(_SEED_SPACE))
        if op == "fault_seed":
            return parent.with_(fault_seed=rng.randrange(_SEED_SPACE))
        if op == "mode":
            return parent.with_(
                mode="doceph" if parent.mode == "baseline" else "baseline"
            )
        if op == "tenants":
            return parent.with_(tenants=rng.choice(_TENANT_CHOICES))
        if op == "add_spec":
            spec = self._random_spec(parent.mode)
            return parent.with_(
                specs=parent.specs[-(_MAX_SPECS - 1):] + (spec,)
            )
        # drop_spec
        if not parent.specs:
            return parent.with_(fault_seed=rng.randrange(_SEED_SPACE))
        drop = rng.randrange(len(parent.specs))
        return parent.with_(
            specs=parent.specs[:drop] + parent.specs[drop + 1:]
        )
