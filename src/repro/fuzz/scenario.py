"""Scenario tuples: what one fuzz execution runs, and how it is stored.

A :class:`Scenario` is the fuzzer's unit of search: a workload shape
(mode, clients, object size, duration, think time, tenant count), a
chaos schedule
(crash/partition counts + the chaos seed that draws the incident
timing), and a :class:`~repro.faults.FaultSpec` list with its own fault
seed.  Everything simulated is a pure function of the scenario, so a
scenario *is* a replay.

The corpus format is plain text — a small ``key=value`` header plus the
PR-1 textual FaultPlan line — so a shrunk violation can be read, diffed
and replayed by hand::

    # repro.fuzz scenario v2
    mode=baseline
    clients=1
    size=1048576
    duration=1.0
    think=0.1
    crashes=1
    partitions=0
    chaos_seed=17
    fault_seed=3
    tenants=0
    faults=rpc:reply_loss,p=0.2;net:degrade,window=1-3,factor=4

Lines starting with ``#`` are comments (the fuzzer records the violation
signature there); a missing/empty ``faults=`` line means no fault plan.

Format v2 added the ``tenants`` line (multi-tenant QoS chaos, PR 8);
it defaults to ``0`` when absent, so every v1 corpus entry still parses
to the identical scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..faults import FaultSpec, format_fault_specs, parse_fault_specs

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "Scenario",
    "scenario_from_text",
    "scenario_to_text",
]

SCENARIO_FORMAT_VERSION = 2

_MODES = ("baseline", "doceph")


@dataclass(frozen=True)
class Scenario:
    """One random-but-replayable fuzz input (immutable, hashable)."""

    mode: str = "baseline"
    clients: int = 1
    object_size: int = 1 << 20
    duration: float = 1.0
    think_time: float = 0.1
    crashes: int = 0
    partitions: int = 0
    chaos_seed: int = 0
    fault_seed: int = 0
    #: QoS tenant count (0 = single-tenant, the pre-v2 behavior).
    tenants: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}; one of {_MODES}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.object_size < 4096:
            raise ValueError(
                f"object_size must be >= 4096, got {self.object_size}"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.think_time < 0:
            raise ValueError(f"negative think_time: {self.think_time}")
        if self.crashes < 0 or self.partitions < 0:
            raise ValueError("crashes/partitions must be >= 0")
        if self.tenants < 0:
            raise ValueError(f"tenants must be >= 0, got {self.tenants}")

    # ------------------------------------------------------------- helpers
    @property
    def incidents(self) -> int:
        return self.crashes + self.partitions

    def with_(self, **changes: Any) -> "Scenario":
        """A modified copy (``dataclasses.replace`` veneer)."""
        return replace(self, **changes)

    def key(self) -> str:
        """Canonical one-line identity (used for dedup, not display)."""
        return scenario_to_text(self, header=False).replace("\n", ";")

    def __repr__(self) -> str:
        return (
            f"<Scenario {self.mode} c{self.clients}"
            f" {self.object_size >> 10}K d{self.duration:g}"
            f" crash={self.crashes} part={self.partitions}"
            f" cs={self.chaos_seed} fs={self.fault_seed}"
            f" specs={len(self.specs)}>"
        )


def _fnum(x: float) -> str:
    return repr(int(x)) if float(x).is_integer() else repr(float(x))


def scenario_to_text(
    scenario: Scenario,
    header: bool = True,
    comments: Optional[list[str]] = None,
) -> str:
    """Serialize to the corpus format; ``comments`` become ``#`` lines."""
    lines: list[str] = []
    if header:
        lines.append(f"# repro.fuzz scenario v{SCENARIO_FORMAT_VERSION}")
    for comment in comments or []:
        lines.append(f"# {comment}")
    lines += [
        f"mode={scenario.mode}",
        f"clients={scenario.clients}",
        f"size={scenario.object_size}",
        f"duration={_fnum(scenario.duration)}",
        f"think={_fnum(scenario.think_time)}",
        f"crashes={scenario.crashes}",
        f"partitions={scenario.partitions}",
        f"chaos_seed={scenario.chaos_seed}",
        f"fault_seed={scenario.fault_seed}",
        f"tenants={scenario.tenants}",
        f"faults={format_fault_specs(scenario.specs)}",
    ]
    return "\n".join(lines) + "\n"


def scenario_from_text(text: str) -> Scenario:
    """Parse the corpus format back into a :class:`Scenario`."""
    fields: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ValueError(f"malformed scenario line {line!r}")
        fields[key.strip()] = value.strip()
    unknown = sorted(set(fields) - {
        "mode", "clients", "size", "duration", "think", "crashes",
        "partitions", "chaos_seed", "fault_seed", "tenants", "faults",
    })
    if unknown:
        raise ValueError(f"unknown scenario field(s): {', '.join(unknown)}")
    faults_text = fields.get("faults", "")
    specs: tuple[FaultSpec, ...] = ()
    if faults_text:
        specs = tuple(parse_fault_specs(faults_text))
    try:
        return Scenario(
            mode=fields.get("mode", "baseline"),
            clients=int(fields.get("clients", "1")),
            object_size=int(fields.get("size", str(1 << 20))),
            duration=float(fields.get("duration", "1.0")),
            think_time=float(fields.get("think", "0.1")),
            crashes=int(fields.get("crashes", "0")),
            partitions=int(fields.get("partitions", "0")),
            chaos_seed=int(fields.get("chaos_seed", "0")),
            fault_seed=int(fields.get("fault_seed", "0")),
            tenants=int(fields.get("tenants", "0")),
            specs=specs,
        )
    except ValueError:
        raise
    except Exception as exc:  # int()/float() TypeError etc.
        raise ValueError(f"malformed scenario: {exc}") from exc
