"""Greedy scenario shrinking: every violation must replay minimally.

The shrinker walks a fixed, deterministic pass order — fault-spec
deletion, incident deletion, then parameter halving — re-running the
candidate through the caller-supplied predicate at each step and
keeping any reduction that still reproduces the violation (same
signature, as judged by the predicate).  Passes repeat until a whole
sweep makes no progress (a local 1-minimum) or the execution budget is
exhausted, so the result is the smallest scenario this greedy order can
reach — typically a single fault spec and/or a single incident at the
minimum workload shape.
"""

from __future__ import annotations

from typing import Callable

from .scenario import Scenario

__all__ = ["ShrinkResult", "shrink"]

_MIN_OBJECT_SIZE = 1 << 16
_MIN_DURATION = 0.5


class ShrinkResult:
    """The minimal scenario plus how much work finding it took."""

    __slots__ = ("scenario", "executions", "budget_exhausted")

    def __init__(
        self, scenario: Scenario, executions: int, budget_exhausted: bool
    ) -> None:
        self.scenario = scenario
        self.executions = executions
        self.budget_exhausted = budget_exhausted

    def __repr__(self) -> str:
        return (
            f"<ShrinkResult {self.scenario!r} after "
            f"{self.executions} executions>"
        )


def shrink(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_executions: int = 80,
) -> ShrinkResult:
    """Greedy-shrink ``scenario`` while ``still_fails`` holds.

    ``still_fails`` must re-execute the candidate and return ``True``
    iff the original violation (same signature) reproduces.  The input
    scenario is assumed failing; it is returned unchanged if nothing
    smaller reproduces.
    """
    current = scenario
    executions = 0

    def attempt(candidate: Scenario) -> bool:
        nonlocal current, executions
        if executions >= max_executions or candidate == current:
            return False
        executions += 1
        if still_fails(candidate):
            current = candidate
            return True
        return False

    progress = True
    while progress and executions < max_executions:
        progress = False

        # 1. greedy spec deletion, last-declared first (later specs are
        #    usually the mutation that got piled on top)
        index = len(current.specs) - 1
        while index >= 0:
            specs = current.specs[:index] + current.specs[index + 1:]
            if attempt(current.with_(specs=specs)):
                progress = True
            index -= 1

        # 2. incident deletion: drop whole classes first, then decrement
        for field_name in ("partitions", "crashes"):
            if getattr(current, field_name) > 0:
                if attempt(current.with_(**{field_name: 0})):
                    progress = True
            while getattr(current, field_name) > 0:
                fewer = getattr(current, field_name) - 1
                if not attempt(current.with_(**{field_name: fewer})):
                    break
                progress = True

        # 3. parameter halving toward the floor
        while current.clients > 1:
            if not attempt(
                current.with_(clients=max(1, current.clients // 2))
            ):
                break
            progress = True
        while current.object_size > _MIN_OBJECT_SIZE:
            smaller = max(_MIN_OBJECT_SIZE, current.object_size // 2)
            if not attempt(current.with_(object_size=smaller)):
                break
            progress = True
        while current.duration > _MIN_DURATION:
            shorter = max(_MIN_DURATION, round(current.duration / 2, 3))
            if not attempt(current.with_(duration=shorter)):
                break
            progress = True

    return ShrinkResult(current, executions, executions >= max_executions)
