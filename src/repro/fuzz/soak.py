"""Long-horizon fuzz soak: checkpointed time-budget sessions.

CI smoke runs are deliberately short; the adversarial schedules worth
finding (rare reset/reorder interleavings, corruption of a retransmit
of a retransmit) need wall-clock the merge gate cannot spend.  The soak
runner turns that into an *accumulating* background job:

* each invocation runs one time-budgeted :class:`~.fuzzer.Fuzzer`
  session with a **fresh seed** (``base_seed + session_index``), so
  consecutive nights explore different schedule space instead of
  replaying the same deterministic trajectory;
* coverage hit counts, the mutation-parent queue and the set of
  already-shrunk violation signatures persist in a JSON checkpoint
  (``--soak-state``), so session N+1 starts where N stopped — parents
  that found rare behaviors keep being mutated, and a violation class
  is shrunk once, not once per night;
* shrunk violation plans land in the shared corpus directory exactly as
  in a normal session, ready to be committed as regression tests.

Within one session everything is still deterministic: the same
``(seed, iterations, corpus, checkpoint)`` replays bit-identically.
Wall-clock enters only through the time budget and the (fingerprint-
excluded) bookkeeping fields.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..util.wallclock import perf_counter
from .fuzzer import FuzzReport, Fuzzer
from .scenario import Scenario, scenario_to_text

__all__ = ["SOAK_STATE_VERSION", "SoakReport", "load_soak_state", "run_soak"]

SOAK_STATE_VERSION = 1

#: Mutation parents kept across sessions (newest wins — older parents
#: have had the most mutation chances already).
_QUEUE_KEEP = 64


@dataclass
class SoakReport:
    """One soak session's outcome plus the accumulated totals."""

    base_seed: int
    session_index: int
    session_seed: int
    report: FuzzReport
    new_keys: int
    total_sessions: int
    total_iterations: int
    total_executions: int
    total_wall_s: float
    state_path: str = ""
    history: list[dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.report.passed

    def as_dict(self) -> dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "session_index": self.session_index,
            "session_seed": self.session_seed,
            "passed": self.passed,
            "new_keys": self.new_keys,
            "total_sessions": self.total_sessions,
            "total_iterations": self.total_iterations,
            "total_executions": self.total_executions,
            "total_wall_s": round(self.total_wall_s, 6),
            "state_path": self.state_path,
            "history": list(self.history),
            "session": self.report.as_dict(),
        }


def load_soak_state(path: str | pathlib.Path) -> Optional[dict[str, Any]]:
    """The parsed checkpoint, or ``None`` if absent/unreadable/stale."""
    p = pathlib.Path(path)
    if not p.is_file():
        return None
    try:
        state = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(state, dict)
        or state.get("version") != SOAK_STATE_VERSION
    ):
        return None
    return state


def _save_soak_state(
    path: pathlib.Path,
    base_seed: int,
    sessions: int,
    fuzzer: Fuzzer,
    totals: dict[str, Any],
    history: list[dict[str, Any]],
) -> None:
    queue: list[list[Any]] = []
    seen_texts: set[str] = set()
    for scenario, keys in reversed(fuzzer.queue):
        text = scenario_to_text(scenario)
        if text in seen_texts:
            continue
        seen_texts.add(text)
        queue.append([text, sorted(keys)])
        if len(queue) >= _QUEUE_KEEP:
            break
    queue.reverse()
    state = {
        "version": SOAK_STATE_VERSION,
        "base_seed": base_seed,
        "sessions": sessions,
        "coverage": fuzzer.coverage.as_dict(),
        "queue": queue,
        "seen_signatures": sorted(fuzzer.seen_signatures),
        "total_iterations": totals["iterations"],
        "total_executions": totals["executions"],
        "total_wall_s": round(totals["wall_s"], 6),
        "history": history,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(state, sort_keys=True, indent=1))
    tmp.replace(path)


def run_soak(
    base_seed: int = 0,
    time_budget: float = 60.0,
    state_path: str | pathlib.Path = "fuzz_soak_state.json",
    corpus_dir: Optional[str | pathlib.Path] = None,
    iterations: int = 1_000_000,
    log: Optional[Callable[[str], None]] = None,
    execute: Optional[Callable[[Scenario], Any]] = None,
    nodes: int = 3,
) -> SoakReport:
    """One checkpoint-resumed soak session.

    Loads the checkpoint at ``state_path`` (ignoring it with a log line
    if its ``base_seed`` differs), runs one fuzz session with seed
    ``base_seed + session_index`` under ``time_budget`` wall seconds,
    then writes the updated checkpoint back atomically.  ``iterations``
    is an upper bound; the budget is the real cutoff."""
    t0 = perf_counter()
    path = pathlib.Path(state_path)
    state = load_soak_state(path)
    if state is not None and state.get("base_seed") != int(base_seed):
        if log is not None:
            log(
                f"soak state {path} was built for base seed"
                f" {state.get('base_seed')}; starting fresh for"
                f" {base_seed}"
            )
        state = None

    session_index = int(state["sessions"]) if state else 0
    session_seed = int(base_seed) + session_index
    history: list[dict[str, Any]] = list(state["history"]) if state else []
    totals = {
        "iterations": int(state["total_iterations"]) if state else 0,
        "executions": int(state["total_executions"]) if state else 0,
        "wall_s": float(state["total_wall_s"]) if state else 0.0,
    }

    fuzzer = Fuzzer(
        seed=session_seed, corpus_dir=corpus_dir, execute=execute,
        log=log, nodes=nodes,
    )
    if state is not None:
        fuzzer.restore(
            coverage=state.get("coverage", {}),
            queue=[(t, tuple(k)) for t, k in state.get("queue", [])],
            seen_signatures=state.get("seen_signatures", ()),
        )
    keys_before = len(fuzzer.coverage)
    if log is not None:
        log(
            f"soak session {session_index} (seed {session_seed}):"
            f" resuming with {keys_before} coverage keys,"
            f" {len(fuzzer.queue)} queue parents,"
            f" {len(fuzzer.seen_signatures)} known signatures"
        )

    report = fuzzer.run(iterations=iterations, time_budget=time_budget)
    new_keys = len(fuzzer.coverage) - keys_before

    wall_s = perf_counter() - t0
    totals["iterations"] += report.iterations_run
    totals["executions"] += report.executions
    totals["wall_s"] += wall_s
    history.append({
        "session": session_index,
        "seed": session_seed,
        "iterations": report.iterations_run,
        "executions": report.executions,
        "new_keys": new_keys,
        "coverage": len(fuzzer.coverage),
        "violations": len(report.violations),
        "corpus_failures": len(report.corpus_failures),
        "fingerprint": report.fingerprint(),
        "wall_s": round(wall_s, 6),
    })
    _save_soak_state(
        path, int(base_seed), session_index + 1, fuzzer, totals, history
    )
    return SoakReport(
        base_seed=int(base_seed),
        session_index=session_index,
        session_seed=session_seed,
        report=report,
        new_keys=new_keys,
        total_sessions=session_index + 1,
        total_iterations=totals["iterations"],
        total_executions=totals["executions"],
        total_wall_s=totals["wall_s"],
        state_path=str(path),
        history=history,
    )
