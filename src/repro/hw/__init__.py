"""Hardware models: CPUs with accounting, network fabric, kernel TCP/IP
cost model, DPU↔host DMA engine, and SSDs.

Every component in this package charges costs to the shared simulation
clock and per-category accounting ledgers; nothing here knows about Ceph
or DoCeph.
"""

from .cpu import CpuAccounting, CpuComplex, CpuSnapshot, SimThread
from .dma import DmaEngine, DmaError, MAX_DMA_TRANSFER
from .net import BandwidthPipe, Network, Nic
from .node import ClusterNode, NetStack
from .storage import SsdDevice, StorageError
from .tcp import TcpStackModel

__all__ = [
    "BandwidthPipe",
    "ClusterNode",
    "CpuAccounting",
    "CpuComplex",
    "CpuSnapshot",
    "DmaEngine",
    "DmaError",
    "MAX_DMA_TRANSFER",
    "NetStack",
    "Network",
    "Nic",
    "SimThread",
    "SsdDevice",
    "StorageError",
    "TcpStackModel",
]
