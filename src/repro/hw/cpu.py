"""CPU complex model with per-thread-category accounting.

The paper's headline observable is *where CPU cycles are burned*:
Figure 5 breaks Ceph CPU usage down by thread category (``msgr-worker-*``,
``bstore_*``, ``tp_osd_tp``) and Table 2 counts context switches per
component.  This module provides exactly that observable:

* :class:`CpuComplex` — ``cores`` identical cores with a perf factor
  (BlueField-3 ARM cores are modelled as slower than host EPYC cores).
  Work is expressed in *reference-CPU seconds*; a core with ``perf=0.5``
  takes twice the wall time and accrues twice the busy core-seconds.
* :class:`SimThread` — a named thread with a category, the unit of
  accounting.  Threads ``charge()`` CPU work (which queues on cores) and
  record context switches.
* :class:`CpuAccounting` — cumulative busy-seconds and context-switch
  counts per category, with a snapshot/diff API for 1 Hz utilization
  sampling (the way the paper samples with htop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..sim import Environment, Process, Resource
from ..sim.exceptions import SimulationError

__all__ = ["CpuAccounting", "CpuComplex", "SimThread", "CpuSnapshot"]


@dataclass(slots=True)
class CpuSnapshot:
    """Immutable copy of accounting totals at one instant."""

    time: float
    busy_by_category: dict[str, float]
    ctx_by_category: dict[str, int]

    def busy_since(self, earlier: "CpuSnapshot") -> dict[str, float]:
        """Busy-seconds per category accrued between two snapshots."""
        keys = sorted(set(self.busy_by_category) | set(earlier.busy_by_category))
        return {
            k: self.busy_by_category.get(k, 0.0)
            - earlier.busy_by_category.get(k, 0.0)
            for k in keys
        }


class CpuAccounting:
    """Cumulative per-category busy time and context-switch counts."""

    __slots__ = ("busy_by_category", "ctx_by_category", "busy_by_thread")

    def __init__(self) -> None:
        self.busy_by_category: dict[str, float] = {}
        self.ctx_by_category: dict[str, int] = {}
        self.busy_by_thread: dict[str, float] = {}

    def add_busy(self, category: str, thread: str, seconds: float) -> None:
        self.busy_by_category[category] = (
            self.busy_by_category.get(category, 0.0) + seconds
        )
        self.busy_by_thread[thread] = (
            self.busy_by_thread.get(thread, 0.0) + seconds
        )

    def add_ctx(self, category: str, count: int = 1) -> None:
        self.ctx_by_category[category] = (
            self.ctx_by_category.get(category, 0) + count
        )

    def total_busy(self) -> float:
        return sum(self.busy_by_category.values())

    def total_ctx(self) -> int:
        return sum(self.ctx_by_category.values())

    def snapshot(self, now: float) -> CpuSnapshot:
        return CpuSnapshot(
            time=now,
            busy_by_category=dict(self.busy_by_category),
            ctx_by_category=dict(self.ctx_by_category),
        )


class CpuComplex:
    """A set of identical cores plus its accounting ledger.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        e.g. ``"node0.host"`` or ``"node0.dpu"``.
    cores:
        Number of cores usable by the modelled software.
    perf:
        Per-core performance relative to the reference core (host EPYC
        core = 1.0; BF3 ARM Cortex-A78 ≈ 0.45).
    ctx_switch_cost:
        CPU seconds charged per recorded context switch (direct cost of
        the mode transition; cache-pollution indirect costs are folded
        into the TCP per-byte constants).
    """

    __slots__ = (
        "env",
        "name",
        "cores",
        "perf",
        "ctx_switch_cost",
        "_core_pool",
        "accounting",
        "_start_time",
        "observer",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int,
        perf: float = 1.0,
        ctx_switch_cost: float = 2.0e-6,
    ) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        if perf <= 0:
            raise SimulationError(f"perf must be positive, got {perf}")
        self.env = env
        self.name = name
        self.cores = cores
        self.perf = perf
        self.ctx_switch_cost = ctx_switch_cost
        self._core_pool = Resource(env, capacity=cores,
                                   recycle_requests=True)
        self.accounting = CpuAccounting()
        self._start_time = env.now
        #: Optional charge-completion hook,
        #: ``observer(category, thread, cpu_name, now, busy_seconds)``.
        #: Called synchronously right after ``accounting.add_busy`` —
        #: no simulation side effects — so a tracer can mirror the
        #: ledger (see :mod:`repro.trace`).
        self.observer: Any = None

    # -- execution -------------------------------------------------------------
    def execute(
        self, category: str, thread: str, work: float
    ) -> Generator[Any, Any, None]:
        """Run ``work`` reference-seconds of CPU work on one core.

        Yields until a core is free, then holds it for the scaled wall
        time and accounts the busy core-seconds to ``category``.
        """
        if work < 0:
            raise SimulationError(f"negative CPU work: {work}")
        if work == 0:
            return
        wall = work / self.perf
        pool = self._core_pool
        req = pool.request()
        try:
            yield req
            yield self.env.sleep(wall)
            self.accounting.add_busy(category, thread, wall)
            if self.observer is not None:
                self.observer(category, thread, self.name,
                              self.env.now, wall)
        finally:
            pool.finish(req)

    def record_ctx_switches(
        self, category: str, thread: str, count: int = 1
    ) -> Generator[Any, Any, None]:
        """Record ``count`` context switches and charge their direct cost.

        Returns the :meth:`execute` generator directly (callers
        ``yield from`` it), avoiding an extra delegating frame on a very
        hot path.
        """
        self.accounting.add_ctx(category, count)
        cost = count * self.ctx_switch_cost
        if cost > 0:
            return self.execute(category, thread, cost)
        return iter(())  # type: ignore[return-value]

    # -- observables -------------------------------------------------------------
    def utilization(
        self,
        elapsed: Optional[float] = None,
        budget_cores: Optional[int] = None,
    ) -> float:
        """Fraction of the core budget that was busy.

        ``budget_cores`` lets callers report utilization against the
        cores allotted to the measured software (the way htop percentages
        in the paper are relative to what Ceph may use) rather than the
        full socket.
        """
        if elapsed is None:
            elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return 0.0
        denom = (budget_cores or self.cores) * elapsed
        return self.accounting.total_busy() / denom

    def busy_cores(self, elapsed: Optional[float] = None) -> float:
        """Average number of busy cores (the 'normalized to a single
        core' axis of Figure 5)."""
        if elapsed is None:
            elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.accounting.total_busy() / elapsed

    def __repr__(self) -> str:
        return f"<CpuComplex {self.name} cores={self.cores} perf={self.perf}>"


class SimThread:
    """A named thread: the unit of CPU accounting.

    A thread belongs to exactly one :class:`CpuComplex` and one category
    (Ceph thread-naming convention: ``msgr-worker``, ``bstore_kv``,
    ``tp_osd_tp``, …).  Model code calls:

    * ``yield from thread.charge(work)`` — burn CPU,
    * ``yield from thread.ctx_switch(n)`` — record context switches,
    * ``thread.spawn(gen)`` — run a generator as a process attributed to
      this thread.
    """

    __slots__ = ("cpu", "name", "category")

    def __init__(self, cpu: CpuComplex, name: str, category: str) -> None:
        self.cpu = cpu
        self.name = name
        self.category = category

    @property
    def env(self) -> Environment:
        return self.cpu.env

    def charge(self, work: float) -> Generator[Any, Any, None]:
        """Execute ``work`` reference-seconds of CPU work.

        Returns the underlying generator directly — each ``yield from
        thread.charge(w)`` then drives :meth:`CpuComplex.execute` with
        no wrapper frame in between (every park/resume would otherwise
        traverse it).
        """
        return self.cpu.execute(self.category, self.name, work)

    def ctx_switch(self, count: int = 1) -> Generator[Any, Any, None]:
        """Record context switches (with their direct CPU cost)."""
        return self.cpu.record_ctx_switches(self.category, self.name, count)

    def spawn(
        self,
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start ``generator`` as a process named after this thread."""
        return self.env.process(generator, name=name or self.name)

    def __repr__(self) -> str:
        return f"<SimThread {self.name} ({self.category}) on {self.cpu.name}>"
