"""DPU↔host DMA engine model (DOCA DMA semantics).

Models the BlueField-3 DMA path the paper builds on:

* transfers are capped at :data:`MAX_DMA_TRANSFER` (≈2 MB on BF3, the
  hardware limitation §3.3/§4 works around by segmentation);
* each transfer costs a fixed descriptor setup latency plus
  ``size / bandwidth`` on one of a small number of hardware channels;
* DMA moves bytes **without host CPU involvement** — the engine charges
  no CPU to anyone; completion is observed by a polling thread
  (modelled in ``repro.core.host_server``);
* fault injection hooks let tests and the fallback/cooldown experiments
  make individual transfers fail with :class:`DmaError`.

Statistics (bytes moved, transfer count, busy time, failures) support
both the latency-breakdown instrumentation (Table 3) and conservation
tests.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import Environment, Resource
from ..sim.exceptions import SimulationError

__all__ = ["DmaEngine", "DmaError", "MAX_DMA_TRANSFER"]

#: BlueField-3 single-transfer cap (the paper's "approximately 2 MB").
MAX_DMA_TRANSFER = 2 * 1024 * 1024


class DmaError(Exception):
    """A DMA transfer failed (injected or hardware-modelled)."""


class DmaEngine:
    """The node-local DMA engine between DPU memory and host memory.

    Parameters
    ----------
    bandwidth:
        Per-channel payload bandwidth in bytes/s.
    setup_latency:
        Fixed per-transfer cost (descriptor post + doorbell + completion
        latency), in seconds.
    channels:
        Number of hardware channels that can move data concurrently.
    max_transfer:
        Hardware cap on a single transfer's size in bytes.
    """

    __slots__ = (
        "env",
        "name",
        "bandwidth",
        "setup_latency",
        "max_transfer",
        "_channels",
        "fault_hook",
        "fault_injector",
        "bytes_transferred",
        "transfers",
        "failures",
        "failed_bytes",
        "busy_time",
        "setup_time",
        "wait_time",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth: float = 12.0e9,
        setup_latency: float = 2.0e-6,
        channels: int = 1,
        max_transfer: int = MAX_DMA_TRANSFER,
    ) -> None:
        if bandwidth <= 0 or setup_latency < 0 or channels < 1:
            raise SimulationError("invalid DMA engine parameters")
        self.env = env
        self.name = name
        self.bandwidth = bandwidth
        self.setup_latency = setup_latency
        self.max_transfer = max_transfer
        self._channels = Resource(env, capacity=channels,
                                  recycle_requests=True)

        #: Optional fault hook: called with the transfer size, returns
        #: True to make this transfer raise :class:`DmaError`.
        self.fault_hook: Optional[Callable[[int], bool]] = None
        #: Optional :class:`~repro.faults.LayerInjector` (layer "dma")
        #: consulted per transfer; checked after :attr:`fault_hook`.
        self.fault_injector: Optional[Any] = None

        # statistics
        self.bytes_transferred = 0
        self.transfers = 0
        self.failures = 0
        self.failed_bytes = 0
        self.busy_time = 0.0
        self.setup_time = 0.0
        self.wait_time = 0.0

    def transfer(
        self, nbytes: int, extra_setup: float = 0.0
    ) -> Generator[Any, Any, float]:
        """Move ``nbytes`` across PCIe on one channel.

        ``extra_setup`` extends the channel-occupying setup phase (used
        for CommChannel memory-region negotiation, which flows through
        the same serial command queue).

        Returns the queueing delay experienced (seconds spent waiting
        for a free channel) so callers can attribute DMA-wait time.
        Raises :class:`DmaError` if the fault hook trips (after the
        channel has been held for the transfer duration — the failure is
        detected at completion polling, like a real CQE error).
        """
        if nbytes <= 0:
            raise SimulationError(f"transfer size must be positive: {nbytes}")
        if nbytes > self.max_transfer:
            raise SimulationError(
                f"transfer of {nbytes} B exceeds hardware cap "
                f"{self.max_transfer} B — callers must segment"
            )
        if extra_setup < 0:
            raise SimulationError(f"negative extra setup: {extra_setup}")
        t_req = self.env.now
        channels = self._channels
        req = channels.request()
        try:
            yield req
            waited = self.env.now - t_req
            self.wait_time += waited
            setup = self.setup_latency + extra_setup
            duration = setup + nbytes / self.bandwidth
            yield self.env.sleep(duration)
            self.busy_time += duration
            self.setup_time += setup
            if (self.fault_hook is not None and self.fault_hook(nbytes)) or (
                self.fault_injector is not None
                and self.fault_injector.fire(self.env.now, size=nbytes)
            ):
                # A failed transfer held the channel just as long as a
                # successful one; its bytes must stay on the books for
                # busy-time conservation (busy ≈ setup + bytes/bw).
                self.failures += 1
                self.failed_bytes += nbytes
                raise DmaError(
                    f"{self.name}: transfer of {nbytes} B failed (injected)"
                )
            self.transfers += 1
            self.bytes_transferred += nbytes
        finally:
            channels.finish(req)
        return waited

    def __repr__(self) -> str:
        return (
            f"<DmaEngine {self.name} {self.bandwidth/1e9:.1f} GB/s "
            f"cap={self.max_transfer // (1024*1024)} MiB>"
        )
