"""Network fabric: bandwidth pipes, NICs, and a star-topology network.

The model is store-and-forward with chunked transmission:

* Each NIC has independent ``tx`` and ``rx`` :class:`BandwidthPipe`\\ s.
* A message first streams through the sender's tx pipe, then incurs the
  link propagation latency, then streams through the receiver's rx pipe.
* Pipes transmit in ``chunk_bytes`` chunks so long messages do not
  head-of-line-block heartbeats; concurrent flows share pipe bandwidth
  approximately fairly (round-robin at chunk granularity).

Saturated throughput equals pipe bandwidth exactly; per-message latency
for an uncontended large message is ≈ ``2·size/bw + latency`` (the extra
``size/bw`` versus cut-through is negligible at the timescales the
experiments resolve, and is documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim import Environment, Resource
from ..sim.exceptions import SimulationError

__all__ = ["BandwidthPipe", "Nic", "Network"]


class BandwidthPipe:
    """A FIFO serialization pipe of fixed bandwidth.

    Transfers are chopped into chunks; each chunk seizes the pipe for
    ``chunk_bytes * 8 / bandwidth_bps`` seconds.  Statistics track total
    bytes and busy time so tests can verify conservation.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        chunk_bytes: int = 262_144,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        if chunk_bytes <= 0:
            raise SimulationError("chunk size must be positive")
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.chunk_bytes = chunk_bytes
        self._res = Resource(env, capacity=1)
        #: Optional :class:`~repro.faults.LayerInjector` (layer "net");
        #: a hit stretches that chunk's serialization by the spec's
        #: ``factor`` (link degradation: retransmits, PFC pauses, FEC).
        self.fault_injector: Optional[Any] = None
        self.bytes_transferred = 0
        self.busy_time = 0.0
        self.degraded_chunks = 0

    def transmit(self, nbytes: int) -> Generator[Any, Any, None]:
        """Stream ``nbytes`` through the pipe (chunked, FIFO-fair)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            ser = chunk * 8.0 / self.bandwidth_bps
            if self.fault_injector is not None:
                spec = self.fault_injector.fire(self.env.now, size=chunk)
                if spec is not None:
                    ser *= spec.factor
                    self.degraded_chunks += 1
            with self._res.request() as req:
                yield req
                yield self.env.timeout(ser)
            self.bytes_transferred += chunk
            self.busy_time += ser
            remaining -= chunk

    def __repr__(self) -> str:
        return f"<BandwidthPipe {self.name} {self.bandwidth_bps/1e9:.1f} Gbps>"


class Nic:
    """A network interface: tx + rx pipes and an address on the fabric."""

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        chunk_bytes: int = 262_144,
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.tx = BandwidthPipe(env, f"{name}.tx", bandwidth_bps, chunk_bytes)
        self.rx = BandwidthPipe(env, f"{name}.rx", bandwidth_bps, chunk_bytes)

    def __repr__(self) -> str:
        return f"<Nic {self.name} {self.bandwidth_bps/1e9:.1f} Gbps>"


class Network:
    """Star-topology fabric: every NIC connects through a non-blocking
    switch with uniform propagation latency.

    A 2–3 node 100 GbE testbed behind one switch has no core contention,
    so only the endpoint NICs model bandwidth; that is exactly the
    paper's setup (Table 1).
    """

    def __init__(self, env: Environment, latency_s: float = 20e-6) -> None:
        if latency_s < 0:
            raise SimulationError("latency must be >= 0")
        self.env = env
        self.latency_s = latency_s
        self._nics: dict[str, Nic] = {}

    def attach(self, address: str, nic: Nic) -> None:
        """Register a NIC under ``address`` (e.g. ``"node0"``)."""
        if address in self._nics:
            raise SimulationError(f"address already attached: {address}")
        self._nics[address] = nic

    def nic(self, address: str) -> Nic:
        try:
            return self._nics[address]
        except KeyError:
            raise SimulationError(f"unknown address: {address}") from None

    def addresses(self) -> list[str]:
        return sorted(self._nics)

    def deliver(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Any, Any, None]:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Chunk-level cut-through: each chunk enters the receiver's rx
        pipe as soon as it leaves the sender's tx pipe (plus propagation
        latency), so a message's tx and rx serialization overlap — as
        on a real switched Ethernet.  Completion is the last chunk
        clearing the rx pipe.  Loopback skips the wire."""
        if src == dst:
            return
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        env = self.env

        def rx_chunk(chunk: int) -> Generator[Any, Any, None]:
            yield env.timeout(self.latency_s)
            yield from dst_nic.rx.transmit(chunk)

        rx_procs = []
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, src_nic.tx.chunk_bytes)
            yield from src_nic.tx.transmit(chunk)
            # chunks are spawned in order and the kernel breaks timer
            # ties FIFO, so per-connection ordering is preserved
            rx_procs.append(env.process(rx_chunk(chunk), name="rx-chunk"))
            remaining -= chunk
        for proc in rx_procs:
            yield proc

    def __repr__(self) -> str:
        return f"<Network {len(self._nics)} endpoints, {self.latency_s*1e6:.0f} µs>"
