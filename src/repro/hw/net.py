"""Network fabric: bandwidth pipes, NICs, and a star-topology network.

The model is store-and-forward with chunked transmission:

* Each NIC has independent ``tx`` and ``rx`` :class:`BandwidthPipe`\\ s.
* A message first streams through the sender's tx pipe, then incurs the
  link propagation latency, then streams through the receiver's rx pipe.
* Pipes transmit in ``chunk_bytes`` chunks so long messages do not
  head-of-line-block heartbeats; concurrent flows share pipe bandwidth
  approximately fairly (round-robin at chunk granularity).

Saturated throughput equals pipe bandwidth exactly; per-message latency
for an uncontended large message is ≈ ``2·size/bw + latency`` (the extra
``size/bw`` versus cut-through is negligible at the timescales the
experiments resolve, and is documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import Environment, Resource
from ..sim.exceptions import SimulationError
from ..sim.machine import Machine

__all__ = ["BandwidthPipe", "Nic", "Network", "Partition"]


class _RxChunk(Machine):
    """Flattened receive-side chunk: propagation latency, then the
    receiver's rx pipe.

    This is the single hottest process type in the repo (~25% of all
    event resumptions on the fallback scenario), so the generator
    closure in :meth:`Network.deliver` is replaced with a state machine.
    Event parity with ``env.process(rx_chunk(chunk), name="rx-chunk")``:
    kick (= ``Initialize``), latency sleep, one request + one sleep per
    rx-pipe chunk with the pipe released *before* the byte accounting
    (matching ``BandwidthPipe.transmit``'s ``finally``), completion
    event on return.  Never interrupted: abandoning a delivery detaches
    the waiter from this machine's completion event, exactly as it
    detached from the rx-chunk ``Process``.
    """

    __slots__ = (
        "_pipe",
        "_remaining",
        "_chunk",
        "_ser",
        "_req",
        "_cb_latency_done",
        "_cb_granted",
        "_cb_chunk_done",
    )

    def __init__(
        self, env: Environment, pipe: BandwidthPipe, nbytes: int, latency_s: float
    ) -> None:
        super().__init__(env, "rx-chunk")
        self._pipe = pipe
        self._remaining = nbytes
        self._chunk = 0
        # _ser carries the pending sleep duration for the next park; the
        # first park (made when the kick fires, matching the generator's
        # first resume) is the propagation latency.
        self._ser = latency_s
        self._req: Any = None
        # Prebound state callbacks: each park appends one of these, and
        # minting a fresh bound method per park is an allocation on the
        # hottest path in the repo (PERF303).
        self._cb_latency_done = self._s_latency_done
        self._cb_granted = self._s_granted
        self._cb_chunk_done = self._s_chunk_done
        self._start(self._s_kicked)

    # Parks append the state callback directly instead of via _park:
    # nothing ever interrupts an rx chunk, so the Process duck-type
    # fields (_target/_bound_resume) need not be maintained.
    def _s_kicked(self, event: Any) -> None:
        self.env.sleep(self._ser).callbacks.append(self._cb_latency_done)

    def _s_latency_done(self, event: Any) -> None:
        self._next_chunk()

    def _next_chunk(self) -> None:
        remaining = self._remaining
        if remaining <= 0:
            self._finish(None)
            return
        pipe = self._pipe
        chunk_bytes = pipe.chunk_bytes
        chunk = chunk_bytes if remaining > chunk_bytes else remaining
        ser = chunk * 8.0 / pipe.bandwidth_bps
        injector = pipe.fault_injector
        if injector is not None:
            spec = injector.fire(self.env.now, size=chunk)
            if spec is not None:
                ser *= spec.factor
                pipe.degraded_chunks += 1
        self._chunk = chunk
        self._ser = ser
        req = pipe._res.request()
        self._req = req
        req.callbacks.append(self._cb_granted)

    def _s_granted(self, event: Any) -> None:
        self.env.sleep(self._ser).callbacks.append(self._cb_chunk_done)

    def _s_chunk_done(self, event: Any) -> None:
        pipe = self._pipe
        pipe._res.finish(self._req)
        self._req = None
        chunk = self._chunk
        pipe.bytes_transferred += chunk
        pipe.busy_time += self._ser
        self._remaining -= chunk
        self._next_chunk()


class BandwidthPipe:
    """A FIFO serialization pipe of fixed bandwidth.

    Transfers are chopped into chunks; each chunk seizes the pipe for
    ``chunk_bytes * 8 / bandwidth_bps`` seconds.  Statistics track total
    bytes and busy time so tests can verify conservation.
    """

    __slots__ = (
        "env",
        "name",
        "bandwidth_bps",
        "chunk_bytes",
        "_res",
        "fault_injector",
        "bytes_transferred",
        "busy_time",
        "degraded_chunks",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        chunk_bytes: int = 262_144,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        if chunk_bytes <= 0:
            raise SimulationError("chunk size must be positive")
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.chunk_bytes = chunk_bytes
        self._res = Resource(env, capacity=1, recycle_requests=True)
        #: Optional :class:`~repro.faults.LayerInjector` (layer "net");
        #: a hit stretches that chunk's serialization by the spec's
        #: ``factor`` (link degradation: retransmits, PFC pauses, FEC).
        self.fault_injector: Optional[Any] = None
        self.bytes_transferred = 0
        self.busy_time = 0.0
        self.degraded_chunks = 0

    def transmit(self, nbytes: int) -> Generator[Any, Any, None]:
        """Stream ``nbytes`` through the pipe (chunked, FIFO-fair)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        # Hot loop: attribute lookups hoisted; the injector is wired at
        # build time, so fetching the guard once per transfer is
        # equivalent to checking it per chunk.
        env = self.env
        res = self._res
        chunk_bytes = self.chunk_bytes
        bandwidth = self.bandwidth_bps
        injector = self.fault_injector
        remaining = nbytes
        while remaining > 0:
            chunk = chunk_bytes if remaining > chunk_bytes else remaining
            ser = chunk * 8.0 / bandwidth
            if injector is not None:
                spec = injector.fire(env.now, size=chunk)
                if spec is not None:
                    ser *= spec.factor
                    self.degraded_chunks += 1
            req = res.request()
            try:
                yield req
                yield env.sleep(ser)
            finally:
                res.finish(req)
            self.bytes_transferred += chunk
            self.busy_time += ser
            remaining -= chunk

    def __repr__(self) -> str:
        return f"<BandwidthPipe {self.name} {self.bandwidth_bps/1e9:.1f} Gbps>"


class Nic:
    """A network interface: tx + rx pipes and an address on the fabric."""

    __slots__ = ("env", "name", "bandwidth_bps", "tx", "rx")

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float,
        chunk_bytes: int = 262_144,
    ) -> None:
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.tx = BandwidthPipe(env, f"{name}.tx", bandwidth_bps, chunk_bytes)
        self.rx = BandwidthPipe(env, f"{name}.rx", bandwidth_bps, chunk_bytes)

    def __repr__(self) -> str:
        return f"<Nic {self.name} {self.bandwidth_bps/1e9:.1f} Gbps>"


class Partition:
    """A sustained link-down window isolating ``nodes`` from the rest.

    While ``start <= now < end``, any delivery crossing the partition
    boundary (exactly one endpoint inside ``nodes``) is dropped.  ``end``
    may be shrunk later (:meth:`Network.heal_partitions`) to heal early.
    """

    __slots__ = ("nodes", "start", "end", "on_drop", "drops", "dropped_bytes")

    def __init__(
        self,
        nodes: frozenset[str],
        start: float,
        end: float,
        on_drop: Optional[Callable[[int], None]] = None,
    ) -> None:
        if end < start:
            raise SimulationError("partition must end after it starts")
        self.nodes = frozenset(nodes)
        self.start = start
        self.end = end
        self.on_drop = on_drop
        self.drops = 0
        self.dropped_bytes = 0

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def severs(self, src: str, dst: str, now: float) -> bool:
        return self.active(now) and (src in self.nodes) != (dst in self.nodes)

    def __repr__(self) -> str:
        group = ",".join(sorted(self.nodes))
        return f"<Partition {{{group}}} [{self.start:.3f}, {self.end:.3f})>"


class Network:
    """Star-topology fabric: every NIC connects through a non-blocking
    switch with uniform propagation latency.

    A 2–3 node 100 GbE testbed behind one switch has no core contention,
    so only the endpoint NICs model bandwidth; that is exactly the
    paper's setup (Table 1).
    """

    __slots__ = (
        "env",
        "latency_s",
        "_nics",
        "_partitions",
        "partition_drops",
        "partition_dropped_bytes",
    )

    def __init__(self, env: Environment, latency_s: float = 20e-6) -> None:
        if latency_s < 0:
            raise SimulationError("latency must be >= 0")
        self.env = env
        self.latency_s = latency_s
        self._nics: dict[str, Nic] = {}
        self._partitions: list[Partition] = []
        self.partition_drops = 0
        self.partition_dropped_bytes = 0

    def attach(self, address: str, nic: Nic) -> None:
        """Register a NIC under ``address`` (e.g. ``"node0"``)."""
        if address in self._nics:
            raise SimulationError(f"address already attached: {address}")
        self._nics[address] = nic

    def nic(self, address: str) -> Nic:
        try:
            return self._nics[address]
        except KeyError:
            raise SimulationError(f"unknown address: {address}") from None

    def addresses(self) -> list[str]:
        return sorted(self._nics)

    def partition(
        self,
        nodes: frozenset[str] | set[str] | list[str] | tuple[str, ...],
        start: float,
        end: float,
        on_drop: Optional[Callable[[int], None]] = None,
    ) -> Partition:
        """Isolate ``nodes`` from everything else during ``[start, end)``."""
        part = Partition(frozenset(nodes), start, end, on_drop)
        self._partitions.append(part)
        return part

    def heal_partitions(self, now: Optional[float] = None) -> None:
        """Force every partition to end no later than ``now`` (default:
        the current sim time)."""
        cutoff = self.env.now if now is None else now
        for part in self._partitions:
            part.end = min(part.end, cutoff)

    def _severed(self, src: str, dst: str, nbytes: int) -> bool:
        now = self.env.now
        for part in self._partitions:
            if part.severs(src, dst, now):
                part.drops += 1
                part.dropped_bytes += nbytes
                self.partition_drops += 1
                self.partition_dropped_bytes += nbytes
                if part.on_drop is not None:
                    part.on_drop(nbytes)
                return True
        return False

    def deliver(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Any, Any, bool]:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Chunk-level cut-through: each chunk enters the receiver's rx
        pipe as soon as it leaves the sender's tx pipe (plus propagation
        latency), so a message's tx and rx serialization overlap — as
        on a real switched Ethernet.  Completion is the last chunk
        clearing the rx pipe.  Loopback skips the wire.

        Returns ``True`` if the payload reached ``dst`` and ``False`` if
        a :class:`Partition` dropped it.  Drops are checked both when
        the transfer starts and when it finishes, so a message in flight
        when a partition opens is lost like a mid-flight packet."""
        if src == dst:
            return True
        if self._severed(src, dst, nbytes):
            return False
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        env = self.env
        latency_s = self.latency_s
        rx_pipe = dst_nic.rx

        rx_procs = []
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, src_nic.tx.chunk_bytes)
            yield from src_nic.tx.transmit(chunk)
            # chunks are spawned in order and the kernel breaks timer
            # ties FIFO, so per-connection ordering is preserved
            rx_procs.append(_RxChunk(env, rx_pipe, chunk, latency_s))
            remaining -= chunk
        for proc in rx_procs:
            yield proc
        if self._severed(src, dst, nbytes):
            return False
        return True

    def __repr__(self) -> str:
        return f"<Network {len(self._nics)} endpoints, {self.latency_s*1e6:.0f} µs>"
