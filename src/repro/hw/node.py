"""Node composition: hosts, DPU SoCs, and their attachment to the fabric.

A :class:`NetStack` bundles what a messenger needs to exist somewhere:
a CPU complex to burn cycles on, a NIC on the network, an address, and a
TCP cost model.  Moving the messenger from the host stack to the DPU
stack — the paper's core move — is then just a matter of which stack the
OSD's messenger is constructed on.

:class:`ClusterNode` composes one storage server of the testbed:

* ``host`` CPU complex + SSD (always present),
* optionally a ``dpu`` CPU complex (BlueField-3 ARM cores) with its own
  OS/TCP stack,
* a :class:`~repro.hw.dma.DmaEngine` bridging DPU and host memory, and
* a PCIe RPC transport (latency for the control-plane socket that the
  ProxyObjectStore uses — in DPU mode this socket crosses PCIe, not the
  outside wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment
from .cpu import CpuComplex
from .dma import DmaEngine
from .net import Network, Nic
from .storage import SsdDevice
from .tcp import TcpStackModel

__all__ = ["NetStack", "ClusterNode"]


@dataclass(slots=True)
class NetStack:
    """Everything a network endpoint needs: CPU, NIC, address, TCP costs."""

    cpu: CpuComplex
    nic: Nic
    network: Network
    address: str
    tcp: TcpStackModel

    @property
    def env(self) -> Environment:
        return self.cpu.env


class ClusterNode:
    """One storage server: host complex, optional DPU SoC, DMA bridge.

    Parameters
    ----------
    env, network:
        Shared simulation environment and fabric.
    name:
        Node name; also its network address prefix.
    host_cpu / dpu_cpu:
        CPU complexes.  ``dpu_cpu`` is ``None`` for a baseline (NIC-mode)
        node, where the BlueField runs as a plain ConnectX-7.
    ssd:
        The node's data device (BlueStore sits on this).
    nic_bandwidth:
        External link speed in bits/s (shared between modes; in DPU mode
        the port belongs to the DPU's stack).
    dma:
        DMA engine; only meaningful when a DPU complex exists.
    tcp:
        TCP stack cost model for whichever complex terminates TCP.
    """

    __slots__ = (
        "env",
        "network",
        "name",
        "host_cpu",
        "ssd",
        "dpu_cpu",
        "dma",
        "pcie_rpc_latency",
        "nic",
        "_tcp",
    )

    def __init__(
        self,
        env: Environment,
        network: Network,
        name: str,
        host_cpu: CpuComplex,
        ssd: SsdDevice,
        nic_bandwidth: float,
        tcp: TcpStackModel,
        dpu_cpu: Optional[CpuComplex] = None,
        dma: Optional[DmaEngine] = None,
        pcie_rpc_latency: float = 8e-6,
    ) -> None:
        self.env = env
        self.network = network
        self.name = name
        self.host_cpu = host_cpu
        self.ssd = ssd
        self.dpu_cpu = dpu_cpu
        self.dma = dma
        self.pcie_rpc_latency = pcie_rpc_latency

        self.nic = Nic(env, f"{name}.nic", nic_bandwidth)
        network.attach(name, self.nic)
        self._tcp = tcp

    @property
    def has_dpu(self) -> bool:
        return self.dpu_cpu is not None

    def host_stack(self) -> NetStack:
        """The stack a baseline (NIC-mode) messenger runs on."""
        return NetStack(
            cpu=self.host_cpu,
            nic=self.nic,
            network=self.network,
            address=self.name,
            tcp=self._tcp,
        )

    def dpu_stack(self) -> NetStack:
        """The stack a DPU-mode messenger runs on (paper's Figure 3)."""
        if self.dpu_cpu is None:
            raise ValueError(f"node {self.name} has no DPU")
        return NetStack(
            cpu=self.dpu_cpu,
            nic=self.nic,
            network=self.network,
            address=self.name,
            tcp=self._tcp,
        )

    def __repr__(self) -> str:
        mode = "DPU" if self.has_dpu else "NIC"
        return f"<ClusterNode {self.name} mode={mode}>"
