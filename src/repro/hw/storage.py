"""Block storage device model (the testbed's Samsung PM893 SATA SSD).

A single-channel FIFO service model: each I/O seizes the device for
``base_latency + size / bandwidth`` seconds.  That makes saturated
throughput exactly the device bandwidth (which is what bounds the
large-block IOPS ceiling in Figure 10) while small I/Os see the base
latency, and concurrent submitters experience realistic queueing.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim import Environment, Resource
from ..sim.exceptions import SimulationError

__all__ = ["SsdDevice", "StorageError"]


class StorageError(Exception):
    """An I/O failed at the device (injected media/link error)."""


class SsdDevice:
    """A flash device with distinct read/write service rates."""

    __slots__ = (
        "env",
        "name",
        "write_bandwidth",
        "read_bandwidth",
        "write_latency",
        "read_latency",
        "_chan",
        "fault_injector",
        "bytes_written",
        "bytes_read",
        "writes",
        "reads",
        "io_errors",
        "failed_bytes",
        "busy_time",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        write_bandwidth: float = 1.3e9,
        read_bandwidth: float = 1.6e9,
        write_latency: float = 60e-6,
        read_latency: float = 90e-6,
    ) -> None:
        if min(write_bandwidth, read_bandwidth) <= 0:
            raise SimulationError("device bandwidth must be positive")
        if min(write_latency, read_latency) < 0:
            raise SimulationError("device latency must be >= 0")
        self.env = env
        self.name = name
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.write_latency = write_latency
        self.read_latency = read_latency
        self._chan = Resource(env, capacity=1)

        #: Optional :class:`~repro.faults.LayerInjector` (layer
        #: "storage"); a hit fails the I/O with :class:`StorageError`
        #: after the device has been held for the full service time.
        self.fault_injector: Optional[Any] = None

        # statistics
        self.bytes_written = 0
        self.bytes_read = 0
        self.writes = 0
        self.reads = 0
        self.io_errors = 0
        self.failed_bytes = 0
        self.busy_time = 0.0

    def _io(
        self, nbytes: int, latency: float, bandwidth: float
    ) -> Generator[Any, Any, None]:
        if nbytes < 0:
            raise SimulationError(f"negative I/O size: {nbytes}")
        with self._chan.request() as req:
            yield req
            service = latency + nbytes / bandwidth
            yield self.env.timeout(service)
            self.busy_time += service
            if self.fault_injector is not None and self.fault_injector.fire(
                self.env.now, size=nbytes
            ):
                self.io_errors += 1
                self.failed_bytes += nbytes
                raise StorageError(
                    f"{self.name}: I/O of {nbytes} B failed (injected)"
                )

    def write(self, nbytes: int) -> Generator[Any, Any, None]:
        """Persist ``nbytes`` (durable once this returns)."""
        yield from self._io(nbytes, self.write_latency, self.write_bandwidth)
        self.bytes_written += nbytes
        self.writes += 1

    def read(self, nbytes: int) -> Generator[Any, Any, None]:
        """Fetch ``nbytes`` from media."""
        yield from self._io(nbytes, self.read_latency, self.read_bandwidth)
        self.bytes_read += nbytes
        self.reads += 1

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the device spent servicing I/O."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"<SsdDevice {self.name} w={self.write_bandwidth/1e6:.0f} MB/s"
            f" r={self.read_bandwidth/1e6:.0f} MB/s>"
        )
