"""Kernel TCP/IP stack cost model.

Section 2.3 of the paper attributes the messenger's CPU dominance to
"network stack traversal, data serialization, TCP/IP transmission,
compression, checksumming and encryption … executed by the host CPU" and
to the context switches those syscalls cause.  This module turns a byte
count into (a) CPU seconds charged to the calling thread and (b) a
context-switch count, per direction.

The constants are calibrated (see ``repro.cluster.config``) so the
emergent measurements reproduce the paper's shape:

* messenger ≈ 80 % of Ceph CPU at both 1 Gbps and 100 Gbps (Fig. 5),
* messenger : ObjectStore context switches ≈ 10 : 1 (Table 2).

The model:

* each syscall moves at most ``syscall_bytes``; costs ``syscall_cpu``
  plus a user↔kernel copy at ``copy_bandwidth`` bytes/s;
* each wire segment of ``segment_bytes`` (GSO-sized) costs
  ``segment_cpu`` for protocol processing and checksumming;
* receive adds ``softirq_cpu`` per segment (softirq + skb handling) and
  is therefore more expensive per byte than send — matching perf
  profiles of real Ceph, where the read path dominates;
* each syscall on the send side and each epoll wakeup on the receive
  side contributes context switches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace

__all__ = ["TcpStackModel"]


@dataclass(frozen=True, slots=True)
class TcpStackModel:
    """Cost constants for one kernel TCP/IP stack traversal.

    All CPU figures are reference-CPU seconds (scaled by the executing
    core's perf factor at charge time).
    """

    syscall_cpu: float = 4.0e-6
    """Fixed cost per send/recv syscall (mode switch, socket locking)."""

    syscall_bytes: int = 131_072
    """Max bytes moved per syscall (Ceph issues large sendmsg calls)."""

    copy_bandwidth: float = 9.0e9
    """User↔kernel copy throughput, bytes/s (one memcpy per direction)."""

    segment_bytes: int = 65_536
    """GSO segment size; per-segment costs scale with count of these."""

    segment_cpu: float = 1.2e-6
    """Per-segment protocol processing + checksum cost (send side)."""

    softirq_cpu: float = 1.6e-6
    """Extra per-segment receive cost (softirq, skb alloc, coalescing)."""

    wakeup_cpu: float = 3.0e-6
    """Cost of an epoll wakeup delivering readiness to a worker."""

    ctx_per_syscall: int = 1
    """Context switches recorded per blocking syscall."""

    ctx_per_wakeup: int = 1
    """Context switches recorded per epoll wakeup on the receive side."""

    #: Memoized per-size cost tuples.  The cost functions are pure in
    #: (constants, nbytes) and benches reuse a handful of wire sizes
    #: millions of times, so the ceil/div arithmetic runs once per size.
    _cost_cache: dict = field(default_factory=dict, init=False,
                              repr=False, compare=False)

    def stack_free(self) -> "TcpStackModel":
        """This model with all *stack-processing* terms zeroed.

        Models an off-path SmartNIC terminating TCP for the host
        (PnO-TCP): syscalls, segmentation/checksum, softirq and wakeup
        costs disappear — the NIC runs the protocol — but the host still
        pays the user↔kernel data copy (``copy_bandwidth`` kept), i.e.
        data *handling* stays on the host while stack *processing*
        moves off.  Context switches vanish with the syscalls."""
        return dataclasses_replace(
            self,
            syscall_cpu=0.0,
            segment_cpu=0.0,
            softirq_cpu=0.0,
            wakeup_cpu=0.0,
            ctx_per_syscall=0,
            ctx_per_wakeup=0,
        )

    def costs(self, nbytes: int) -> tuple[float, float, int, int]:
        """``(send_cpu, recv_cpu, send_ctx, recv_ctx)`` for ``nbytes``."""
        cached = self._cost_cache.get(nbytes)
        if cached is None:
            cached = (
                self.send_cpu(nbytes),
                self.recv_cpu(nbytes),
                self.send_ctx(nbytes),
                self.recv_ctx(nbytes),
            )
            if len(self._cost_cache) < 4096:
                self._cost_cache[nbytes] = cached
        return cached

    def _nsyscalls(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.syscall_bytes))

    def _nsegments(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.segment_bytes))

    # -- CPU ------------------------------------------------------------------
    def send_cpu(self, nbytes: int) -> float:
        """CPU seconds to push ``nbytes`` through the send path."""
        return (
            self._nsyscalls(nbytes) * self.syscall_cpu
            + nbytes / self.copy_bandwidth
            + self._nsegments(nbytes) * self.segment_cpu
        )

    def recv_cpu(self, nbytes: int) -> float:
        """CPU seconds to pull ``nbytes`` through the receive path."""
        return (
            self.wakeup_cpu
            + self._nsyscalls(nbytes) * self.syscall_cpu
            + nbytes / self.copy_bandwidth
            + self._nsegments(nbytes) * (self.segment_cpu + self.softirq_cpu)
        )

    # -- context switches ----------------------------------------------------------
    def send_ctx(self, nbytes: int) -> int:
        """Context switches on the send path."""
        return self._nsyscalls(nbytes) * self.ctx_per_syscall

    def recv_ctx(self, nbytes: int) -> int:
        """Context switches on the receive path (wakeup + syscalls)."""
        return self.ctx_per_wakeup + self._nsyscalls(nbytes) * self.ctx_per_syscall
