"""repro.lint — determinism & sim-safety static analysis (DESIGN.md §9).

An AST-based checker purpose-built for this repository's invariants.
PR 4 made everything load-bearing on byte-identical simulation digests;
these rules keep the next change from silently breaking that:

=======  ==========================================================
code     guards against
=======  ==========================================================
DET101   wall-clock reads outside ``repro.util.wallclock``
DET102   ambient entropy (``uuid4``, ``os.urandom``, ``secrets``)
DET103   the global ``random`` stream outside ``repro.util.rng``
DET104   set iteration feeding order-sensitive code
DET105   ``id()``/``hash()``-keyed ordering
DET106   env-var reads outside the CLI/config boundary
SIM201   real blocking calls/imports inside simulated layers
SIM202   ``Resource.request()`` without an exception-safe release
PERF301  hot-module classes missing ``__slots__``
PERF302  slotted classes assigning undeclared attributes
PERF303  per-event allocation in hot drain loops and in the bodies
         of ``Machine``-subclass state callbacks
OWN401   node-scoped object holding/mutating another node's object
         off the declared fabric edges
OWN402   module-level mutable state reachable from node-scoped code
OWN403   handler code reading a fabric-resolved peer outside the
         declared wire interface
=======  ==========================================================

The OWN4xx family is backed by a whole-program ownership analysis
(:mod:`repro.lint.ownership`: roles, attribute classification, and the
auditable edge manifest) and a runtime cross-check
(:mod:`repro.lint.sanitizer`: tags live objects with their owning node
and audits every attribute mutation, with a zero-perturbation digest
guarantee).  DESIGN.md §14 has the full protocol.

Static entry points: :func:`lint_paths` / :func:`lint_source`, with
:mod:`repro.lint.baseline` handling grandfathered findings.  The
dynamic companion :func:`check_tie_order` probes a scenario for
same-timestamp tie-order sensitivity by perturbing heap tie-breaking
and diffing digests.  CLI: ``python -m repro lint``.
"""

from .baseline import (
    DEFAULT_BASELINE,
    filter_new,
    load_baseline,
    save_baseline,
)
from .dynamic import TieOrderReport, TieSite, check_tie_order, patched_tie_order
from .ownership import (
    ClassOwnership,
    OwnershipGraph,
    Role,
    ownership_graph,
    role_of,
)
from .ownership import render_report as render_ownership_report
from .sanitizer import (
    OwnershipSanitizer,
    OwnershipViolation,
    SanitizerReport,
    run_sanitized,
    runtime_role,
)
from .engine import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    LintReport,
    lint_paths,
    lint_source,
)
from .rules import RULES, Rule

__all__ = [
    "ClassOwnership",
    "DEFAULT_BASELINE",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "OwnershipGraph",
    "OwnershipSanitizer",
    "OwnershipViolation",
    "RULES",
    "Role",
    "Rule",
    "SanitizerReport",
    "TieOrderReport",
    "TieSite",
    "check_tie_order",
    "filter_new",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "ownership_graph",
    "patched_tie_order",
    "render_ownership_report",
    "role_of",
    "run_sanitized",
    "runtime_role",
    "save_baseline",
]
