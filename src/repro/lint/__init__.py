"""repro.lint — determinism & sim-safety static analysis (DESIGN.md §9).

An AST-based checker purpose-built for this repository's invariants.
PR 4 made everything load-bearing on byte-identical simulation digests;
these rules keep the next change from silently breaking that:

=======  ==========================================================
code     guards against
=======  ==========================================================
DET101   wall-clock reads outside ``repro.util.wallclock``
DET102   ambient entropy (``uuid4``, ``os.urandom``, ``secrets``)
DET103   the global ``random`` stream outside ``repro.util.rng``
DET104   set iteration feeding order-sensitive code
DET105   ``id()``/``hash()``-keyed ordering
DET106   env-var reads outside the CLI/config boundary
SIM201   real blocking calls/imports inside simulated layers
SIM202   ``Resource.request()`` without an exception-safe release
PERF301  hot-module classes missing ``__slots__``
PERF302  slotted classes assigning undeclared attributes
=======  ==========================================================

Static entry points: :func:`lint_paths` / :func:`lint_source`, with
:mod:`repro.lint.baseline` handling grandfathered findings.  The
dynamic companion :func:`check_tie_order` probes a scenario for
same-timestamp tie-order sensitivity by perturbing heap tie-breaking
and diffing digests.  CLI: ``python -m repro lint``.
"""

from .baseline import (
    DEFAULT_BASELINE,
    filter_new,
    load_baseline,
    save_baseline,
)
from .dynamic import TieOrderReport, TieSite, check_tie_order, patched_tie_order
from .engine import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    LintReport,
    lint_paths,
    lint_source,
)
from .rules import RULES, Rule

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "TieOrderReport",
    "TieSite",
    "check_tie_order",
    "filter_new",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "patched_tie_order",
    "save_baseline",
]
