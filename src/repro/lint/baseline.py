"""Baseline file: grandfathered findings that do not fail the build.

Format is one tab-separated record per line — ``path<TAB>code<TAB>scope
<TAB>source-line`` — sorted, with ``#`` comments ignored.  The record is
the finding's :meth:`~repro.lint.engine.Finding.fingerprint`, which
deliberately omits line numbers so unrelated edits that shift code do
not churn the file.  Identical findings (same fingerprint, e.g. two
``time.time()`` calls on textually identical lines in one function)
are budgeted by count: the baseline allows as many as it records, and
any excess is reported as new.

``python -m repro lint --fix-baseline`` rewrites the file from the
current findings; a review of that diff is the only way a finding gets
grandfathered.
"""

from __future__ import annotations

import pathlib
from collections import Counter
from typing import Iterable, Sequence

from .engine import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "save_baseline",
    "filter_new",
]

DEFAULT_BASELINE = "lint-baseline.txt"

_HEADER = """\
# repro.lint baseline — grandfathered findings that do not fail the build.
# One tab-separated record per line: path, code, scope, source line.
# Regenerate with: python -m repro lint --fix-baseline
"""


def _fingerprint_line(fp: tuple[str, str, str, str]) -> str:
    return "\t".join(fp)


def load_baseline(path: str | pathlib.Path) -> Counter:
    """Fingerprint → allowed count.  Missing file = empty baseline."""
    baseline: Counter = Counter()
    p = pathlib.Path(path)
    if not p.exists():
        return baseline
    for raw in p.read_text(encoding="utf-8").splitlines():
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise ValueError(
                f"malformed baseline record in {p}: {line!r} "
                "(expected 4 tab-separated fields)"
            )
        baseline[tuple(parts)] += 1
    return baseline


def save_baseline(
    path: str | pathlib.Path, findings: Iterable[Finding]
) -> None:
    """Write the baseline for ``findings`` (sorted, deterministic)."""
    records = sorted(_fingerprint_line(f.fingerprint()) for f in findings)
    body = _HEADER + "".join(r + "\n" for r in records)
    pathlib.Path(path).write_text(body, encoding="utf-8")


def filter_new(
    findings: Sequence[Finding], baseline: Counter
) -> list[Finding]:
    """Findings not covered by the baseline's per-fingerprint budget."""
    budget = Counter(baseline)
    new: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if budget[fp] > 0:
            budget[fp] -= 1
        else:
            new.append(finding)
    return new
