"""Dynamic companion: same-timestamp tie-order sensitivity detector.

The static rules catch *sources* of nondeterminism; this module catches
a subtler class the AST cannot see — model logic whose outcome depends
on the order in which same-timestamp, same-priority events happen to be
processed.  The kernel breaks such ties by insertion sequence, so the
result is reproducible, but it is *fragile*: any refactor that changes
scheduling order (or a port to a kernel with a different tie-break)
changes behavior.  A well-posed model must be tie-order independent.

Mechanism: the scenario is run three times —

1. natively, recording the simulation digest;
2. with :meth:`Environment.run` replaced by an instrumented drain loop
   that pops each equal-``(time, priority)`` batch and processes it in
   FIFO (= native) order.  This digest must match run 1; it proves the
   instrumentation itself is behavior-neutral.
3. with the same drain loop processing each batch in LIFO order —
   a legal tie-break under the model's contract.  A digest mismatch
   means some same-timestamp batch is order-sensitive; the recorded
   batches (time + event descriptions) are the candidate sites.

The drain loop reproduces the native loop's semantics exactly: the
``until`` event/number protocol, :class:`StopSimulation` unwinding,
undefused-failure propagation, the ``stop_at`` horizon, and ``_Sleep``
recycling.  Unprocessed batch entries are pushed back onto the heap on
any non-local exit, because ``run()`` is routinely called repeatedly on
one environment (e.g. once per bench worker).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Optional

from ..sim import core as _core
from ..sim.core import Environment, Event
from ..sim.exceptions import SimulationError, StopSimulation

__all__ = [
    "TieSite",
    "TieOrderReport",
    "patched_tie_order",
    "check_tie_order",
]

#: Recorded tie batches are capped so a pathological scenario does not
#: produce an unbounded report.
_MAX_SITES = 100


@dataclass(frozen=True)
class TieSite:
    """One same-``(time, priority)`` batch with more than one event."""

    time: float
    events: tuple[str, ...]

    def render(self) -> str:
        return f"t={self.time:.9g}: [{', '.join(self.events)}]"


@dataclass
class TieOrderReport:
    """Outcome of one tie-order sensitivity probe."""

    scenario: str
    seed: int
    baseline_digest: str
    fifo_digest: str
    perturbed_digest: str
    ties_seen: int
    tie_sites: list[TieSite] = field(default_factory=list)

    @property
    def instrumentation_ok(self) -> bool:
        """FIFO drain reproduced the native digest (probe is neutral)."""
        return self.fifo_digest == self.baseline_digest

    @property
    def order_sensitive(self) -> bool:
        """LIFO tie-break changed the digest: the model leans on seq order."""
        return self.perturbed_digest != self.baseline_digest

    def render(self) -> str:
        lines = [
            f"tie-order probe: scenario={self.scenario} seed={self.seed}",
            f"  native digest:    {self.baseline_digest}",
            f"  fifo-drain digest: {self.fifo_digest} "
            f"({'ok' if self.instrumentation_ok else 'MISMATCH — probe bug'})",
            f"  lifo-drain digest: {self.perturbed_digest}",
            f"  same-timestamp tie batches seen: {self.ties_seen}",
        ]
        if not self.order_sensitive:
            lines.append("  verdict: tie-order independent")
        else:
            lines.append(
                "  verdict: ORDER-SENSITIVE — digest depends on "
                "same-timestamp tie-breaking; candidate sites:"
            )
            for site in self.tie_sites:
                lines.append(f"    {site.render()}")
            if self.ties_seen > len(self.tie_sites):
                lines.append(
                    f"    ... {self.ties_seen - len(self.tie_sites)} more "
                    "batch(es) not shown"
                )
        return "\n".join(lines)


def _describe(event: Event) -> str:
    """Human-oriented label for one scheduled event."""
    name = type(event).__name__
    owner = getattr(event, "name", None)
    if isinstance(owner, str) and owner:
        return f"{name}({owner})"
    for cb in event.callbacks or ():
        bound = getattr(cb, "__self__", None)
        bound_name = getattr(bound, "name", None)
        if isinstance(bound_name, str) and bound_name:
            return f"{name}->{bound_name}"
    return name


def _make_batch_run(
    mode: str,
    recorder: Optional[Callable[[float, list[Event]], None]] = None,
):
    """Build a drop-in ``Environment.run`` draining ties in ``mode`` order."""
    if mode not in ("fifo", "lifo"):
        raise ValueError(f"unknown tie order mode: {mode!r}")

    def run(self: Environment, until: Any = None) -> Any:
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value if until.ok else None
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise SimulationError(
                        f"until={stop_at} lies in the past (now={self._now})"
                    )

        queue = self._queue
        sleep_pool = self._sleep_pool
        sleep_cls = _core._Sleep
        pending = _core._PENDING
        horizon = float("inf") if stop_at is None else stop_at
        batch: list[tuple[float, int, int, Event]] = []
        try:
            while queue:
                if len(queue) > self._peak_pending:
                    self._peak_pending = len(queue)
                if queue[0][0] >= horizon:
                    self._now = stop_at  # type: ignore[assignment]
                    return None
                t0, p0 = queue[0][0], queue[0][1]
                batch = []
                while queue and queue[0][0] == t0 and queue[0][1] == p0:
                    batch.append(heappop(queue))
                if len(batch) > 1:
                    if recorder is not None:
                        recorder(t0, [entry[3] for entry in batch])
                    if mode == "lifo":
                        batch.reverse()
                while batch:
                    self._now, _, _, event = batch.pop(0)
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if event._ok:
                        if (
                            event.__class__ is sleep_cls
                            and len(sleep_pool) < 128
                        ):
                            event._value = pending
                            sleep_pool.append(event)
                    elif not event._defused:
                        raise event._value  # type: ignore[misc]
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            # A non-local exit (StopSimulation, model failure) may leave
            # popped-but-unprocessed entries; restore them so a later
            # run() on this environment sees the same pending set the
            # native loop would.
            for entry in batch:
                heappush(queue, entry)

        if stop_at is not None:
            self._now = stop_at
        return None

    return run


@contextlib.contextmanager
def patched_tie_order(
    mode: str = "lifo",
    recorder: Optional[Callable[[float, list[Event]], None]] = None,
) -> Iterator[None]:
    """Swap :meth:`Environment.run` for the instrumented batch drain.

    Class-level patch: the environment is slotted, so per-instance
    patching is impossible — every environment created inside the
    ``with`` block uses the perturbed loop.
    """
    original = Environment.run
    Environment.run = _make_batch_run(mode, recorder)  # type: ignore[method-assign]
    try:
        yield
    finally:
        Environment.run = original  # type: ignore[method-assign]


def check_tie_order(
    scenario: str,
    seed: int = 0,
    runner: Optional[Callable[[str, int], Environment]] = None,
) -> TieOrderReport:
    """Probe one scenario for same-timestamp order sensitivity.

    ``runner(scenario, seed)`` must build and run the scenario to
    completion and return its :class:`Environment`; the default uses
    :func:`repro.perf.run_scenario`.
    """
    from ..trace import simulation_digest

    if runner is None:
        from ..perf import run_scenario

        def runner(name: str, s: int) -> Environment:
            env, _result = run_scenario(name, seed=s)
            return env

    baseline = simulation_digest(runner(scenario, seed))

    with patched_tie_order("fifo"):
        fifo = simulation_digest(runner(scenario, seed))

    sites: list[TieSite] = []
    ties = [0]

    def record(time: float, events: list[Event]) -> None:
        ties[0] += 1
        if len(sites) < _MAX_SITES:
            sites.append(
                TieSite(time=time, events=tuple(_describe(e) for e in events))
            )

    with patched_tie_order("lifo", recorder=record):
        lifo = simulation_digest(runner(scenario, seed))

    report = TieOrderReport(
        scenario=scenario,
        seed=seed,
        baseline_digest=baseline,
        fifo_digest=fifo,
        perturbed_digest=lifo,
        ties_seen=ties[0],
        tie_sites=sites if lifo != baseline else [],
    )
    return report
