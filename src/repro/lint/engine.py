"""Lint engine: file walking, parse context, suppressions, reports.

The engine is rule-agnostic.  It parses every file once, builds a
project-wide class table (so slot rules can resolve base classes across
modules), constructs a :class:`LintContext` per file, runs every
registered rule (see :mod:`repro.lint.rules`), and filters findings
through the suppression directives:

* ``# repro-lint: disable=CODE[,CODE...]`` — trailing comment on the
  flagged line suppresses those codes for that line only.
* ``# repro-lint: disable-file=CODE[,CODE...]`` — anywhere in the file
  (conventionally near the top, with a justification) suppresses those
  codes for the whole file.

Suppressing ``all`` disables every rule for the line/file.  Suppression
is deliberate and visible — grandfathered findings belong in the
baseline file instead (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = [
    "LintConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "ClassInfo",
    "ProjectIndex",
    "LintContext",
    "LintReport",
    "lint_paths",
    "lint_source",
    "iter_python_files",
]

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<whole_file>-file)?=(?P<codes>[A-Za-z0-9_,]+)"
)


@dataclass(frozen=True)
class LintConfig:
    """Which paths play which role in the determinism contract.

    Paths are package-relative (``repro/...``); directory roles match by
    prefix, file roles by exact path.
    """

    #: The only module allowed to read the host wall clock (DET101) —
    #: the injectable accessor everything else must import.
    wallclock_modules: tuple[str, ...] = ("repro/util/wallclock.py",)
    #: The only module allowed to touch the global ``random`` module
    #: machinery (DET103): the seeded-stream factory.
    rng_modules: tuple[str, ...] = ("repro/util/rng.py",)
    #: Modules allowed to read process environment variables (DET106):
    #: the CLI/config boundary plus the injectable accessor.
    env_modules: tuple[str, ...] = (
        "repro/cli.py",
        "repro/cluster/config.py",
        "repro/util/wallclock.py",
    )
    #: Layers that run inside simulated time: real blocking calls here
    #: would stall the event loop for every model at once (SIM201).
    sim_layers: tuple[str, ...] = (
        "repro/sim/",
        "repro/hw/",
        "repro/core/",
        "repro/osd/",
        "repro/msgr/",
    )
    #: Wire-adversary modules: must hold no RNG of their own (DET107) —
    #: every perturbation decision comes from the FaultPlan-derived
    #: per-(layer, node) injector stream handed in at attach time.
    adversary_modules: tuple[str, ...] = ("repro/msgr/adversary.py",)
    #: Hot allocation paths: classes here must declare ``__slots__``
    #: (PERF301) — the PR 4 engine work is load-bearing on it.
    hot_paths: tuple[str, ...] = (
        "repro/sim/",
        "repro/hw/",
        "repro/msgr/",
        "repro/osd/",
        "repro/qos/",
        "repro/util/bufferlist.py",
    )

    def is_hot(self, relpath: str) -> bool:
        return any(
            relpath == p or (p.endswith("/") and relpath.startswith(p))
            for p in self.hot_paths
        )

    def in_sim_layer(self, relpath: str) -> bool:
        return any(relpath.startswith(p) for p in self.sim_layers)


DEFAULT_CONFIG = LintConfig()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    path: str  # package-relative, e.g. "repro/hw/net.py"
    line: int
    col: int
    code: str
    message: str
    scope: str  # enclosing qualname, or "<module>"
    source_line: str  # the offending line, stripped

    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-number-free identity used by the baseline file.

        Stable across unrelated edits that merely shift lines: a
        finding is identified by where it lives (path + enclosing
        scope), what rule it violates, and the offending source text.
        """
        return (self.path, self.code, self.scope, self.source_line)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} [{self.scope}]"
        )

    def render_github(self) -> str:
        """GitHub Actions ``::error`` workflow-command annotation.

        Package-relative paths are mapped back under ``src/`` so the
        annotation lands on the file in the repository checkout.
        Newlines in the message would terminate the command, so they
        are escaped per the workflow-command spec.
        """
        path = self.path
        if path.startswith("repro/"):
            path = f"src/{path}"
        message = (
            f"{self.message} [{self.scope}]"
            .replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        return (
            f"::error file={path},line={self.line},col={self.col},"
            f"title={self.code}::{message}"
        )


@dataclass
class ClassInfo:
    """Slot-relevant facts about one class (for the project index)."""

    module: str
    name: str
    bases: list[str]  # resolved dotted names where possible, else raw
    #: Declared slot names; ``None`` when the class has no ``__slots__``
    #: (instances carry ``__dict__``), or when slots were declared with
    #: a non-literal expression we cannot evaluate.
    slots: Optional[frozenset[str]]
    #: ``True`` when ``__slots__`` exists but could not be parsed, or
    #: the class is built by a decorator we don't model — slot rules
    #: must then skip it rather than guess.
    opaque: bool = False
    #: Names assignable through descriptors (properties and their
    #: setters) — legal targets on a slotted class.
    descriptors: frozenset[str] = frozenset()
    #: ``@dataclass(frozen=True)``: instances are immutable after
    #: construction, so cross-node reads of their attributes are safe.
    frozen: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


class ProjectIndex:
    """Cross-file class table: ``module.Class`` → :class:`ClassInfo`.

    Beyond the class table, the index keeps every parsed module tree
    (``modules``) so whole-program passes — the ownership analysis —
    can trace constructor-argument flow across files, plus a ``cache``
    slot for analyses that are built once per lint run and shared by
    several rules.
    """

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        #: module name → (package-relative path, parsed tree)
        self.modules: dict[str, tuple[str, ast.Module]] = {}
        #: scratch space for cross-rule analyses (ownership graph)
        self.cache: dict[str, object] = {}

    def add(self, info: ClassInfo) -> None:
        self.classes[info.qualname] = info

    def lookup(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(dotted)

    def resolve_slots(self, info: ClassInfo) -> Optional[frozenset[str]]:
        """Union of slots over ``info`` and every base, or ``None``.

        ``None`` means "cannot prove instances lack ``__dict__``":
        unslotted/opaque classes, unresolvable bases, or an inheritance
        cycle all make the slot set unknowable — callers skip the class.
        """
        seen: set[str] = set()
        union: set[str] = set()

        def walk(ci: ClassInfo) -> bool:
            if ci.qualname in seen:
                return True
            seen.add(ci.qualname)
            if ci.opaque or ci.slots is None:
                return False
            union.update(ci.slots)
            union.update(ci.descriptors)
            for base in ci.bases:
                if base == "object":
                    continue
                base_info = self.lookup(base)
                if base_info is None:
                    return False
                if not walk(base_info):
                    return False
            return True

        return frozenset(union) if walk(info) else None


def module_name(relpath: str) -> str:
    """``repro/hw/net.py`` → ``repro.hw.net``."""
    trimmed = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in trimmed.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _build_import_table(tree: ast.Module, module: str) -> dict[str, str]:
    """Local alias → canonical dotted name, for Name/Attribute resolution."""
    table: dict[str, str] = {}
    pkg_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: anchor at this module's package.
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                table[bound] = f"{prefix}.{alias.name}" if prefix else alias.name
    return table


class LintContext:
    """Everything a rule needs about one parsed file."""

    def __init__(
        self,
        relpath: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
        project: Optional[ProjectIndex] = None,
    ) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.config = config
        self.project = project if project is not None else ProjectIndex()
        self.module = module_name(relpath)
        self.lines = source.splitlines()
        self.imports = _build_import_table(tree, self.module)
        self.parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)
        }

    # -- resolution helpers -------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted canonical name of a Name/Attribute chain, if importable."""
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def scope_of(self, node: ast.AST) -> str:
        """Qualname of the enclosing function/class scope."""
        names: list[str] = []
        cur: Optional[ast.AST] = node
        while cur is not None:
            if isinstance(
                cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(cur.name)
            cur = self.parents.get(cur)
        return ".".join(reversed(names)) or "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        cur: Optional[ast.AST] = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def in_finally(self, node: ast.AST) -> bool:
        """Is ``node`` inside the ``finally`` suite of some ``try``?"""
        cur = node
        parent = self.parents.get(cur)
        while parent is not None:
            if isinstance(parent, ast.Try) and any(
                cur is stmt or _contains(stmt, cur) for stmt in parent.finalbody
            ):
                return True
            cur, parent = parent, self.parents.get(parent)
        return False

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col,
            code=code,
            message=message,
            scope=self.scope_of(node),
            source_line=self.source_line(line),
        )


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(n is target for n in ast.walk(root))


# ---------------------------------------------------------------- suppressions

def _directives(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """(file-wide codes, line → codes) from repro-lint comments."""
    file_codes: set[str] = set()
    line_codes: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        for match in _DIRECTIVE_RE.finditer(text):
            codes = {
                c.strip().upper()
                for c in match.group("codes").split(",")
                if c.strip()
            }
            if match.group("whole_file"):
                file_codes |= codes
            else:
                line_codes.setdefault(lineno, set()).update(codes)
    return file_codes, line_codes


def _suppressed(finding: Finding, file_codes: set[str],
                line_codes: dict[int, set[str]]) -> bool:
    for codes in (file_codes, line_codes.get(finding.line, set())):
        if "ALL" in codes or finding.code in codes:
            return True
    return False


# ------------------------------------------------------------------- reports

@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    #: The project index built during the run, so callers (the
    #: ``--ownership`` report) can reuse the parse work.
    project: "ProjectIndex" = field(default_factory=lambda: ProjectIndex())

    def counts_by_code(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------- entry points

def iter_python_files(paths: Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            out.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def package_relpath(path: pathlib.Path) -> str:
    """Best-effort package-relative path (``repro/...``) for role matching."""
    parts = list(path.parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return "/".join(parts[-2:]) if len(parts) > 1 else parts[-1]


def _index_file(
    relpath: str, tree: ast.Module, project: ProjectIndex
) -> None:
    """Record every class in ``tree`` into the project index."""
    module = module_name(relpath)
    project.modules[module] = (relpath, tree)
    imports = _build_import_table(tree, module)

    def resolve_base(expr: ast.expr) -> str:
        if isinstance(expr, ast.Name):
            resolved = imports.get(expr.id)
            if resolved is not None:
                return resolved
            # Unqualified name: assume a sibling class in this module.
            return f"{module}.{expr.id}" if expr.id != "object" else "object"
        if isinstance(expr, ast.Attribute):
            parts: list[str] = []
            cur: ast.expr = expr
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                head = imports.get(cur.id, cur.id)
                return ".".join([head] + list(reversed(parts)))
        return ast.dump(expr)

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        slots, opaque = _declared_slots(node)
        descriptors = _descriptor_names(node)
        project.add(
            ClassInfo(
                module=module,
                name=node.name,
                bases=[resolve_base(b) for b in node.bases],
                slots=slots,
                opaque=opaque,
                descriptors=descriptors,
                frozen=dataclass_frozen_decorator(node),
            )
        )


def dataclass_slots_decorator(node: ast.ClassDef) -> Optional[bool]:
    """``None`` if not a dataclass; else whether ``slots=True`` was passed."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name != "dataclass":
            continue
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "slots":
                    return (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    )
        return False
    return None


def dataclass_frozen_decorator(node: ast.ClassDef) -> bool:
    """``True`` when the class is declared ``@dataclass(frozen=True)``."""
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        target = dec.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name != "dataclass":
            continue
        for kw in dec.keywords:
            if kw.arg == "frozen":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
    return False


def _annotated_fields(node: ast.ClassDef) -> frozenset[str]:
    """Dataclass field names: annotated class-body names minus ClassVars."""
    out: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = ast.unparse(stmt.annotation)
            if "ClassVar" in ann.split("[")[0]:
                continue
            out.add(stmt.target.id)
    return frozenset(out)


def _declared_slots(
    node: ast.ClassDef,
) -> tuple[Optional[frozenset[str]], bool]:
    """(slot names or None, opaque?) for one class definition."""
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in targets
        ):
            continue
        names: set[str] = set()
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            names.add(value.value)
        elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.add(elt.value)
                else:
                    return None, True  # non-literal element
        else:
            return None, True  # computed __slots__
        return frozenset(names), False
    slotted = dataclass_slots_decorator(node)
    if slotted:
        return _annotated_fields(node), False
    return None, False


def _descriptor_names(node: ast.ClassDef) -> frozenset[str]:
    """Method names bound through descriptors (properties / setters)."""
    out: set[str] = set()
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for dec in stmt.decorator_list:
            if isinstance(dec, ast.Name) and dec.id in (
                "property", "cached_property"
            ):
                out.add(stmt.name)
            elif isinstance(dec, ast.Attribute) and dec.attr in (
                "setter", "deleter", "getter"
            ):
                out.add(stmt.name)
    return frozenset(out)


def _run_rules(
    ctx: LintContext, select: Optional[set[str]] = None
) -> list[Finding]:
    from .rules import RULES  # deferred: rules import engine types

    file_codes, line_codes = _directives(ctx.source)
    findings: list[Finding] = []
    for code, rule in sorted(RULES.items()):
        if select is not None and code not in select:
            continue
        findings.extend(rule.check(ctx))
    findings = [
        f for f in findings if not _suppressed(f, file_codes, line_codes)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_source(
    source: str,
    relpath: str = "repro/snippet.py",
    config: LintConfig = DEFAULT_CONFIG,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one in-memory source blob (fixture tests, tooling)."""
    project = ProjectIndex()
    tree = ast.parse(source)
    _index_file(relpath, tree, project)
    ctx = LintContext(relpath, source, tree, config, project)
    return _run_rules(ctx, set(select) if select is not None else None)


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    config: LintConfig = DEFAULT_CONFIG,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories; returns a :class:`LintReport`.

    Two-phase: every file is parsed and indexed first so slot rules can
    resolve base classes across modules, then rules run per file.
    """
    report = LintReport()
    project = report.project
    parsed: list[tuple[str, str, ast.Module]] = []
    for path in iter_python_files(paths):
        relpath = package_relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(
                Finding(
                    path=relpath,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    code="LINT000",
                    message=f"cannot parse: {exc}",
                    scope="<module>",
                    source_line="",
                )
            )
            continue
        parsed.append((relpath, source, tree))
        _index_file(relpath, tree, project)
    selected = set(select) if select is not None else None
    for relpath, source, tree in parsed:
        ctx = LintContext(relpath, source, tree, config, project)
        report.findings.extend(_run_rules(ctx, selected))
        report.files_checked += 1
    report.findings.extend(report.parse_errors)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report
