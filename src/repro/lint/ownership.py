"""Whole-program ownership analysis: proves the sim is shardable.

ROADMAP item 1 partitions the event engine into per-node-group shards
that run in parallel and merge digest-identically.  That refactor is
only sound if every mutable object is owned by exactly one node and
every cross-node interaction goes through the network fabric — DoCeph's
own host/DPU offload rests on the same property.  This module answers
the ownership question statically, across the whole tree at once:

* every class in the node-scoped modules (``hw/``, ``osd/``, ``msgr/``,
  ``cluster/``, ``core/``, ``objectstore/``, ``rados/``) gets a
  **role** — node-scoped, fabric, ambient, shared, value, or harness;
* every attribute of every node-scoped class gets a **classification**
  (node-local, fabric edge, ambient, shared, value) by tracing
  constructor-argument and assignment flow across modules through the
  :class:`~repro.lint.engine.ProjectIndex`;
* the cluster builder's constructor-argument flow is analysed so a
  node-scoped instance built once cannot silently fan out into several
  nodes' constructors;
* handler code that resolves a peer through a fabric accessor
  (``directory.lookup``, ``network.nic``) is checked against the
  declared wire interface.

Violations surface as OWN4xx findings (see :mod:`repro.lint.rules`);
every legitimate crossing is **declared** below, in one auditable
manifest, so the sharding PR can read the full edge list off this file.

The runtime counterpart is :mod:`repro.lint.sanitizer`, which tags live
objects with their owning node and checks every attribute mutation
against the same manifest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .engine import (
    ClassInfo,
    LintConfig,
    ProjectIndex,
    _build_import_table,
    dataclass_slots_decorator,
)

__all__ = [
    "Role",
    "ROLE_MANIFEST",
    "MODULE_ROLES",
    "EDGE_ATTRS",
    "EDGE_INTERFACE",
    "DYNAMIC_EDGES",
    "FABRIC_ACCESSORS",
    "OWN402_ALLOWED",
    "AttrInfo",
    "ClassOwnership",
    "OwnershipGraph",
    "ownership_graph",
    "role_of",
    "is_node_module",
    "render_report",
]


class Role(Enum):
    """What a class's instances are, for shard-partitioning purposes."""

    #: Owned by exactly one node (or the client); lives in that shard.
    NODE = "node"
    #: The wire itself: address routing, partitions, delivery. The
    #: shard boundary — fabric objects are reachable from every shard.
    FABRIC = "fabric"
    #: Simulation infrastructure every shard shares read-mostly:
    #: Environment, Tracer, RNG streams, fault plans, profiles.
    AMBIENT = "ambient"
    #: Explicitly manifested cross-node mutable state.  The sharding PR
    #: must replicate or serialize these (epoch-versioned OsdMap).
    SHARED = "shared"
    #: Pass-by-value payloads: messages, frames, buffers, records.
    #: Ownership transfers with delivery; never aliased across nodes
    #: for mutation.
    VALUE = "value"
    #: Build/bench apparatus that exists outside the simulated world.
    HARNESS = "harness"


#: Module prefixes whose classes default to :attr:`Role.NODE`.
NODE_MODULES: tuple[str, ...] = (
    "repro.hw",
    "repro.osd",
    "repro.msgr",
    "repro.cluster",
    "repro.core",
    "repro.objectstore",
    "repro.rados",
)

#: Module prefixes whose classes default to :attr:`Role.AMBIENT`.
AMBIENT_MODULES: tuple[str, ...] = (
    "repro.sim",
    "repro.trace",
    "repro.util",
    "repro.faults",
    "repro.lint",
)

#: Whole-module role overrides (checked after class-level entries).
MODULE_ROLES: dict[str, Role] = {
    # In-flight payloads: ownership transfers with delivery.
    "repro.msgr.message": Role.VALUE,
    "repro.rados.types": Role.VALUE,
    # Placement state embedded in the shared OsdMap.
    "repro.crush.map": Role.SHARED,
    "repro.crush.buckets": Role.SHARED,
    # Calibrated profiles and offload policies: immutable config.
    "repro.cluster.config": Role.AMBIENT,
    "repro.cluster.strategy": Role.AMBIENT,
}

#: Class-level role overrides: dotted name → (role, justification).
#: This is the authoritative half of the ownership manifest — every
#: entry is a reviewed decision, not an inference.
ROLE_MANIFEST: dict[str, tuple[Role, str]] = {
    # -- fabric: the shard boundary itself --------------------------------
    "repro.hw.net.Network": (
        Role.FABRIC,
        "address→NIC routing, latency, partitions: the wire every "
        "cross-node byte crosses",
    ),
    "repro.hw.net.Partition": (
        Role.FABRIC,
        "a fault of the wire, not of any node",
    ),
    "repro.msgr.messenger.MsgrDirectory": (
        Role.FABRIC,
        "address→messenger registry: every cross-node send resolves "
        "its peer here",
    ),
    # -- shared: manifested cross-node mutable state ----------------------
    "repro.rados.osdmap.OsdMap": (
        Role.SHARED,
        "cluster metadata handed by reference to mon, every OSD and "
        "the client; the sharding PR must replicate it by epoch",
    ),
    "repro.rados.osdmap.OsdInfo": (
        Role.SHARED,
        "per-OSD record inside the shared OsdMap, mutated by the mon",
    ),
    # -- harness ----------------------------------------------------------
    "repro.cluster.builder.Cluster": (
        Role.HARNESS,
        "build/bench apparatus holding every node; not simulated state",
    ),
    # -- values and config inside node-scoped modules ---------------------
    "repro.msgr.messenger.WireFrame": (
        Role.VALUE,
        "bytes in flight; the sender's resend window owns the pristine "
        "copy",
    ),
    "repro.msgr.messenger.MessengerCostModel": (
        Role.AMBIENT,
        "calibrated per-message CPU costs, immutable after build",
    ),
    "repro.osd.daemon.OsdConfig": (
        Role.AMBIENT,
        "tuning constants shared read-only by every OSD",
    ),
    "repro.osd.opqueue.QosSpec": (
        Role.AMBIENT,
        "per-tenant mClock policy tags, immutable after registration",
    ),
    "repro.objectstore.api.Transaction": (
        Role.VALUE,
        "a batch of store ops handed to exactly one store",
    ),
    "repro.objectstore.api.TxnOp": (Role.VALUE, "one op in a Transaction"),
    "repro.objectstore.api.StatResult": (Role.VALUE, "read-only stat reply"),
    "repro.rados.client.OpResult": (Role.VALUE, "read-only op outcome"),
    "repro.hw.cpu.CpuSnapshot": (Role.VALUE, "point-in-time counters copy"),
}

#: Fabric accessor methods: calling one resolves an object owned by a
#: (potentially) different node.  Maps method name → default dotted
#: class of the returned peer object.
FABRIC_ACCESSORS: dict[str, str] = {
    "lookup": "repro.msgr.messenger.AsyncMessenger",
    "nic": "repro.hw.net.Nic",
}

#: Declared attribute-level fabric edges: a node-scoped class is allowed
#: to *store* a fabric-resolved peer reference in these attributes.
EDGE_ATTRS: dict[tuple[str, str], str] = {
    ("repro.msgr.messenger._WirePump", "_tx_pipe"):
        "own NIC tx pipe, re-resolved through the fabric per frame",
    ("repro.msgr.messenger._WirePump", "_rx_pipe"):
        "peer NIC rx pipe, held only for one frame's flight — this is "
        "where wire bytes land",
}

#: The wire interface: attribute reads/calls that ARE the fabric edge.
#: Anything a node does to a fabric-resolved peer beyond this list is a
#: shard-partitioning hazard (OWN401/OWN403).
EDGE_INTERFACE: dict[str, str] = {
    "_enqueue_incoming":
        "frame delivery: bytes land in the peer messenger's receive "
        "path",
    "_skip_seq":
        "sender declares a wire-consumed seq gone so the peer can "
        "advance past the hole (reverse control channel)",
    "handle_nack":
        "receiver-driven retransmit request riding the established "
        "connection (models TCP SACK)",
    "reset":
        "session reset signalled on the reverse channel",
    "epoch":
        "connection-incarnation check before using the reverse channel",
    "down":
        "peer liveness check (models TCP RST visibility)",
    "_connections":
        "resolving the sender-side connection behind a stream for the "
        "reverse channel",
    "rx": "NIC receive pipe: where incoming wire bytes land",
    "tx": "NIC transmit pipe",
    "address": "immutable endpoint identity",
}

#: Runtime fabric edges for the sanitizer: (actor class, target class)
#: pairs allowed to mutate across node owners.
DYNAMIC_EDGES: dict[tuple[str, str], str] = {
    ("repro.hw.net._RxChunk", "repro.hw.net.BandwidthPipe"):
        "wire bytes arriving: the in-flight chunk charges the peer NIC "
        "rx pipe's transfer counters",
}

#: Module-level mutable state in node-scoped modules that is exempt
#: from OWN402, with justification.
OWN402_ALLOWED: dict[tuple[str, str], str] = {
    ("repro.cluster.strategy", "_REGISTRY"):
        "write-once offload-strategy registry, populated at import "
        "time and read-only thereafter",
    ("repro.msgr.message", "_REGISTRY"):
        "write-once message-type codec registry, populated by class "
        "decorators at import time and read-only thereafter",
}

#: Bases whose subclasses are plain values regardless of module.
_VALUE_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Protocol",
        "NamedTuple",
    }
)


def _module_matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def is_node_module(module: str) -> bool:
    """Does ``module`` default its classes to node-scoped ownership?"""
    return any(_module_matches(module, p) for p in NODE_MODULES)


def role_of(qualname: str, info: Optional[ClassInfo] = None) -> tuple[Role, str]:
    """(role, justification) for a dotted class name.

    Resolution order: class manifest → module manifest → structural
    value heuristics (exceptions, enums, frozen dataclasses) → module
    defaults.
    """
    entry = ROLE_MANIFEST.get(qualname)
    if entry is not None:
        return entry
    module, _, name = qualname.rpartition(".")
    mod_role = MODULE_ROLES.get(module)
    if mod_role is not None:
        return mod_role, f"module manifest: {module}"
    if name.endswith(("Error", "Exception", "Warning")):
        return Role.VALUE, "exception type"
    if info is not None:
        basenames = {b.rpartition(".")[2] for b in info.bases}
        if basenames & _VALUE_BASES:
            return Role.VALUE, "enum/exception/protocol"
        if info.frozen:
            return Role.VALUE, "frozen dataclass"
    if is_node_module(module):
        return Role.NODE, "node-scoped module default"
    if any(_module_matches(module, p) for p in AMBIENT_MODULES):
        return Role.AMBIENT, "simulation-infrastructure module"
    return Role.HARNESS, "outside the modelled tree"


#: Buckets an attribute classification can land in.
_BUCKET_FOR_ROLE = {
    Role.NODE: "node",
    Role.FABRIC: "fabric",
    Role.AMBIENT: "ambient",
    Role.SHARED: "shared",
    Role.VALUE: "value",
    Role.HARNESS: "ambient",  # harness refs inside the sim: env-like
}

#: Builtins whose call result is a node-local container/scalar.
_LOCAL_BUILTINS = frozenset(
    {
        "dict", "list", "set", "frozenset", "tuple", "deque",
        "defaultdict", "OrderedDict", "Counter", "int", "float", "str",
        "bool", "bytes", "bytearray", "min", "max", "len", "abs",
        "round", "sum", "id", "object",
    }
)


@dataclass
class AttrInfo:
    """Classification of one attribute of a node-scoped class."""

    name: str
    #: local | node | fabric | ambient | shared | value | accessor |
    #: unknown
    bucket: str
    #: Dotted class of the referenced object, when resolvable.
    cls: Optional[str] = None
    #: Human-readable origin ("param env", "constructed", "literal").
    origin: str = ""
    line: int = 0


@dataclass
class ClassOwnership:
    """Role + per-attribute classification for one class."""

    qualname: str
    role: Role
    role_reason: str
    attrs: dict[str, AttrInfo] = field(default_factory=dict)

    def bucket_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for a in self.attrs.values():
            out[a.bucket] = out.get(a.bucket, 0) + 1
        return dict(sorted(out.items()))


class OwnershipGraph:
    """Whole-program reference graph over the node-scoped modules."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.classes: dict[str, ClassOwnership] = {}
        #: (class qualname, accessor method) → dotted return class,
        #: from return annotations (fixture/project directories).
        self.accessor_returns: dict[tuple[str, str], str] = {}
        self._views: dict[str, "_ModuleView"] = {}
        self._in_progress: set[str] = set()

    def view(self, module: str) -> Optional["_ModuleView"]:
        """The parsed-module view for ``module`` (``None`` if not indexed)."""
        return self._views.get(module)

    # -- construction -----------------------------------------------------

    def build(self) -> "OwnershipGraph":
        for module, (relpath, tree) in sorted(self.project.modules.items()):
            if not is_node_module(module):
                continue
            view = _ModuleView(module, tree)
            self._views[module] = view
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    self._record_accessors(view, node)
        for module, view in sorted(self._views.items()):
            for node in view.tree.body:
                if isinstance(node, ast.ClassDef):
                    self.classify_class(f"{module}.{node.name}")
        return self

    def _record_accessors(self, view: "_ModuleView", node: ast.ClassDef) -> None:
        qual = f"{view.module}.{node.name}"
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in FABRIC_ACCESSORS or stmt.returns is None:
                continue
            dotted = view.resolve_annotation(stmt.returns)
            if dotted is not None:
                self.accessor_returns[(qual, stmt.name)] = dotted

    def classify_class(self, qualname: str) -> Optional[ClassOwnership]:
        """Classify ``qualname`` (memoized; cycle-safe)."""
        done = self.classes.get(qualname)
        if done is not None:
            return done
        if qualname in self._in_progress:
            return None
        module, _, name = qualname.rpartition(".")
        view = self._views.get(module)
        info = self.project.lookup(qualname)
        role, reason = role_of(qualname, info)
        own = ClassOwnership(qualname=qualname, role=role, role_reason=reason)
        self.classes[qualname] = own
        if view is None or role is not Role.NODE:
            return own
        node = view.class_defs.get(name)
        if node is None:
            return own
        self._in_progress.add(qualname)
        try:
            self._classify_attrs(view, node, own)
        finally:
            self._in_progress.discard(qualname)
        return own

    def _classify_attrs(
        self, view: "_ModuleView", node: ast.ClassDef, own: ClassOwnership
    ) -> None:
        # Dataclass fields: the value is whatever the builder passes in,
        # so classify by the annotated type's role (same as a ctor
        # param).
        is_dataclass = dataclass_slots_decorator(node) is not None
        if is_dataclass:
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                ann = ast.unparse(stmt.annotation)
                if "ClassVar" in ann.split("[")[0]:
                    continue
                dotted = view.resolve_annotation(stmt.annotation)
                bucket, cls = self._bucket_for_class(dotted)
                own.attrs[stmt.target.id] = AttrInfo(
                    name=stmt.target.id,
                    bucket=bucket,
                    cls=cls,
                    origin=f"field: {ann}",
                    line=stmt.lineno,
                )
        methods = [
            m
            for m in node.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        methods.sort(key=lambda m: (m.name != "__init__",))
        for method in methods:
            params = view.param_types(method)
            self_name = method.args.args[0].arg if method.args.args else ""
            for stmt in ast.walk(method):
                target: Optional[ast.Attribute] = None
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == self_name
                        ):
                            target, value = t, stmt.value
                            break
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    t = stmt.target
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == self_name
                    ):
                        target, value = t, stmt.value
                if target is None or value is None:
                    continue
                bucket, cls, origin = self._classify_expr(
                    value, view, params, own
                )
                prev = own.attrs.get(target.attr)
                if prev is None or (
                    prev.bucket == "unknown" and bucket != "unknown"
                ):
                    own.attrs[target.attr] = AttrInfo(
                        name=target.attr,
                        bucket=bucket,
                        cls=cls,
                        origin=origin,
                        line=target.lineno,
                    )

    def _bucket_for_class(
        self, dotted: Optional[str]
    ) -> tuple[str, Optional[str]]:
        if dotted is None:
            return "unknown", None
        role, _ = role_of(dotted, self.project.lookup(dotted))
        return _BUCKET_FOR_ROLE[role], dotted

    def _classify_expr(
        self,
        expr: ast.expr,
        view: "_ModuleView",
        params: dict[str, Optional[str]],
        own: ClassOwnership,
    ) -> tuple[str, Optional[str], str]:
        """(bucket, referenced class, origin) for one assigned value."""
        if isinstance(expr, (
            ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set,
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
            ast.JoinedStr, ast.Compare, ast.BoolOp, ast.BinOp,
            ast.UnaryOp,
        )):
            return "local", None, "literal"
        if isinstance(expr, ast.IfExp):
            return self._classify_expr(expr.body, view, params, own)
        if isinstance(expr, ast.Call):
            if is_fabric_accessor_call(expr):
                cls = self.accessor_return_class(expr, view, params, own)
                return "accessor", cls, "fabric accessor result"
            dotted = view.resolve_call(expr.func)
            if dotted is not None:
                tail = dotted.rpartition(".")[2]
                if tail in _LOCAL_BUILTINS:
                    return "local", None, f"{tail}()"
                if tail[:1].isupper():
                    # Constructing the object here makes it a node-local
                    # child regardless of the class's own role.
                    return "local", dotted, f"constructed {tail}(...)"
            if isinstance(expr.func, ast.Name):
                if expr.func.id in _LOCAL_BUILTINS:
                    return "local", None, f"{expr.func.id}()"
                if expr.func.id[:1].isupper():
                    return "local", None, f"constructed {expr.func.id}(...)"
            return "unknown", None, "call"
        if isinstance(expr, ast.Name):
            if expr.id in params:
                dotted = params[expr.id]
                bucket, cls = self._bucket_for_class(dotted)
                return bucket, cls, f"param {expr.id}"
            return "unknown", None, f"name {expr.id}"
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id in params:
                    # one cross-class hop: param's class, then its attr
                    dotted = params[base.id]
                    hop = self._attr_of(dotted, expr.attr)
                    if hop is not None:
                        return hop.bucket, hop.cls, (
                            f"param {base.id}.{expr.attr} "
                            f"(via {dotted})"
                        )
                    return "unknown", None, f"param {base.id}.{expr.attr}"
                # self.y → copy of y's classification
                sibling = own.attrs.get(expr.attr)
                if sibling is not None:
                    return sibling.bucket, sibling.cls, f"self.{expr.attr}"
            dotted = view.resolve(expr)
            if dotted is not None:
                return "local", None, f"module ref {dotted}"
            return "unknown", None, "attribute"
        return "unknown", None, type(expr).__name__.lower()

    def _attr_of(self, qualname: Optional[str], attr: str) -> Optional[AttrInfo]:
        if qualname is None:
            return None
        own = self.classify_class(qualname)
        if own is None:
            return None
        return own.attrs.get(attr)

    def accessor_return_class(
        self,
        call: ast.Call,
        view: "_ModuleView",
        params: dict[str, Optional[str]],
        own: Optional[ClassOwnership],
    ) -> Optional[str]:
        """Dotted class an accessor call resolves to, best effort."""
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        receiver = call.func.value
        recv_cls: Optional[str] = None
        if isinstance(receiver, ast.Name) and receiver.id in params:
            recv_cls = params[receiver.id]
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and own is not None
        ):
            sibling = own.attrs.get(receiver.attr)
            if sibling is not None:
                recv_cls = sibling.cls
        if recv_cls is not None:
            annotated = self.accessor_returns.get((recv_cls, method))
            if annotated is not None:
                return annotated
        return FABRIC_ACCESSORS.get(method)

    # -- report -----------------------------------------------------------

    def node_classes(self) -> list[ClassOwnership]:
        return [
            c for c in self.classes.values() if c.role is Role.NODE
        ]


def is_fabric_accessor_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in FABRIC_ACCESSORS
    )


class _ModuleView:
    """Per-module name resolution for the graph builder."""

    def __init__(self, module: str, tree: ast.Module) -> None:
        self.module = module
        self.tree = tree
        self.imports = _build_import_table(tree, module)
        self.class_defs: dict[str, ast.ClassDef] = {
            n.name: n for n in tree.body if isinstance(n, ast.ClassDef)
        }
        self.func_defs: dict[str, ast.FunctionDef] = {
            n.name: n for n in tree.body if isinstance(n, ast.FunctionDef)
        }

    def resolve(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.imports:
                return self.imports[node.id]
            if node.id in self.class_defs:
                return f"{self.module}.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        return self.resolve(func)

    def resolve_annotation(self, ann: ast.expr) -> Optional[str]:
        """Dotted class named by a (possibly string/Optional) annotation."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            head = ann.value
            name = head.attr if isinstance(head, ast.Attribute) else (
                head.id if isinstance(head, ast.Name) else ""
            )
            if name in ("Optional", "Annotated"):
                inner = ann.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.resolve_annotation(inner)
            return None  # containers: the element isn't the attr itself
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self.resolve_annotation(ann.left)
            if left is not None:
                return left
            return self.resolve_annotation(ann.right)
        if isinstance(ann, (ast.Name, ast.Attribute)):
            return self.resolve(ann)
        return None

    def param_types(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, Optional[str]]:
        """Param name → dotted annotated class (skipping ``self``)."""
        out: dict[str, Optional[str]] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for i, arg in enumerate(args):
            if i == 0 and arg.arg in ("self", "cls"):
                continue
            out[arg.arg] = (
                self.resolve_annotation(arg.annotation)
                if arg.annotation is not None
                else None
            )
        return out


def ownership_graph(
    project: ProjectIndex, config: Optional[LintConfig] = None
) -> OwnershipGraph:
    """Build (or fetch the cached) ownership graph for this lint run."""
    cached = project.cache.get("ownership")
    if isinstance(cached, OwnershipGraph):
        return cached
    graph = OwnershipGraph(project).build()
    project.cache["ownership"] = graph
    return graph


# ----------------------------------------------------------------- report

def render_report(graph: OwnershipGraph) -> str:
    """Human-readable per-node ownership report for ``--ownership``."""
    lines: list[str] = []
    by_role: dict[Role, list[ClassOwnership]] = {}
    for own in graph.classes.values():
        by_role.setdefault(own.role, []).append(own)
    total = len(graph.classes)
    summary = ", ".join(
        f"{len(by_role.get(r, []))} {r.value}"
        for r in (
            Role.NODE, Role.FABRIC, Role.SHARED, Role.AMBIENT,
            Role.VALUE, Role.HARNESS,
        )
        if by_role.get(r)
    )
    lines.append(f"ownership report — {total} classes: {summary}")
    lines.append("")
    lines.append("node-scoped classes (attribute classification):")
    for own in sorted(by_role.get(Role.NODE, []), key=lambda c: c.qualname):
        counts = own.bucket_counts()
        shown = " ".join(f"{k}={v}" for k, v in counts.items()) or "no attrs"
        lines.append(f"  {own.qualname}: {shown}")
        for a in sorted(own.attrs.values(), key=lambda a: a.name):
            if a.bucket in ("fabric", "shared", "accessor"):
                lines.append(
                    f"    .{a.name} → {a.bucket}"
                    + (f" ({a.cls})" if a.cls else "")
                    + (f" [{a.origin}]" if a.origin else "")
                )
    for role, title in (
        (Role.FABRIC, "fabric (the shard boundary)"),
        (Role.SHARED, "shared (manifested cross-node mutable state)"),
    ):
        entries = by_role.get(role, [])
        if not entries:
            continue
        lines.append("")
        lines.append(f"{title}:")
        for own in sorted(entries, key=lambda c: c.qualname):
            lines.append(f"  {own.qualname} — {own.role_reason}")
    lines.append("")
    lines.append("declared fabric edges (attribute level):")
    for (qual, attr), why in sorted(EDGE_ATTRS.items()):
        lines.append(f"  {qual}.{attr} — {why}")
    lines.append("declared wire interface (peer-handle surface):")
    for name, why in sorted(EDGE_INTERFACE.items()):
        lines.append(f"  .{name} — {why}")
    lines.append("declared runtime edges (sanitizer):")
    for (actor, target), why in sorted(DYNAMIC_EDGES.items()):
        lines.append(f"  {actor} → {target} — {why}")
    return "\n".join(lines)
