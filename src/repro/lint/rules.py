"""The rule catalogue.

Three families, each guarding one of the invariants the reproduction is
load-bearing on (see DESIGN.md §9):

* ``DET1xx`` — determinism: no wall-clock, no ambient entropy, no
  unordered-collection iteration feeding order-sensitive code, no
  identity-keyed ordering, no env reads outside the config boundary.
* ``SIM2xx`` — sim-safety: no real blocking calls inside simulated
  layers; every ``Resource.request()`` must be released on all
  exception paths (the simulated-concurrency analogue of a lock-leak
  checker).
* ``PERF3xx`` — perf-invariants: hot-module classes declare
  ``__slots__``; slotted classes never assign undeclared attributes
  (which would raise ``AttributeError`` at runtime); synchronous
  drain loops in hot modules allocate nothing per event.

Rules are plain functions registered by code; each takes a
:class:`~repro.lint.engine.LintContext` and returns findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Finding, LintContext, dataclass_slots_decorator
from .ownership import (
    EDGE_ATTRS,
    EDGE_INTERFACE,
    OWN402_ALLOWED,
    Role,
    is_fabric_accessor_call,
    is_node_module,
    ownership_graph,
    role_of,
)

__all__ = ["Rule", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    description: str
    check: Callable[[LintContext], list[Finding]]


RULES: dict[str, Rule] = {}


def rule(code: str, name: str, description: str):
    def register(fn: Callable[[LintContext], list[Finding]]):
        RULES[code] = Rule(code=code, name=name, description=description, check=fn)
        return fn

    return register


# --------------------------------------------------------------- DET1xx rules

#: Host-clock reads.  Calling any of these inside the tree couples model
#: output to the machine it ran on.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@rule(
    "DET101",
    "wall-clock-read",
    "host clock read outside the injectable wallclock accessor",
)
def det101_wallclock(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.wallclock_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in _WALLCLOCK_CALLS:
                findings.append(
                    ctx.finding(
                        node,
                        "DET101",
                        f"wall-clock read {resolved}() — route through "
                        "repro.util.wallclock.perf_counter",
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if f"time.{alias.name}" in _WALLCLOCK_CALLS:
                    findings.append(
                        ctx.finding(
                            node,
                            "DET101",
                            f"imports wall-clock primitive time.{alias.name} — "
                            "route through repro.util.wallclock",
                        )
                    )
    return findings


_ENTROPY_CALLS = frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom", "random.SystemRandom"}
)


@rule(
    "DET102",
    "ambient-entropy",
    "OS/hardware entropy source (uuid4, os.urandom, secrets)",
)
def det102_entropy(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved in _ENTROPY_CALLS or resolved.split(".")[0] == "secrets":
            findings.append(
                ctx.finding(
                    node,
                    "DET102",
                    f"nondeterministic entropy source {resolved}() — derive "
                    "ids from repro.util.rng.SeededRng instead",
                )
            )
    return findings


#: Module-level random functions share one hidden global stream; any new
#: caller reorders every other caller's draws.
_GLOBAL_RANDOM = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.gammavariate",
        "random.lognormvariate",
        "random.paretovariate",
        "random.weibullvariate",
        "random.triangular",
        "random.vonmisesvariate",
        "random.getrandbits",
        "random.randbytes",
        "random.seed",
    }
)


@rule(
    "DET103",
    "global-random",
    "global/unseeded random outside the seeded-stream factory",
)
def det103_global_random(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.rng_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved in _GLOBAL_RANDOM:
            findings.append(
                ctx.finding(
                    node,
                    "DET103",
                    f"global random stream {resolved}() — use "
                    "repro.util.rng.SeededRng",
                )
            )
        elif resolved == "random.Random" and not node.args and not node.keywords:
            findings.append(
                ctx.finding(
                    node,
                    "DET103",
                    "random.Random() without a seed — pass an explicit seed "
                    "or use repro.util.rng.SeededRng",
                )
            )
    return findings


def _setish_locals(scope: ast.AST) -> set[str]:
    """Names in ``scope`` assigned exactly once, from a set expression."""
    assigned: dict[str, list[ast.expr]] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(node.value)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            node.target, ast.Name
        ):
            # Mark multiply-assigned so single-assignment logic drops it.
            assigned.setdefault(node.target.id, []).extend(
                [node.target, node.target]
            )
        elif isinstance(node, (ast.For, ast.comprehension)):
            tgt = node.target
            for name in ast.walk(tgt):
                if isinstance(name, ast.Name):
                    assigned.setdefault(name.id, []).extend([name, name])
    known: set[str] = set()
    # Two passes so ``s = set(...); t = s | other`` resolves.
    for _ in range(2):
        for name, values in assigned.items():
            if len(values) == 1 and _is_setish(values[0], known):
                known.add(name)
    return known


def _is_setish(node: ast.expr, known: set[str]) -> bool:
    """Does ``node`` evaluate to a set/frozenset (iteration order unstable)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left, known) or _is_setish(node.right, known)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_setish(node.func.value, known)
    return False


@rule(
    "DET104",
    "unordered-iteration",
    "iteration over a set feeds order-sensitive code",
)
def det104_unordered_iteration(ctx: LintContext) -> list[Finding]:
    findings = []
    scopes = [ctx.tree] + [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    flagged: set[int] = set()  # id() of expr nodes already reported

    def flag(expr: ast.expr, where: str) -> None:
        if id(expr) in flagged:
            return
        flagged.add(id(expr))
        findings.append(
            ctx.finding(
                expr,
                "DET104",
                f"iterating a set in {where} — iteration order is not part "
                "of the determinism contract; wrap in sorted()",
            )
        )

    for scope in scopes:
        known = _setish_locals(scope)
        for node in ast.walk(scope):
            # Don't rescan nested functions from the module pass; they get
            # their own (more precise) local table.
            if scope is ctx.tree and ctx.enclosing_function(node) is not None:
                continue
            if isinstance(node, ast.For) and _is_setish(node.iter, known):
                flag(node.iter, "a for loop")
            elif isinstance(node, ast.comprehension) and _is_setish(
                node.iter, known
            ):
                flag(node.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in ("list", "tuple", "iter", "enumerate")
                    and node.args
                    and _is_setish(node.args[0], known)
                ):
                    flag(node.args[0], f"{fn.id}()")
                elif (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "join"
                    and node.args
                    and _is_setish(node.args[0], known)
                ):
                    flag(node.args[0], "str.join()")
    return findings


def _lambda_calls(node: ast.Lambda, names: tuple[str, ...]) -> bool:
    return any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Name)
        and n.func.id in names
        for n in ast.walk(node.body)
    )


@rule(
    "DET105",
    "identity-keyed-ordering",
    "id()/hash() used as a sort key",
)
def det105_identity_ordering(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        is_order_call = (
            isinstance(fn, ast.Name) and fn.id in ("sorted", "min", "max")
        ) or (isinstance(fn, ast.Attribute) and fn.attr == "sort")
        if not is_order_call:
            continue
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            bad = (
                isinstance(kw.value, ast.Name) and kw.value.id in ("id", "hash")
            ) or (
                isinstance(kw.value, ast.Lambda)
                and _lambda_calls(kw.value, ("id", "hash"))
            )
            if bad:
                findings.append(
                    ctx.finding(
                        node,
                        "DET105",
                        "ordering keyed on id()/hash() — interpreter-specific "
                        "and PYTHONHASHSEED-dependent; key on a stable field",
                    )
                )
    return findings


@rule(
    "DET106",
    "env-read",
    "environment-variable read outside the CLI/config boundary",
)
def det106_env_read(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.env_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in ("os.getenv", "os.putenv", "os.unsetenv"):
                findings.append(
                    ctx.finding(
                        node,
                        "DET106",
                        f"{resolved}() outside the CLI/config layer — route "
                        "through repro.util.wallclock.getenv",
                    )
                )
        elif isinstance(node, ast.Attribute):
            resolved = ctx.resolve(node)
            if resolved in ("os.environ", "os.environb"):
                findings.append(
                    ctx.finding(
                        node,
                        "DET106",
                        f"{resolved} access outside the CLI/config layer — "
                        "route through repro.util.wallclock.getenv",
                    )
                )
    return findings


@rule(
    "DET107",
    "adversary-own-rng",
    "wire-adversary module owning randomness instead of receiving it",
)
def det107_adversary_rng(ctx: LintContext) -> list[Finding]:
    """Adversary modules must stay RNG-free: every perturbation decision
    has to come from the per-(layer, node) injector stream the FaultPlan
    hands in, or two runs with the same seed diverge the moment the
    adversary is armed.  Flags ``import random``, any ``random.*`` use,
    and ``SeededRng(...)`` construction inside
    ``config.adversary_modules``."""
    if ctx.relpath not in ctx.config.adversary_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    findings.append(
                        ctx.finding(
                            node,
                            "DET107",
                            "adversary module imports random — decisions "
                            "must come from the FaultPlan injector stream",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = (node.module or "").split(".")[0]
            if mod == "random" or any(
                alias.name == "SeededRng" for alias in node.names
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "DET107",
                        "adversary module imports its own RNG — decisions "
                        "must come from the FaultPlan injector stream",
                    )
                )
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is not None and (
                resolved.startswith("random.")
                or resolved.split(".")[-1] == "SeededRng"
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "DET107",
                        f"{resolved}() inside an adversary module — use the "
                        "injector stream handed in by FaultPlan.attach_msgr",
                    )
                )
    return findings


# --------------------------------------------------------------- SIM2xx rules

#: Calls that block on the real world: inside the event loop they stall
#: every simulated component at once and couple results to host timing.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "select.select",
    }
)

_BLOCKING_MODULES = frozenset(
    {
        "socket",
        "subprocess",
        "threading",
        "multiprocessing",
        "asyncio",
        "selectors",
        "requests",
        "urllib",
        "http",
        "ssl",
        "signal",
    }
)


@rule(
    "SIM201",
    "real-blocking-call",
    "real blocking primitive inside a simulated layer",
)
def sim201_blocking(ctx: LintContext) -> list[Finding]:
    if not ctx.config.in_sim_layer(ctx.relpath):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if (
                resolved in _BLOCKING_CALLS
                or resolved.split(".")[0] in _BLOCKING_MODULES
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "SIM201",
                        f"real blocking call {resolved}() in a simulated "
                        "layer — only env.timeout()/env.now may pass time",
                    )
                )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            mods = (
                [a.name for a in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for mod in mods:
                if mod.split(".")[0] in _BLOCKING_MODULES:
                    findings.append(
                        ctx.finding(
                            node,
                            "SIM201",
                            f"imports real-concurrency module {mod} in a "
                            "simulated layer",
                        )
                    )
    return findings


def _walk_local(node: ast.AST):
    """Walk ``node`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            stack.extend(ast.iter_child_nodes(child))


def _func_yields(fn: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_local(fn)
    )


def _is_release_call(node: ast.AST, name: str) -> bool:
    """``pool.finish(req)`` / ``pool.release(req)`` / ``req.release()``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    attr = node.func.attr
    if attr in ("finish", "release", "cancel"):
        if any(
            isinstance(arg, ast.Name) and arg.id == name for arg in node.args
        ):
            return True
        if (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
            and not node.args
        ):
            return True
    return False


@rule(
    "SIM202",
    "resource-leak",
    "Resource.request() whose release is not on all exception paths",
)
def sim202_resource_leak(ctx: LintContext) -> list[Finding]:
    if not ctx.config.in_sim_layer(ctx.relpath):
        return []
    findings = []
    functions = [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for fn in functions:
        for stmt in _walk_local(fn):
            # ``with pool.request() as req:`` handles its own cleanup.
            if isinstance(stmt, ast.Expr) and _is_request_call(stmt.value):
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        "request() result discarded — the grant can never "
                        "be released",
                    )
                )
                continue
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _is_request_call(stmt.value)
            ):
                continue
            name = stmt.targets[0].id
            # ``self._req = req`` hands ownership to the instance: a
            # flattened state machine acquires in one state and releases
            # in a later one (or on interrupt), so the function-local
            # leak heuristic does not apply.  The machine's release
            # discipline is pinned by the digest goldens instead.
            escapes = any(
                isinstance(n, ast.Assign)
                and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in n.targets
                )
                and isinstance(n.value, ast.Name)
                and n.value.id == name
                for n in _walk_local(fn)
            )
            if escapes:
                continue
            releases = [
                n for n in _walk_local(fn) if _is_release_call(n, name)
            ]
            if not releases:
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        f"request() assigned to '{name}' is never released "
                        "in this function — use try/finally or a with block",
                    )
                )
                continue
            # A release is exception-safe when it sits in a finally suite.
            # For simulated processes (generators), any yield between the
            # request and a bare release is an interrupt window: the
            # release must be in a finally to run on Interrupt.
            safe = any(ctx.in_finally(r) for r in releases)
            if not safe and _func_yields(fn):
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        f"release of '{name}' is not in a finally suite — "
                        "an Interrupt raised at a yield leaks the grant",
                    )
                )
    return findings


def _is_request_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "request"
    )


# -------------------------------------------------------------- PERF3xx rules

#: Base-class names (last dotted segment) that legitimately preclude or
#: excuse ``__slots__``.
_SLOTS_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "Protocol",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "NamedTuple",
        "TypedDict",
        "ABC",
        "type",
    }
)

_SLOTS_EXEMPT_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")


def _slots_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in _SLOTS_EXEMPT_BASES or name.endswith(_SLOTS_EXEMPT_SUFFIXES):
            return True
    for kw in node.keywords:  # class C(metaclass=..., ...)
        if kw.arg == "metaclass":
            return True
    return False


@rule(
    "PERF301",
    "missing-slots",
    "hot-module class lacks __slots__",
)
def perf301_missing_slots(ctx: LintContext) -> list[Finding]:
    if not ctx.config.is_hot(ctx.relpath):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _slots_exempt(node):
            continue
        has_slots = any(
            (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
            )
            or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            )
            for stmt in node.body
        )
        if has_slots:
            continue
        is_dc_slotted = dataclass_slots_decorator(node)
        if is_dc_slotted:
            continue
        hint = (
            "pass slots=True to @dataclass"
            if is_dc_slotted is False
            else "declare __slots__"
        )
        findings.append(
            ctx.finding(
                node,
                "PERF301",
                f"class {node.name} in a hot module has no __slots__ — "
                f"instances carry a __dict__ on the allocation path; {hint}",
            )
        )
    return findings


@rule(
    "PERF302",
    "slot-violation",
    "slotted class assigns an attribute not declared in __slots__",
)
def perf302_slot_violation(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ctx.project.lookup(f"{ctx.module}.{node.name}")
        if info is None or info.slots is None or info.opaque:
            continue
        allowed = ctx.project.resolve_slots(info)
        if allowed is None:
            continue  # some base unslotted/unresolvable: __dict__ possible
        # Class-level names (methods, class attrs) are not instance slots
        # but are readable; only *assignments* through self must hit slots
        # or descriptors.
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            for sub in _walk_local(method):
                target: Optional[ast.Attribute] = None
                if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        sub.targets
                        if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for t in targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == self_name
                        ):
                            target = t
                            break
                if target is None:
                    continue
                if target.attr not in allowed:
                    findings.append(
                        ctx.finding(
                            target,
                            "PERF302",
                            f"assignment to self.{target.attr} not declared "
                            f"in __slots__ of {node.name} (or its bases) — "
                            "AttributeError at runtime",
                        )
                    )
    return findings


def _is_drain_loop(node: ast.While) -> bool:
    """A synchronous event-drain loop: ``while queue:`` /
    ``while self._queue:`` / ``while True:`` with no sim waits inside.

    Loops that ``yield`` run in simulated time — one iteration per
    grant or timeout — so a per-iteration allocation there is ordinary
    model code, not dispatch overhead.  Loops that never yield drain
    synchronously (the engine's run/step loops, generator drivers,
    resource trigger cascades): every allocation inside them lands on
    the per-event path.
    """
    test = node.test
    if isinstance(test, ast.Constant):
        if test.value is not True and test.value != 1:
            return False
    elif not isinstance(test, (ast.Name, ast.Attribute)):
        return False
    return not any(
        isinstance(n, (ast.Yield, ast.YieldFrom, ast.Await))
        for n in _walk_local(node)
    )


#: Callables whose *call* mints a new callable object per iteration.
_CLOSURE_FACTORIES = frozenset({"functools.partial", "partial"})


@rule(
    "PERF303",
    "hot-loop-allocation",
    "per-event allocation inside a synchronous drain loop in a hot module",
)
def perf303_hot_loop_allocation(ctx: LintContext) -> list[Finding]:
    """Flag per-iteration allocations inside hot drain loops.

    The engine's throughput is bounded by what each pop of the event
    heap allocates: a closure, a bound method, or a fresh container
    minted per event turns into hundreds of thousands of allocations
    per run (DESIGN.md §13).  The discipline — hoist loop invariants,
    prebind callbacks once, reuse containers — is easy to erode one
    convenient lambda at a time, so it is pinned here.

    Flags, inside ``while <name>:`` / ``while True:`` loops that never
    yield, in hot-tagged files:

    * ``lambda`` / nested ``def`` — a closure minted per iteration;
    * ``functools.partial(...)`` — same, via factory;
    * list/set/dict displays and comprehensions — a container per
      iteration (``list(xs)``-style snapshot *calls* are allowed: a
      mutation-safe copy is semantics, not convenience);
    * ``xs.append(self.on_event)`` where ``on_event`` is a *method* of
      the enclosing class — a bound method minted per iteration;
      prebind it once (``self._cb = self.on_event`` at init) and
      append the prebound slot instead.  Appending a data attribute or
      an already-prebound reference is clean.
    """
    if not ctx.config.is_hot(ctx.relpath):
        return []
    findings = []
    # Map each drain loop to (self_name, method names of the enclosing
    # class) so the bound-method check can tell ``self.method`` apart
    # from ``self.data_slot``.
    loop_self: dict[ast.While, tuple[str, frozenset[str]]] = {}
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = frozenset(
            m.name
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            for sub in ast.walk(method):
                if isinstance(sub, ast.While):
                    loop_self[sub] = (self_name, methods)
    flagged: set[int] = set()
    for loop in ast.walk(ctx.tree):
        if not isinstance(loop, ast.While) or not _is_drain_loop(loop):
            continue
        self_name, methods = loop_self.get(loop, ("", frozenset()))
        _scan_allocations(
            ctx, loop, "a hot drain loop", self_name, methods,
            flagged, findings,
        )
    # The PR 9 flattened machines are the hottest code in the tree but
    # their "loop" is the event heap itself: each state callback runs
    # once per event with no enclosing ``while``.  Apply the same
    # allocation discipline to every method body of a Machine subclass.
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        if not _is_machine_subclass(ctx, cls):
            continue
        methods = frozenset(
            m.name
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("__"):
                continue  # __init__ etc. run once per machine, not per event
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            _scan_allocations(
                ctx, method,
                f"Machine callback {cls.name}.{method.name}",
                self_name, methods, flagged, findings,
            )
    findings.sort(key=lambda f: (f.line, f.col))
    return findings


def _scan_allocations(
    ctx: LintContext,
    scope: ast.AST,
    where: str,
    self_name: str,
    methods: frozenset[str],
    flagged: set[int],
    findings: list[Finding],
) -> None:
    """Append per-event-allocation findings for everything in ``scope``."""
    def flag(node: ast.AST, message: str) -> None:
        if id(node) in flagged:
            return
        flagged.add(id(node))
        findings.append(ctx.finding(node, "PERF303", message))

    for sub in _walk_local(scope):
        if isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            flag(
                sub,
                f"closure created inside {where} — one function object "
                "per event; hoist it out or prebind it",
            )
        elif isinstance(
            sub,
            (
                ast.List,
                ast.Set,
                ast.Dict,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
            ),
        ):
            flag(
                sub,
                f"container literal inside {where} — one allocation per "
                "event; hoist or reuse it",
            )
        elif isinstance(sub, ast.Call):
            dotted = ctx.resolve(sub.func)
            if dotted in _CLOSURE_FACTORIES:
                flag(
                    sub,
                    f"partial() inside {where} — one callable per event; "
                    "prebind it once",
                )
            elif (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "append"
                and any(
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == self_name
                    and arg.attr in methods
                    for arg in sub.args
                )
            ):
                flag(
                    sub,
                    f"bound method minted per event (append(self.method) "
                    f"inside {where}) — prebind the callback once and "
                    "append the prebound reference",
                )


def _is_machine_subclass(ctx: LintContext, cls: ast.ClassDef) -> bool:
    """Does ``cls`` *properly* extend ``repro.sim.machine.Machine``?

    The base class itself is engine infrastructure — its methods are the
    park/charge plumbing with their own allocation discipline (free-list
    pooling), not flattened per-event state callbacks — so it is not
    subject to the callback-body scan.
    """
    own_qual = f"{ctx.module}.{cls.name}"
    if own_qual == "repro.sim.machine.Machine":
        return False
    seen: set[str] = set()
    stack = [own_qual]
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        seen.add(qual)
        if qual == "repro.sim.machine.Machine":
            return True
        info = ctx.project.lookup(qual)
        if info is not None:
            stack.extend(info.bases)
    return False


# --------------------------------------------------------------- OWN4xx rules

def _chain_root(expr: ast.expr) -> Optional[ast.expr]:
    """Base of an attribute/call/subscript chain (``a`` in ``a.b().c``)."""
    cur = expr
    while True:
        if isinstance(cur, ast.Attribute):
            cur = cur.value
        elif isinstance(cur, ast.Call):
            cur = cur.func
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            return cur


def _contains_accessor(expr: ast.expr) -> Optional[ast.Call]:
    """First fabric-accessor call anywhere inside ``expr``."""
    for node in ast.walk(expr):
        if is_fabric_accessor_call(node):
            return node
    return None


def _peer_handles(
    ctx: LintContext,
    graph,
    qual: str,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, Optional[str]]:
    """Local names bound to fabric-resolved peer objects → peer class.

    A handle is a variable assigned from a fabric accessor call
    (``directory.lookup(addr)``, ``network.nic(dst)``) or derived from
    another handle (``conn = sender._connections.get(...)``).  The
    derivation pass runs twice so one level of chaining resolves.
    """
    view = graph.view(ctx.module)
    params = view.param_types(method) if view is not None else {}
    own = graph.classes.get(qual)
    handles: dict[str, Optional[str]] = {}
    for _ in range(2):
        for sub in _walk_local(method):
            if not (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
            ):
                continue
            name = sub.targets[0].id
            value = sub.value
            accessor = _contains_accessor(value)
            if accessor is not None and view is not None:
                handles[name] = graph.accessor_return_class(
                    accessor, view, params, own
                )
                continue
            root = _chain_root(value)
            if (
                isinstance(root, ast.Name)
                and root.id in handles
                and value is not root
            ):
                handles.setdefault(name, None)
    return handles


def _iter_node_methods(ctx: LintContext):
    """(class node, qualname, method) triples for this file's classes."""
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        qual = f"{ctx.module}.{cls.name}"
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, qual, method


@rule(
    "OWN401",
    "cross-node-reference",
    "node-scoped object holding/mutating another node's object off the "
    "declared fabric edges",
)
def own401_cross_node_reference(ctx: LintContext) -> list[Finding]:
    """The "peer OSD reached without a wire" bug, caught three ways.

    (1) Storing a fabric-resolved peer reference on ``self`` keeps a
    direct pointer across the future shard boundary: only attributes
    declared in :data:`repro.lint.ownership.EDGE_ATTRS` may do it.
    (2) Mutating an attribute *through* a peer handle bypasses the wire
    entirely.  (3) In the cluster builder, a node-scoped instance
    constructed once must not fan out into several per-node
    constructors (constructor-argument flow analysis) — that aliasing
    is exactly what makes a shard cut unsound.
    """
    if not is_node_module(ctx.module):
        return []
    graph = ownership_graph(ctx.project, ctx.config)
    findings = list(_builder_flow_findings(ctx, graph))
    for _cls, qual, method in _iter_node_methods(ctx):
        own = graph.classes.get(qual)
        if own is not None and own.role is not Role.NODE:
            continue
        handles = _peer_handles(ctx, graph, qual, method)
        self_name = method.args.args[0].arg if method.args.args else ""
        for sub in _walk_local(method):
            # (1) self.<attr> = <fabric-resolved peer>
            if isinstance(sub, ast.Assign):
                value = sub.value
                is_peer_value = _contains_accessor(value) is not None or (
                    isinstance(value, ast.Name) and value.id in handles
                )
                if not is_peer_value:
                    continue
                for t in sub.targets:
                    if not (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == self_name
                    ):
                        continue
                    if (qual, t.attr) in EDGE_ATTRS:
                        continue
                    findings.append(
                        ctx.finding(
                            t,
                            "OWN401",
                            f"self.{t.attr} stores a fabric-resolved peer "
                            "reference — a direct cross-node pointer; "
                            "declare it in ownership.EDGE_ATTRS or "
                            "resolve the peer per use",
                        )
                    )
            # (2) <handle>.<attr> = ... / augmented mutation
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                root = _chain_root(sub.value)
                via_handle = (
                    isinstance(root, ast.Name) and root.id in handles
                ) or _contains_accessor(sub.value) is not None
                if via_handle:
                    findings.append(
                        ctx.finding(
                            sub,
                            "OWN401",
                            f"mutates .{sub.attr} on another node's object "
                            "without crossing the wire — send a message "
                            "or declare the edge in the ownership "
                            "manifest",
                        )
                    )
    return findings


def _builder_flow_findings(ctx: LintContext, graph) -> list[Finding]:
    """Constructor-argument flow through the cluster builder.

    Tags every local constructed in a builder function as per-node
    (built inside a ``for`` loop) or shared (built outside), then flags
    a node-scoped shared instance — or another iteration's instance —
    flowing into a node-scoped constructor inside a loop.
    """
    if not ctx.module.startswith("repro.cluster"):
        return []
    view = graph.view(ctx.module)
    if view is None:
        return []
    findings: list[Finding] = []

    def class_of_call(call: ast.Call) -> Optional[str]:
        dotted = view.resolve(call.func)
        if dotted is not None and dotted.rpartition(".")[2][:1].isupper():
            return dotted
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in view.func_defs
        ):
            helper = view.func_defs[call.func.id]
            if helper.returns is not None:
                return view.resolve_annotation(helper.returns)
        return None

    def role_of_class(dotted: Optional[str]) -> Optional[Role]:
        if dotted is None:
            return None
        return role_of(dotted, ctx.project.lookup(dotted))[0]

    for fn in ctx.tree.body:
        if not isinstance(fn, ast.FunctionDef):
            continue
        tags: dict[str, tuple[str, object]] = {}

        def check_calls(stmt: ast.stmt, loop: Optional[int]) -> None:
            if loop is None:
                return
            for call in ast.walk(stmt):
                if not isinstance(call, ast.Call):
                    continue
                if role_of_class(class_of_call(call)) is not Role.NODE:
                    continue
                args = list(call.args) + [kw.value for kw in call.keywords]
                for arg in args:
                    if not (isinstance(arg, ast.Name) and arg.id in tags):
                        continue
                    kind, detail = tags[arg.id]
                    if kind == "outer" and detail is Role.NODE:
                        findings.append(
                            ctx.finding(
                                call,
                                "OWN401",
                                f"node-scoped instance '{arg.id}' built "
                                "once outside the loop flows into a "
                                "per-node constructor — every node would "
                                "alias the same object across the shard "
                                "boundary",
                            )
                        )
                    elif kind == "pernode" and detail != loop:
                        findings.append(
                            ctx.finding(
                                call,
                                "OWN401",
                                f"'{arg.id}' belongs to a different "
                                "build loop's node — cross-node "
                                "constructor aliasing",
                            )
                        )

        def record(stmt: ast.stmt, loop: Optional[int]) -> None:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                return
            role = role_of_class(class_of_call(stmt.value))
            if role is None:
                return
            name = stmt.targets[0].id
            if loop is not None and role is Role.NODE:
                tags[name] = ("pernode", loop)
            else:
                tags[name] = ("outer", role)

        def visit(stmts: list[ast.stmt], loop: Optional[int]) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if isinstance(stmt, ast.For):
                    visit(stmt.body, id(stmt))
                    visit(stmt.orelse, loop)
                    continue
                check_calls(stmt, loop)
                record(stmt, loop)
                for suite in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, suite, None)
                    if inner:
                        visit(inner, loop)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, loop)

        visit(fn.body, None)
    return findings


#: Module-level mutable container factories (shard-unsafe singletons).
_MUTABLE_FACTORIES = frozenset(
    {
        "dict", "list", "set", "bytearray", "deque", "defaultdict",
        "OrderedDict", "Counter",
    }
)


@rule(
    "OWN402",
    "module-level-mutable-state",
    "module-level mutable container reachable from node-scoped code",
)
def own402_module_mutable_state(ctx: LintContext) -> list[Finding]:
    """A global dict/list/cache in a node-scoped module is a singleton
    every shard would share: writes from two shards race the moment the
    engine is partitioned, and even today it lets state leak between
    nodes that never crossed the wire.  Write-once registries must be
    declared in :data:`repro.lint.ownership.OWN402_ALLOWED`."""
    if not is_node_module(ctx.module):
        return []
    findings = []
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ) or (
            isinstance(value, ast.Call)
            and (
                (isinstance(value.func, ast.Name)
                 and value.func.id in _MUTABLE_FACTORIES)
                or (isinstance(value.func, ast.Attribute)
                    and value.func.attr in _MUTABLE_FACTORIES)
            )
        )
        if not mutable:
            continue
        for t in targets:
            if not isinstance(t, ast.Name) or t.id == "__all__":
                continue
            if (ctx.module, t.id) in OWN402_ALLOWED:
                continue
            findings.append(
                ctx.finding(
                    stmt,
                    "OWN402",
                    f"module-level mutable container '{t.id}' in a "
                    "node-scoped module — a cross-shard singleton; move "
                    "it onto a node-owned object or declare it in "
                    "ownership.OWN402_ALLOWED with a justification",
                )
            )
    return findings


@rule(
    "OWN403",
    "cross-node-read",
    "handler code reading another node's non-frozen attributes",
)
def own403_cross_node_read(ctx: LintContext) -> list[Finding]:
    """Reads through a fabric-resolved peer handle see state the wire
    never carried: under sharding the peer lives in another process and
    the read returns stale (or unserializable) data.  The allowed
    surface is the declared wire interface
    (:data:`repro.lint.ownership.EDGE_INTERFACE`); reads of frozen
    peer types are safe (immutable after construction)."""
    if not is_node_module(ctx.module):
        return []
    graph = ownership_graph(ctx.project, ctx.config)
    findings = []
    for _cls, qual, method in _iter_node_methods(ctx):
        own = graph.classes.get(qual)
        if own is not None and own.role is not Role.NODE:
            continue
        handles = _peer_handles(ctx, graph, qual, method)
        for sub in _walk_local(method):
            if not (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
            ):
                continue
            peer_cls: Optional[str] = None
            if isinstance(sub.value, ast.Name) and sub.value.id in handles:
                peer_cls = handles[sub.value.id]
            elif is_fabric_accessor_call(sub.value):
                view = graph.view(ctx.module)
                if view is not None:
                    peer_cls = graph.accessor_return_class(
                        sub.value, view, view.param_types(method),
                        own,
                    )
            else:
                continue
            if sub.attr in EDGE_INTERFACE:
                continue
            info = (
                ctx.project.lookup(peer_cls) if peer_cls is not None else None
            )
            if info is not None and info.frozen:
                continue
            findings.append(
                ctx.finding(
                    sub,
                    "OWN403",
                    f"reads .{sub.attr} on a fabric-resolved peer — not "
                    "part of the declared wire interface; request it "
                    "over the wire or add it to ownership.EDGE_INTERFACE "
                    "with a justification",
                )
            )
    return findings
