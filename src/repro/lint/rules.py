"""The rule catalogue.

Three families, each guarding one of the invariants the reproduction is
load-bearing on (see DESIGN.md §9):

* ``DET1xx`` — determinism: no wall-clock, no ambient entropy, no
  unordered-collection iteration feeding order-sensitive code, no
  identity-keyed ordering, no env reads outside the config boundary.
* ``SIM2xx`` — sim-safety: no real blocking calls inside simulated
  layers; every ``Resource.request()`` must be released on all
  exception paths (the simulated-concurrency analogue of a lock-leak
  checker).
* ``PERF3xx`` — perf-invariants: hot-module classes declare
  ``__slots__``; slotted classes never assign undeclared attributes
  (which would raise ``AttributeError`` at runtime); synchronous
  drain loops in hot modules allocate nothing per event.

Rules are plain functions registered by code; each takes a
:class:`~repro.lint.engine.LintContext` and returns findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Finding, LintContext, dataclass_slots_decorator

__all__ = ["Rule", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    description: str
    check: Callable[[LintContext], list[Finding]]


RULES: dict[str, Rule] = {}


def rule(code: str, name: str, description: str):
    def register(fn: Callable[[LintContext], list[Finding]]):
        RULES[code] = Rule(code=code, name=name, description=description, check=fn)
        return fn

    return register


# --------------------------------------------------------------- DET1xx rules

#: Host-clock reads.  Calling any of these inside the tree couples model
#: output to the machine it ran on.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@rule(
    "DET101",
    "wall-clock-read",
    "host clock read outside the injectable wallclock accessor",
)
def det101_wallclock(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.wallclock_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in _WALLCLOCK_CALLS:
                findings.append(
                    ctx.finding(
                        node,
                        "DET101",
                        f"wall-clock read {resolved}() — route through "
                        "repro.util.wallclock.perf_counter",
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if f"time.{alias.name}" in _WALLCLOCK_CALLS:
                    findings.append(
                        ctx.finding(
                            node,
                            "DET101",
                            f"imports wall-clock primitive time.{alias.name} — "
                            "route through repro.util.wallclock",
                        )
                    )
    return findings


_ENTROPY_CALLS = frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom", "random.SystemRandom"}
)


@rule(
    "DET102",
    "ambient-entropy",
    "OS/hardware entropy source (uuid4, os.urandom, secrets)",
)
def det102_entropy(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved in _ENTROPY_CALLS or resolved.split(".")[0] == "secrets":
            findings.append(
                ctx.finding(
                    node,
                    "DET102",
                    f"nondeterministic entropy source {resolved}() — derive "
                    "ids from repro.util.rng.SeededRng instead",
                )
            )
    return findings


#: Module-level random functions share one hidden global stream; any new
#: caller reorders every other caller's draws.
_GLOBAL_RANDOM = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.gammavariate",
        "random.lognormvariate",
        "random.paretovariate",
        "random.weibullvariate",
        "random.triangular",
        "random.vonmisesvariate",
        "random.getrandbits",
        "random.randbytes",
        "random.seed",
    }
)


@rule(
    "DET103",
    "global-random",
    "global/unseeded random outside the seeded-stream factory",
)
def det103_global_random(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.rng_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved in _GLOBAL_RANDOM:
            findings.append(
                ctx.finding(
                    node,
                    "DET103",
                    f"global random stream {resolved}() — use "
                    "repro.util.rng.SeededRng",
                )
            )
        elif resolved == "random.Random" and not node.args and not node.keywords:
            findings.append(
                ctx.finding(
                    node,
                    "DET103",
                    "random.Random() without a seed — pass an explicit seed "
                    "or use repro.util.rng.SeededRng",
                )
            )
    return findings


def _setish_locals(scope: ast.AST) -> set[str]:
    """Names in ``scope`` assigned exactly once, from a set expression."""
    assigned: dict[str, list[ast.expr]] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(node.value)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            node.target, ast.Name
        ):
            # Mark multiply-assigned so single-assignment logic drops it.
            assigned.setdefault(node.target.id, []).extend(
                [node.target, node.target]
            )
        elif isinstance(node, (ast.For, ast.comprehension)):
            tgt = node.target
            for name in ast.walk(tgt):
                if isinstance(name, ast.Name):
                    assigned.setdefault(name.id, []).extend([name, name])
    known: set[str] = set()
    # Two passes so ``s = set(...); t = s | other`` resolves.
    for _ in range(2):
        for name, values in assigned.items():
            if len(values) == 1 and _is_setish(values[0], known):
                known.add(name)
    return known


def _is_setish(node: ast.expr, known: set[str]) -> bool:
    """Does ``node`` evaluate to a set/frozenset (iteration order unstable)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left, known) or _is_setish(node.right, known)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_setish(node.func.value, known)
    return False


@rule(
    "DET104",
    "unordered-iteration",
    "iteration over a set feeds order-sensitive code",
)
def det104_unordered_iteration(ctx: LintContext) -> list[Finding]:
    findings = []
    scopes = [ctx.tree] + [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    flagged: set[int] = set()  # id() of expr nodes already reported

    def flag(expr: ast.expr, where: str) -> None:
        if id(expr) in flagged:
            return
        flagged.add(id(expr))
        findings.append(
            ctx.finding(
                expr,
                "DET104",
                f"iterating a set in {where} — iteration order is not part "
                "of the determinism contract; wrap in sorted()",
            )
        )

    for scope in scopes:
        known = _setish_locals(scope)
        for node in ast.walk(scope):
            # Don't rescan nested functions from the module pass; they get
            # their own (more precise) local table.
            if scope is ctx.tree and ctx.enclosing_function(node) is not None:
                continue
            if isinstance(node, ast.For) and _is_setish(node.iter, known):
                flag(node.iter, "a for loop")
            elif isinstance(node, ast.comprehension) and _is_setish(
                node.iter, known
            ):
                flag(node.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in ("list", "tuple", "iter", "enumerate")
                    and node.args
                    and _is_setish(node.args[0], known)
                ):
                    flag(node.args[0], f"{fn.id}()")
                elif (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "join"
                    and node.args
                    and _is_setish(node.args[0], known)
                ):
                    flag(node.args[0], "str.join()")
    return findings


def _lambda_calls(node: ast.Lambda, names: tuple[str, ...]) -> bool:
    return any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Name)
        and n.func.id in names
        for n in ast.walk(node.body)
    )


@rule(
    "DET105",
    "identity-keyed-ordering",
    "id()/hash() used as a sort key",
)
def det105_identity_ordering(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        is_order_call = (
            isinstance(fn, ast.Name) and fn.id in ("sorted", "min", "max")
        ) or (isinstance(fn, ast.Attribute) and fn.attr == "sort")
        if not is_order_call:
            continue
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            bad = (
                isinstance(kw.value, ast.Name) and kw.value.id in ("id", "hash")
            ) or (
                isinstance(kw.value, ast.Lambda)
                and _lambda_calls(kw.value, ("id", "hash"))
            )
            if bad:
                findings.append(
                    ctx.finding(
                        node,
                        "DET105",
                        "ordering keyed on id()/hash() — interpreter-specific "
                        "and PYTHONHASHSEED-dependent; key on a stable field",
                    )
                )
    return findings


@rule(
    "DET106",
    "env-read",
    "environment-variable read outside the CLI/config boundary",
)
def det106_env_read(ctx: LintContext) -> list[Finding]:
    if ctx.relpath in ctx.config.env_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in ("os.getenv", "os.putenv", "os.unsetenv"):
                findings.append(
                    ctx.finding(
                        node,
                        "DET106",
                        f"{resolved}() outside the CLI/config layer — route "
                        "through repro.util.wallclock.getenv",
                    )
                )
        elif isinstance(node, ast.Attribute):
            resolved = ctx.resolve(node)
            if resolved in ("os.environ", "os.environb"):
                findings.append(
                    ctx.finding(
                        node,
                        "DET106",
                        f"{resolved} access outside the CLI/config layer — "
                        "route through repro.util.wallclock.getenv",
                    )
                )
    return findings


@rule(
    "DET107",
    "adversary-own-rng",
    "wire-adversary module owning randomness instead of receiving it",
)
def det107_adversary_rng(ctx: LintContext) -> list[Finding]:
    """Adversary modules must stay RNG-free: every perturbation decision
    has to come from the per-(layer, node) injector stream the FaultPlan
    hands in, or two runs with the same seed diverge the moment the
    adversary is armed.  Flags ``import random``, any ``random.*`` use,
    and ``SeededRng(...)`` construction inside
    ``config.adversary_modules``."""
    if ctx.relpath not in ctx.config.adversary_modules:
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    findings.append(
                        ctx.finding(
                            node,
                            "DET107",
                            "adversary module imports random — decisions "
                            "must come from the FaultPlan injector stream",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = (node.module or "").split(".")[0]
            if mod == "random" or any(
                alias.name == "SeededRng" for alias in node.names
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "DET107",
                        "adversary module imports its own RNG — decisions "
                        "must come from the FaultPlan injector stream",
                    )
                )
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is not None and (
                resolved.startswith("random.")
                or resolved.split(".")[-1] == "SeededRng"
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "DET107",
                        f"{resolved}() inside an adversary module — use the "
                        "injector stream handed in by FaultPlan.attach_msgr",
                    )
                )
    return findings


# --------------------------------------------------------------- SIM2xx rules

#: Calls that block on the real world: inside the event loop they stall
#: every simulated component at once and couple results to host timing.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "select.select",
    }
)

_BLOCKING_MODULES = frozenset(
    {
        "socket",
        "subprocess",
        "threading",
        "multiprocessing",
        "asyncio",
        "selectors",
        "requests",
        "urllib",
        "http",
        "ssl",
        "signal",
    }
)


@rule(
    "SIM201",
    "real-blocking-call",
    "real blocking primitive inside a simulated layer",
)
def sim201_blocking(ctx: LintContext) -> list[Finding]:
    if not ctx.config.in_sim_layer(ctx.relpath):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if (
                resolved in _BLOCKING_CALLS
                or resolved.split(".")[0] in _BLOCKING_MODULES
            ):
                findings.append(
                    ctx.finding(
                        node,
                        "SIM201",
                        f"real blocking call {resolved}() in a simulated "
                        "layer — only env.timeout()/env.now may pass time",
                    )
                )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            mods = (
                [a.name for a in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for mod in mods:
                if mod.split(".")[0] in _BLOCKING_MODULES:
                    findings.append(
                        ctx.finding(
                            node,
                            "SIM201",
                            f"imports real-concurrency module {mod} in a "
                            "simulated layer",
                        )
                    )
    return findings


def _walk_local(node: ast.AST):
    """Walk ``node`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            stack.extend(ast.iter_child_nodes(child))


def _func_yields(fn: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_local(fn)
    )


def _is_release_call(node: ast.AST, name: str) -> bool:
    """``pool.finish(req)`` / ``pool.release(req)`` / ``req.release()``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    attr = node.func.attr
    if attr in ("finish", "release", "cancel"):
        if any(
            isinstance(arg, ast.Name) and arg.id == name for arg in node.args
        ):
            return True
        if (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
            and not node.args
        ):
            return True
    return False


@rule(
    "SIM202",
    "resource-leak",
    "Resource.request() whose release is not on all exception paths",
)
def sim202_resource_leak(ctx: LintContext) -> list[Finding]:
    if not ctx.config.in_sim_layer(ctx.relpath):
        return []
    findings = []
    functions = [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for fn in functions:
        for stmt in _walk_local(fn):
            # ``with pool.request() as req:`` handles its own cleanup.
            if isinstance(stmt, ast.Expr) and _is_request_call(stmt.value):
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        "request() result discarded — the grant can never "
                        "be released",
                    )
                )
                continue
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _is_request_call(stmt.value)
            ):
                continue
            name = stmt.targets[0].id
            # ``self._req = req`` hands ownership to the instance: a
            # flattened state machine acquires in one state and releases
            # in a later one (or on interrupt), so the function-local
            # leak heuristic does not apply.  The machine's release
            # discipline is pinned by the digest goldens instead.
            escapes = any(
                isinstance(n, ast.Assign)
                and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in n.targets
                )
                and isinstance(n.value, ast.Name)
                and n.value.id == name
                for n in _walk_local(fn)
            )
            if escapes:
                continue
            releases = [
                n for n in _walk_local(fn) if _is_release_call(n, name)
            ]
            if not releases:
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        f"request() assigned to '{name}' is never released "
                        "in this function — use try/finally or a with block",
                    )
                )
                continue
            # A release is exception-safe when it sits in a finally suite.
            # For simulated processes (generators), any yield between the
            # request and a bare release is an interrupt window: the
            # release must be in a finally to run on Interrupt.
            safe = any(ctx.in_finally(r) for r in releases)
            if not safe and _func_yields(fn):
                findings.append(
                    ctx.finding(
                        stmt,
                        "SIM202",
                        f"release of '{name}' is not in a finally suite — "
                        "an Interrupt raised at a yield leaks the grant",
                    )
                )
    return findings


def _is_request_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "request"
    )


# -------------------------------------------------------------- PERF3xx rules

#: Base-class names (last dotted segment) that legitimately preclude or
#: excuse ``__slots__``.
_SLOTS_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "Protocol",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "NamedTuple",
        "TypedDict",
        "ABC",
        "type",
    }
)

_SLOTS_EXEMPT_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")


def _slots_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in _SLOTS_EXEMPT_BASES or name.endswith(_SLOTS_EXEMPT_SUFFIXES):
            return True
    for kw in node.keywords:  # class C(metaclass=..., ...)
        if kw.arg == "metaclass":
            return True
    return False


@rule(
    "PERF301",
    "missing-slots",
    "hot-module class lacks __slots__",
)
def perf301_missing_slots(ctx: LintContext) -> list[Finding]:
    if not ctx.config.is_hot(ctx.relpath):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _slots_exempt(node):
            continue
        has_slots = any(
            (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
            )
            or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            )
            for stmt in node.body
        )
        if has_slots:
            continue
        is_dc_slotted = dataclass_slots_decorator(node)
        if is_dc_slotted:
            continue
        hint = (
            "pass slots=True to @dataclass"
            if is_dc_slotted is False
            else "declare __slots__"
        )
        findings.append(
            ctx.finding(
                node,
                "PERF301",
                f"class {node.name} in a hot module has no __slots__ — "
                f"instances carry a __dict__ on the allocation path; {hint}",
            )
        )
    return findings


@rule(
    "PERF302",
    "slot-violation",
    "slotted class assigns an attribute not declared in __slots__",
)
def perf302_slot_violation(ctx: LintContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ctx.project.lookup(f"{ctx.module}.{node.name}")
        if info is None or info.slots is None or info.opaque:
            continue
        allowed = ctx.project.resolve_slots(info)
        if allowed is None:
            continue  # some base unslotted/unresolvable: __dict__ possible
        # Class-level names (methods, class attrs) are not instance slots
        # but are readable; only *assignments* through self must hit slots
        # or descriptors.
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            for sub in _walk_local(method):
                target: Optional[ast.Attribute] = None
                if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        sub.targets
                        if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for t in targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == self_name
                        ):
                            target = t
                            break
                if target is None:
                    continue
                if target.attr not in allowed:
                    findings.append(
                        ctx.finding(
                            target,
                            "PERF302",
                            f"assignment to self.{target.attr} not declared "
                            f"in __slots__ of {node.name} (or its bases) — "
                            "AttributeError at runtime",
                        )
                    )
    return findings


def _is_drain_loop(node: ast.While) -> bool:
    """A synchronous event-drain loop: ``while queue:`` /
    ``while self._queue:`` / ``while True:`` with no sim waits inside.

    Loops that ``yield`` run in simulated time — one iteration per
    grant or timeout — so a per-iteration allocation there is ordinary
    model code, not dispatch overhead.  Loops that never yield drain
    synchronously (the engine's run/step loops, generator drivers,
    resource trigger cascades): every allocation inside them lands on
    the per-event path.
    """
    test = node.test
    if isinstance(test, ast.Constant):
        if test.value is not True and test.value != 1:
            return False
    elif not isinstance(test, (ast.Name, ast.Attribute)):
        return False
    return not any(
        isinstance(n, (ast.Yield, ast.YieldFrom, ast.Await))
        for n in _walk_local(node)
    )


#: Callables whose *call* mints a new callable object per iteration.
_CLOSURE_FACTORIES = frozenset({"functools.partial", "partial"})


@rule(
    "PERF303",
    "hot-loop-allocation",
    "per-event allocation inside a synchronous drain loop in a hot module",
)
def perf303_hot_loop_allocation(ctx: LintContext) -> list[Finding]:
    """Flag per-iteration allocations inside hot drain loops.

    The engine's throughput is bounded by what each pop of the event
    heap allocates: a closure, a bound method, or a fresh container
    minted per event turns into hundreds of thousands of allocations
    per run (DESIGN.md §13).  The discipline — hoist loop invariants,
    prebind callbacks once, reuse containers — is easy to erode one
    convenient lambda at a time, so it is pinned here.

    Flags, inside ``while <name>:`` / ``while True:`` loops that never
    yield, in hot-tagged files:

    * ``lambda`` / nested ``def`` — a closure minted per iteration;
    * ``functools.partial(...)`` — same, via factory;
    * list/set/dict displays and comprehensions — a container per
      iteration (``list(xs)``-style snapshot *calls* are allowed: a
      mutation-safe copy is semantics, not convenience);
    * ``xs.append(self.on_event)`` where ``on_event`` is a *method* of
      the enclosing class — a bound method minted per iteration;
      prebind it once (``self._cb = self.on_event`` at init) and
      append the prebound slot instead.  Appending a data attribute or
      an already-prebound reference is clean.
    """
    if not ctx.config.is_hot(ctx.relpath):
        return []
    findings = []
    # Map each drain loop to (self_name, method names of the enclosing
    # class) so the bound-method check can tell ``self.method`` apart
    # from ``self.data_slot``.
    loop_self: dict[ast.While, tuple[str, frozenset[str]]] = {}
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = frozenset(
            m.name
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            for sub in ast.walk(method):
                if isinstance(sub, ast.While):
                    loop_self[sub] = (self_name, methods)
    for loop in ast.walk(ctx.tree):
        if not isinstance(loop, ast.While) or not _is_drain_loop(loop):
            continue
        self_name, methods = loop_self.get(loop, ("", frozenset()))
        for sub in _walk_local(loop):
            if isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.append(
                    ctx.finding(
                        sub,
                        "PERF303",
                        "closure created inside a hot drain loop — one "
                        "function object per event; hoist it out of the "
                        "loop or prebind it",
                    )
                )
            elif isinstance(
                sub,
                (
                    ast.List,
                    ast.Set,
                    ast.Dict,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                findings.append(
                    ctx.finding(
                        sub,
                        "PERF303",
                        "container literal inside a hot drain loop — one "
                        "allocation per event; hoist or reuse it",
                    )
                )
            elif isinstance(sub, ast.Call):
                dotted = ctx.resolve(sub.func)
                if dotted in _CLOSURE_FACTORIES:
                    findings.append(
                        ctx.finding(
                            sub,
                            "PERF303",
                            "partial() inside a hot drain loop — one "
                            "callable per event; prebind it once",
                        )
                    )
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "append"
                    and any(
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == self_name
                        and arg.attr in methods
                        for arg in sub.args
                    )
                ):
                    findings.append(
                        ctx.finding(
                            sub,
                            "PERF303",
                            "bound method minted per event "
                            "(append(self.method) in a hot drain loop) — "
                            "prebind the callback once and append the "
                            "prebound reference",
                        )
                    )
    return findings
