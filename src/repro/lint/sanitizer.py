"""Dynamic ownership sanitizer: the runtime half of the OWN4xx contract.

The static pass (:mod:`repro.lint.ownership`) classifies every class and
attribute it can see in the AST; this module checks the property the AST
cannot see — *who actually mutates what* during a run.  Mechanism,
parallel to the PR-5 tie-order probe:

1. Every concrete class whose :func:`runtime_role` is node-scoped or
   shared gets its ``__setattr__`` wrapped (class-level patch, like the
   tie-order probe's ``Environment.run`` patch — the tree's ``__slots__``
   discipline rules out per-instance patching).  All originals are
   snapshotted *before* any wrapper is installed so an inherited
   ``__setattr__`` can never capture another class's wrapper.
2. The cluster builder's post-build hook
   (:data:`repro.cluster.builder._POST_BUILD_HOOK`) tags every object
   reachable from a node root with its owning node (``node:i`` /
   ``client``); fabric, shared, and ambient objects are tagged with
   their role and act as traversal barriers.  Objects constructed later
   (connections, in-flight ops, state machines) adopt the owner of the
   nearest registered object on the construction stack.
3. Every attribute mutation is attributed to an *actor* — the nearest
   stack frame whose ``self`` is a registered object.  A mutation is a
   violation iff actor and target are owned by different nodes and the
   (actor class, target class) pair is not a declared
   :data:`~repro.lint.ownership.DYNAMIC_EDGES` fabric edge.  Mutations
   through the target's own methods are by definition performed by the
   owning node's code (a cross-node *call* still serializes through the
   messenger, which is what the static pass checks).

Zero-perturbation rule: the wrapper observes and never schedules, so the
sanitized run's :func:`~repro.trace.simulation_digest` must equal the
plain run's — :class:`SanitizerReport.instrumentation_ok` asserts it,
and runs with the sanitizer off are untouched (no import-time patching).

Limitations (documented, by design): container mutations
(``peer.queue.append(...)``) bypass ``__setattr__``; the compiled engine
(``REPRO_ENGINE=compiled``) writes machine slots from C and must be
probed with the reference engine.
"""

from __future__ import annotations

import contextlib
import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator, Optional

from .ownership import (
    AMBIENT_MODULES,
    DYNAMIC_EDGES,
    EDGE_ATTRS,
    MODULE_ROLES,
    ROLE_MANIFEST,
    Role,
    _module_matches,
    is_node_module,
)

__all__ = [
    "OwnershipSanitizer",
    "OwnershipViolation",
    "SanitizerReport",
    "runtime_role",
    "run_sanitized",
]

#: Frame-walk depth bound for actor attribution.
_MAX_FRAMES = 64

#: Recorded violations are capped (a systemic bug would otherwise
#: produce one record per event).
_MAX_VIOLATIONS = 200


def runtime_role(cls: type) -> Role:
    """Role of a *live* class — mirror of the static :func:`role_of`.

    Same resolution order as the static side so the two passes can never
    disagree about a class both can see: class manifest → module
    manifest → structural value heuristics → module defaults.
    """
    qual = f"{cls.__module__}.{cls.__qualname__}"
    entry = ROLE_MANIFEST.get(qual)
    if entry is not None:
        return entry[0]
    mod_role = MODULE_ROLES.get(cls.__module__)
    if mod_role is not None:
        return mod_role
    if cls.__name__.endswith(("Error", "Exception", "Warning")):
        return Role.VALUE
    try:
        if issubclass(cls, BaseException) or issubclass(cls, Enum):
            return Role.VALUE
    except TypeError:  # pragma: no cover - exotic metaclasses
        pass
    if getattr(cls, "_is_protocol", False) or issubclass(cls, tuple):
        return Role.VALUE
    params = getattr(cls, "__dataclass_params__", None)
    if params is not None and params.frozen:
        return Role.VALUE
    if is_node_module(cls.__module__):
        return Role.NODE
    if any(_module_matches(cls.__module__, p) for p in AMBIENT_MODULES):
        return Role.AMBIENT
    return Role.HARNESS


def _tracked_classes() -> list[type]:
    """Concrete node-scoped/shared classes in every imported repro module."""
    out: dict[str, type] = {}
    for mod_name, mod in list(sys.modules.items()):
        if mod is None or not (
            mod_name == "repro" or mod_name.startswith("repro.")
        ):
            continue
        for obj in list(vars(mod).values()):
            if not isinstance(obj, type) or obj.__module__ != mod_name:
                continue
            if runtime_role(obj) in (Role.NODE, Role.SHARED):
                out[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return [out[q] for q in sorted(out)]


def _qual(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


#: BFS barriers: declared fabric-edge attributes are never traversed
#: (they point into another node by design).
_BARRIER_ATTRS = frozenset(attr for (_cls, attr) in EDGE_ATTRS)


@dataclass(frozen=True)
class OwnershipViolation:
    """One cross-node attribute mutation outside the declared edges."""

    target_cls: str
    attr: str
    target_owner: str
    actor_cls: str
    actor_owner: str

    def render(self) -> str:
        return (
            f"{self.actor_cls} (owner {self.actor_owner}) wrote "
            f"{self.target_cls}.{self.attr} (owner {self.target_owner}) "
            "without crossing the fabric"
        )


@dataclass
class SanitizerReport:
    """Outcome of one sanitized scenario run."""

    scenario: str
    seed: int
    objects_by_owner: dict[str, int] = field(default_factory=dict)
    tracked_classes: int = 0
    mutations: int = 0
    shared_mutations: int = 0
    edge_mutations: int = 0
    violations: list[OwnershipViolation] = field(default_factory=list)
    plain_digest: str = ""
    sanitized_digest: str = ""

    @property
    def instrumentation_ok(self) -> bool:
        """The armed run reproduced the plain digest (zero perturbation)."""
        return (
            self.plain_digest != ""
            and self.plain_digest == self.sanitized_digest
        )

    @property
    def ok(self) -> bool:
        return self.instrumentation_ok and not self.violations

    def render(self) -> str:
        lines = [
            f"ownership sanitizer: scenario={self.scenario} seed={self.seed}",
            f"  tracked classes:   {self.tracked_classes}",
            f"  tagged objects:    {sum(self.objects_by_owner.values())}",
        ]
        for owner in sorted(self.objects_by_owner):
            lines.append(
                f"    {owner:<12} {self.objects_by_owner[owner]}"
            )
        lines.append(
            f"  mutations checked: {self.mutations} "
            f"(shared: {self.shared_mutations}, "
            f"declared edges: {self.edge_mutations})"
        )
        lines.append(
            "  zero-perturbation: "
            + ("ok (digest identical)" if self.instrumentation_ok
               else "FAILED (sanitized digest differs from plain run)")
        )
        if self.violations:
            lines.append(f"  violations: {len(self.violations)}")
            for v in self.violations[:20]:
                lines.append(f"    {v.render()}")
        else:
            lines.append("  violations: 0")
        return "\n".join(lines)


class OwnershipSanitizer:
    """Tags live objects with owners and audits attribute mutations."""

    def __init__(self) -> None:
        #: id(obj) → owner string ("node:0", "client", "shared",
        #: "fabric", "harness").  Strong refs pin ids for the run.
        self._owners: dict[int, str] = {}
        self._refs: list[Any] = []
        self.objects_by_owner: dict[str, int] = {}
        self.mutations = 0
        self.shared_mutations = 0
        self.edge_mutations = 0
        self.violations: list[OwnershipViolation] = []

    # -- tagging ----------------------------------------------------------

    def tag(self, obj: Any, owner: str) -> None:
        """Register ``obj`` as owned by ``owner`` (re-tag allowed)."""
        key = id(obj)
        prev = self._owners.get(key)
        if prev == owner:
            return
        if prev is None:
            self._refs.append(obj)
        else:
            self.objects_by_owner[prev] -= 1
        self._owners[key] = owner
        self.objects_by_owner[owner] = (
            self.objects_by_owner.get(owner, 0) + 1
        )

    def tag_cluster(self, cluster: Any) -> None:
        """Tag everything reachable from a built cluster's node roots.

        Signature matches :data:`repro.cluster.builder._POST_BUILD_HOOK`.
        The monitor is co-located on node 0's CPU (both testbeds), the
        client is its own owner.
        """
        roots: list[tuple[Any, str]] = []
        for seq in (cluster.nodes, cluster.osds, cluster.stores,
                    cluster.proxy_servers):
            for i, obj in enumerate(seq):
                roots.append((obj, f"node:{i}"))
        if cluster.mon is not None:
            roots.append((cluster.mon, "node:0"))
        for obj in (cluster.client, cluster.client_cpu):
            if obj is not None:
                roots.append((obj, "client"))
        for obj, owner in roots:
            self._tag_tree(obj, owner)

    def _tag_tree(self, root: Any, owner: str) -> None:
        stack = [root]
        seen: set[int] = set()
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if isinstance(obj, (list, tuple, set, frozenset)):
                stack.extend(obj)
                continue
            if isinstance(obj, dict):
                stack.extend(obj.values())
                continue
            cls = type(obj)
            if cls.__module__ == "builtins":
                continue
            role = runtime_role(cls)
            if role in (Role.SHARED, Role.FABRIC):
                # Barrier: tagged with the role, never traversed — what
                # lies behind the fabric belongs to other nodes.
                self.tag(obj, role.value)
                continue
            if role is not Role.NODE:
                continue
            prev = self._owners.get(id(obj))
            if prev is None or prev == "harness":
                self.tag(obj, owner)
            for attr, value in _attr_items(obj):
                if attr in _BARRIER_ATTRS:
                    continue
                stack.append(value)

    # -- the mutation check -----------------------------------------------

    def _check(self, target: Any, attr: str) -> None:
        self.mutations += 1
        owners = self._owners
        towner = owners.get(id(target))
        actor: Any = None
        frame = sys._getframe(2)
        depth = 0
        while frame is not None and depth < _MAX_FRAMES:
            code = frame.f_code
            if code.co_varnames[:1] == ("self",):
                obj = frame.f_locals.get("self")
                if obj is not None:
                    if obj is target:
                        if towner is not None:
                            # Own-method mutation: the owning node's
                            # code by definition.
                            return
                        # Still under construction — keep walking to
                        # find the creator and adopt its owner.
                    elif id(obj) in owners:
                        actor = obj
                        break
            frame = frame.f_back
            depth += 1
        if towner is None:
            # First sighting: adopt the creator's owner so objects
            # minted during the run (connections, machines, in-flight
            # ops) inherit their node.
            self.tag(target, owners[id(actor)] if actor is not None
                     else "harness")
            return
        if actor is None:
            return  # harness / module-level code: outside the sim
        aowner = owners[id(actor)]
        if aowner == towner:
            return
        if not (towner.startswith("node:") or towner == "client"):
            if towner == "shared":
                self.shared_mutations += 1
            return
        if not (aowner.startswith("node:") or aowner == "client"):
            return
        pair = (_qual(type(actor)), _qual(type(target)))
        if pair in DYNAMIC_EDGES:
            self.edge_mutations += 1
            return
        if len(self.violations) < _MAX_VIOLATIONS:
            self.violations.append(
                OwnershipViolation(
                    target_cls=pair[1],
                    attr=attr,
                    target_owner=towner,
                    actor_cls=pair[0],
                    actor_owner=aowner,
                )
            )

    # -- arming -----------------------------------------------------------

    @contextlib.contextmanager
    def armed(self) -> Iterator["OwnershipSanitizer"]:
        """Install the ``__setattr__`` wrappers; restore on exit."""
        check = self._check
        # Snapshot every original before installing any wrapper: a
        # subclass snapshotted after its base was patched would capture
        # the base's wrapper and double-check every mutation.
        targets: list[tuple[type, Callable]] = []
        for cls in _tracked_classes():
            if "__setattr__" in cls.__dict__:
                # Defines its own (frozen dataclass, custom guard):
                # patching would change semantics, so it is skipped —
                # frozen classes cannot be mutated anyway.
                continue
            targets.append((cls, cls.__setattr__))
        self.tracked_count = len(targets)
        installed: list[type] = []
        try:
            for cls, orig in targets:
                cls.__setattr__ = _make_wrapper(orig, check)
                installed.append(cls)
            yield self
        finally:
            for cls in installed:
                # None of the patched classes defined their own
                # __setattr__, so deleting restores the inherited slot.
                del cls.__setattr__


def _make_wrapper(orig: Callable, check: Callable) -> Callable:
    def __setattr__(self: Any, name: str, value: Any) -> None:
        check(self, name)
        orig(self, name, value)

    return __setattr__


def _attr_items(obj: Any) -> Iterator[tuple[str, Any]]:
    """(name, value) pairs across ``__dict__`` and every ``__slots__``."""
    d = getattr(obj, "__dict__", None)
    if d is not None:
        yield from list(d.items())
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots:
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                yield slot, getattr(obj, slot)
            except AttributeError:
                continue


def run_sanitized(
    scenario: str,
    seed: int = 0,
    runner: Optional[Callable[[str, int], Any]] = None,
) -> SanitizerReport:
    """Run ``scenario`` twice — plain, then armed — and audit ownership.

    ``runner(scenario, seed)`` must build and run the scenario and
    return its :class:`~repro.sim.Environment`; the default uses
    :func:`repro.perf.run_scenario`.  The plain run's digest is the
    zero-perturbation reference the armed run must reproduce.
    """
    from ..cluster import builder as builder_mod
    from ..trace import simulation_digest

    if runner is None:
        from ..perf import run_scenario

        def runner(name: str, s: int) -> Any:
            env, _result = run_scenario(name, seed=s)
            return env

    plain_digest = simulation_digest(runner(scenario, seed))

    san = OwnershipSanitizer()
    prev_hook = builder_mod._POST_BUILD_HOOK
    builder_mod._POST_BUILD_HOOK = san.tag_cluster
    try:
        with san.armed():
            env = runner(scenario, seed)
    finally:
        builder_mod._POST_BUILD_HOOK = prev_hook
    sanitized_digest = simulation_digest(env)

    return SanitizerReport(
        scenario=scenario,
        seed=seed,
        objects_by_owner=dict(san.objects_by_owner),
        tracked_classes=getattr(san, "tracked_count", 0),
        mutations=san.mutations,
        shared_mutations=san.shared_mutations,
        edge_mutations=san.edge_mutations,
        violations=list(san.violations),
        plain_digest=plain_digest,
        sanitized_digest=sanitized_digest,
    )
