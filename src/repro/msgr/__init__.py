"""The Ceph-style async messenger layer.

This is the communication-intensive component the paper offloads to the
DPU: typed wire messages with real encode/decode, worker-thread event
loops with TCP stack CPU accounting, per-connection ordered delivery,
dispatch throttling, and heartbeat traffic.
"""

from .adversary import WireAdversary
from .heartbeat import HeartbeatAgent
from .message import (
    Message,
    MOSDBeacon,
    MOSDPGPull,
    MOSDPGPush,
    MOSDPGPushReply,
    MScrubDigest,
    MScrubReply,
    MessageType,
    MMonGetMap,
    MMonMapReply,
    MOSDOp,
    MOSDOpReply,
    MOSDPing,
    MOSDRepOp,
    MOSDRepOpReply,
    OpType,
    WIRE_OVERHEAD,
    decode_message,
)
from .messenger import (
    AsyncMessenger,
    Connection,
    Dispatcher,
    MessengerCostModel,
    MsgrDirectory,
    WireFrame,
    MSGR_CATEGORY,
)

__all__ = [
    "AsyncMessenger",
    "Connection",
    "Dispatcher",
    "WireAdversary",
    "WireFrame",
    "HeartbeatAgent",
    "MSGR_CATEGORY",
    "Message",
    "MessageType",
    "MessengerCostModel",
    "MMonGetMap",
    "MMonMapReply",
    "MOSDOp",
    "MOSDOpReply",
    "MOSDBeacon",
    "MOSDPGPull",
    "MOSDPGPush",
    "MOSDPGPushReply",
    "MScrubDigest",
    "MScrubReply",
    "MOSDPing",
    "MOSDRepOp",
    "MOSDRepOpReply",
    "MsgrDirectory",
    "OpType",
    "WIRE_OVERHEAD",
    "decode_message",
]
