"""Seeded wire-level adversary for the messenger (`net:*` fault kinds).

Sits on a messenger's outbound path, between :meth:`Connection.send`
and the peer's dispatch, and perturbs encoded frames the way a hostile
(or merely broken) fabric would:

========  ==============================================================
kind      effect on the frame
========  ==============================================================
corrupt   payload blob swapped for a same-length impostor (or, for
          header-only frames, one byte flipped) — the frame CRC no
          longer matches the bytes
dup       delivered twice; the receiver's sequence window must
          suppress the second copy
reorder   held back until the next frame on the connection passes it
          (bounded window of 1, plus a flush timer so a trailing frame
          is never held forever)
truncate  the tail extent is cut short — decode runs past the end of
          the bufferlist
jitter    delivery delayed by ``spec.delay`` seconds on a detached
          process, so later frames can overtake it
========  ==============================================================

The adversary holds **no RNG of its own**: every decision comes from
the :class:`~repro.faults.LayerInjector` handed in by
:meth:`FaultPlan.attach_msgr`, whose stream is derived per
``(scope, "net:adversary")`` — separate from the NIC-pipe stream, so
arming the adversary never perturbs an existing ``net:degrade``
schedule.  Mutations never touch the original frame buffers (the
sender's resend buffer keeps the pristine copy retransmission needs).
"""

from __future__ import annotations

from typing import Any, Optional

from ..util.bufferlist import BufferList, DataBlob

__all__ = ["WireAdversary"]

#: Fixed evaluation order, one injector consultation per present kind
#: per frame — the draw sequence is a pure function of frame order.
_ACTION_ORDER = ("corrupt", "truncate", "dup", "reorder", "jitter")


class WireAdversary:
    """Per-messenger frame perturbation driven by a fault injector."""

    __slots__ = ("injector", "_kinds")

    def __init__(self, injector: Any) -> None:
        self.injector = injector
        present = {spec.kind for spec in injector.specs}
        self._kinds = tuple(k for k in _ACTION_ORDER if k in present)

    def action(self, now: float, size: int) -> Optional[Any]:
        """The first adversary spec that fires for this frame, if any."""
        for kind in self._kinds:
            spec = self.injector.fire(now, kind=kind, size=size)
            if spec is not None:
                return spec
        return None

    # -- frame mutations (pure; never alias the input's mutable state) ----

    @staticmethod
    def corrupted(bl: BufferList) -> BufferList:
        """A copy of ``bl`` whose content no longer matches its CRC.

        The first payload blob is swapped for a fresh same-length blob
        (a silent payload substitution — exactly what an undetected bit
        flip in bulk data amounts to); frames without bulk payload get
        one header byte flipped instead.
        """
        extents = bl.extents()
        has_blob = any(isinstance(e, DataBlob) for e in extents)
        out = BufferList()
        swapped = False
        for extent in extents:
            if isinstance(extent, DataBlob):
                if swapped:
                    out.append_blob(extent)
                else:
                    out.append_blob(DataBlob(extent.length))
                    swapped = True
            elif has_blob or swapped or not extent:
                out.append_raw(extent)
            else:
                mutated = bytearray(extent)
                mutated[len(mutated) // 2] ^= 0x40
                out.append_raw(bytes(mutated))
                swapped = True
        return out

    @staticmethod
    def truncated(bl: BufferList) -> BufferList:
        """A copy of ``bl`` with its tail cut off mid-extent."""
        out = BufferList()
        extents = bl.extents()
        for extent in extents[:-1]:
            if isinstance(extent, DataBlob):
                out.append_blob(extent)
            else:
                out.append_raw(extent)
        if extents:
            last = extents[-1]
            if not isinstance(last, DataBlob) and len(last) > 1:
                out.append_raw(last[:-1])
            # a blob tail (or single-byte tail) is dropped entirely
        return out
