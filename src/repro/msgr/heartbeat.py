"""OSD heartbeat traffic.

Ceph OSDs ping their peers at regular intervals; the paper calls out
heartbeats as part of the messenger's steady CPU load.  The
:class:`HeartbeatAgent` generates that background traffic: it pings each
peer every ``interval`` seconds (with deterministic per-peer phase
offsets so beats don't synchronize) and tracks last-seen times, which
the monitor's failure detector consumes.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from .message import MOSDPing
from .messenger import AsyncMessenger

__all__ = ["HeartbeatAgent"]


class HeartbeatAgent:
    """Periodic pinger + last-seen tracker for one daemon."""

    def __init__(
        self,
        messenger: AsyncMessenger,
        peer_addrs: Iterable[str],
        interval: float = 1.0,
        grace: float = 4.0,
    ) -> None:
        self.messenger = messenger
        self.peer_addrs = list(peer_addrs)
        self.interval = interval
        self.grace = grace
        self.last_seen: dict[str, float] = {}
        self._tid = 0
        self._procs = [
            messenger.env.process(
                self._beat(addr, phase=0.1 * i / max(1, len(self.peer_addrs))),
                name=f"hb:{messenger.name}->{addr}",
            )
            for i, addr in enumerate(self.peer_addrs)
        ]

    def _beat(self, addr: str, phase: float) -> Generator[Any, Any, None]:
        env = self.messenger.env
        if phase > 0:
            yield env.timeout(phase * self.interval)
        while True:
            self._tid += 1
            self.messenger.send_message(
                MOSDPing(tid=self._tid, stamp=env.now), addr
            )
            yield env.timeout(self.interval)

    # -- called by the owner's dispatcher ---------------------------------
    def handle_ping(self, msg: MOSDPing) -> MOSDPing | None:
        """Process an incoming ping; returns the reply to send (or
        ``None`` if the ping was itself a reply)."""
        self.last_seen[msg.src] = self.messenger.env.now
        if msg.is_reply:
            return None
        return MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp)

    def healthy_peers(self, now: float) -> list[str]:
        """Peers heard from within the grace window."""
        return [
            addr
            for addr in self.peer_addrs
            if now - self.last_seen.get(addr, -float("inf")) <= self.grace
        ]

    def stale_peers(self, now: float) -> list[str]:
        """Peers silent for longer than the grace window."""
        return [
            addr
            for addr in self.peer_addrs
            if now - self.last_seen.get(addr, -float("inf")) > self.grace
        ]
