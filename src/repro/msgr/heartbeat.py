"""OSD heartbeat traffic.

Ceph OSDs ping their peers at regular intervals; the paper calls out
heartbeats as part of the messenger's steady CPU load.  The
:class:`HeartbeatAgent` generates that background traffic and tracks
last-seen times per peer.

Two modes:

* **static** (``peer_addrs`` given, no ``osdmap``): ping each listed
  address forever with deterministic per-peer phase offsets — the
  original fixed-topology behavior, kept for unit tests and ad-hoc
  wiring;
* **dynamic** (``osdmap`` + ``whoami`` given): a single loop recomputes
  the peer set from the OSDMap every ``interval``, so peers marked
  down/out stop being pinged and rejoining peers are picked up on the
  next map epoch.  :meth:`failed_peer_ids` reports currently-up peers
  that have been silent past ``grace``; OSDs fold that list into their
  monitor beacons so the monitor can mark unreachable peers down early.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from ..sim.exceptions import Interrupt
from .message import MOSDPing
from .messenger import AsyncMessenger

__all__ = ["HeartbeatAgent"]


class HeartbeatAgent:
    """Periodic pinger + last-seen tracker for one daemon."""

    __slots__ = (
        "messenger",
        "peer_addrs",
        "interval",
        "grace",
        "osdmap",
        "whoami",
        "last_seen",
        "_tid",
        "_last_tid_in",
        "_peer_ids",
        "_procs",
    )

    def __init__(
        self,
        messenger: AsyncMessenger,
        peer_addrs: Iterable[str] = (),
        interval: float = 1.0,
        grace: float = 4.0,
        osdmap: Optional[Any] = None,
        whoami: Optional[int] = None,
    ) -> None:
        if osdmap is not None and whoami is None:
            raise ValueError("dynamic heartbeat mode needs whoami")
        self.messenger = messenger
        self.peer_addrs = list(peer_addrs)
        self.interval = interval
        self.grace = grace
        self.osdmap = osdmap
        self.whoami = whoami
        self.last_seen: dict[str, float] = {}
        self._tid = 0
        #: (src, is_reply) → highest tid seen, so a ping delayed or
        #: replayed past a newer one cannot masquerade as fresh liveness
        self._last_tid_in: dict[tuple[str, bool], int] = {}
        #: addr → osd id for the current dynamic peer set.
        self._peer_ids: dict[str, int] = {}
        if osdmap is None:
            self._procs = [
                messenger.env.process(
                    self._beat(
                        addr, phase=0.1 * i / max(1, len(self.peer_addrs))
                    ),
                    name=f"hb:{messenger.name}->{addr}",
                )
                for i, addr in enumerate(self.peer_addrs)
            ]
        else:
            self._procs = [
                messenger.env.process(
                    self._dynamic_loop(), name=f"hb:{messenger.name}"
                )
            ]

    def stop(self) -> None:
        """Halt all ping traffic (daemon crash/shutdown)."""
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("heartbeat stop")
        self._procs = []

    def _beat(self, addr: str, phase: float) -> Generator[Any, Any, None]:
        env = self.messenger.env
        try:
            if phase > 0:
                yield env.timeout(phase * self.interval)
            while True:
                self._tid += 1
                self.messenger.send_message(
                    MOSDPing(tid=self._tid, stamp=env.now), addr
                )
                yield env.timeout(self.interval)
        except Interrupt:
            return

    def _map_peers(self) -> dict[str, int]:
        """addr → osd id for every *up* OSD in the map except ourselves."""
        assert self.osdmap is not None
        peers: dict[str, int] = {}
        for osd_id in self.osdmap.osds:
            if osd_id == self.whoami or not self.osdmap.is_up(osd_id):
                continue
            peers[self.osdmap.address_of(osd_id)] = osd_id
        return peers

    def _dynamic_loop(self) -> Generator[Any, Any, None]:
        env = self.messenger.env
        try:
            while True:
                peers = self._map_peers()
                now = env.now
                for addr in sorted(peers):
                    if addr not in self.last_seen:
                        # seed on first sight so a just-added peer is not
                        # instantly reported as failed
                        self.last_seen[addr] = now
                    self._tid += 1
                    self.messenger.send_message(
                        MOSDPing(tid=self._tid, stamp=now), addr
                    )
                self._peer_ids = peers
                self.peer_addrs = sorted(peers)
                yield env.timeout(self.interval)
        except Interrupt:
            return

    # -- called by the owner's dispatcher ---------------------------------
    def handle_ping(self, msg: MOSDPing) -> MOSDPing | None:
        """Process an incoming ping; returns the reply to send (or
        ``None`` if the ping was itself a reply).

        ``last_seen`` only moves forward for pings *newer* than any
        already seen from that peer (per direction): a reply delayed by
        wire jitter past a later one, or re-delivered across a
        connection reset, proves nothing the newer ping did not.
        ``tid == 1`` is always fresh — it marks a restarted peer whose
        counter began again.  Stale *requests* are still answered so
        the peer's view of us stays live."""
        key = (msg.src, msg.is_reply)
        last = self._last_tid_in.get(key, 0)
        if msg.tid > last or msg.tid == 1:
            self._last_tid_in[key] = msg.tid
            self.last_seen[msg.src] = self.messenger.env.now
        if msg.is_reply:
            return None
        return MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp)

    def healthy_peers(self, now: float) -> list[str]:
        """Peers heard from within the grace window."""
        return [
            addr
            for addr in self.peer_addrs
            if now - self.last_seen.get(addr, -float("inf")) <= self.grace
        ]

    def stale_peers(self, now: float) -> list[str]:
        """Peers silent for longer than the grace window."""
        return [
            addr
            for addr in self.peer_addrs
            if now - self.last_seen.get(addr, -float("inf")) > self.grace
        ]

    def failed_peer_ids(self, now: float) -> list[int]:
        """OSD ids of map-up peers silent past ``grace`` (dynamic mode
        only; static mode has no id mapping and returns ``[]``)."""
        if self.osdmap is None:
            return []
        return sorted(
            self._peer_ids[addr]
            for addr in self.stale_peers(now)
            if addr in self._peer_ids
        )
