"""Wire messages: Ceph-style typed messages with real encode/decode.

Every message renders to a :class:`~repro.util.bufferlist.BufferList`
(fixed header, type-specific front section, optional bulk-data blob) and
decodes back.  The messenger encodes on send and decodes on receive, so
sizes on the wire — and the CPU charged per byte — come from the actual
serialization, not estimates.  Bulk payloads ride as virtual
:class:`~repro.util.bufferlist.DataBlob` extents.

``attachment`` is the one model-level escape hatch: cluster-map
distribution attaches the live OSDMap object by reference (serializing a
whole map faithfully is out of scope and irrelevant to the phenomena
under study; its wire *size* is still modelled via ``map_bytes``).
"""
# repro-lint: disable-file=PERF301 — the Message hierarchy is deliberately
# unslotted: the ClassVar span/throttle annotations (span_ctx, op_span, ...)
# are class-level None defaults that tracing and throttling overwrite
# per-instance on the few messages they touch, which requires __dict__.
# Slotting would force the five fields onto every message instead.

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, ClassVar, Optional, Type

from ..util.bufferlist import BufferDecoder, BufferList, DataBlob, EncodeError

__all__ = [
    "MessageType",
    "Message",
    "MOSDOp",
    "MOSDOpReply",
    "MOSDRepOp",
    "MOSDRepOpReply",
    "MOSDPing",
    "MOSDBeacon",
    "MOSDPGPull",
    "MOSDPGPush",
    "MOSDPGPushReply",
    "MScrubDigest",
    "MScrubReply",
    "MMonGetMap",
    "MMonMapReply",
    "OpType",
    "decode_message",
    "WIRE_OVERHEAD",
]

#: Per-message on-wire overhead outside the bufferlist: banner/crc
#: trailers etc. (bytes).
WIRE_OVERHEAD = 33


class MessageType(IntEnum):
    """Message type tags (values mirror the spirit of Ceph's MSG_*)."""

    PING = 2
    MON_GET_MAP = 5
    MON_MAP_REPLY = 6
    OSD_BEACON = 24
    OSD_OP = 42
    OSD_OP_REPLY = 43
    OSD_REPOP = 112
    OSD_REPOP_REPLY = 113
    PG_PULL = 105
    PG_PUSH = 106
    PG_PUSH_REPLY = 107
    SCRUB_DIGEST = 108
    SCRUB_REPLY = 109


class OpType(IntEnum):
    """Client operation codes carried by MOSDOp."""

    WRITE = 1
    READ = 2
    STAT = 3
    DELETE = 4


_REGISTRY: dict[int, Type["Message"]] = {}


def _register(cls: Type["Message"]) -> Type["Message"]:
    _REGISTRY[int(cls.TYPE)] = cls
    return cls


@dataclass
class Message:
    """Base message: header fields common to every type."""

    TYPE: ClassVar[MessageType]

    #: Tracing/throttle annotations attached per-hop by the messenger
    #: and OSD layers.  Class-level ``None`` defaults (ClassVar, so not
    #: dataclass fields) let hot paths read them with a plain attribute
    #: load instead of a ``getattr(..., None)`` default walk.
    span_ctx: ClassVar[Any] = None
    origin_span: ClassVar[Any] = None
    op_span: ClassVar[Any] = None
    repop_span: ClassVar[Any] = None
    throttle_release: ClassVar[Any] = None

    src: str = ""
    tid: int = 0
    #: Model-level object reference riding alongside the wire bytes
    #: (used only for cluster-map distribution).
    attachment: Any = field(default=None, compare=False, repr=False)

    # -- encoding ---------------------------------------------------------------
    def encode(self) -> BufferList:
        """Full wire form: header + front + (optional) data blob."""
        bl = BufferList()
        bl.encode_u16(int(self.TYPE))
        bl.encode_u64(self.tid)
        bl.encode_str(self.src)
        self._encode_front(bl)
        self._encode_data(bl)
        return bl

    def _encode_front(self, bl: BufferList) -> None:  # pragma: no cover
        raise NotImplementedError

    def _encode_data(self, bl: BufferList) -> None:
        """Override to append bulk-data blobs after the front section."""

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "Message":
        raise NotImplementedError  # pragma: no cover

    def wire_size(self) -> int:
        """Total bytes this message occupies on the wire."""
        return len(self.encode()) + WIRE_OVERHEAD

    @property
    def data_len(self) -> int:
        """Bulk payload bytes (0 for control messages)."""
        return 0


def decode_message(bl: BufferList, attachment: Any = None) -> Message:
    """Decode a wire bufferlist back into a typed message."""
    d = bl.decoder()
    mtype = d.decode_u16()
    tid = d.decode_u64()
    src = d.decode_str()
    cls = _REGISTRY.get(mtype)
    if cls is None:
        raise EncodeError(f"unknown message type {mtype}")
    msg = cls._decode_front(d, src, tid)
    msg.attachment = attachment
    return msg


@_register
@dataclass
class MOSDOp(Message):
    """A client operation on an object (the paper's workload unit)."""

    TYPE: ClassVar[MessageType] = MessageType.OSD_OP

    pool: str = ""
    object_name: str = ""
    op: OpType = OpType.WRITE
    length: int = 0
    offset: int = 0
    data: Optional[DataBlob] = None
    map_epoch: int = 0
    #: QoS tenant tag ("" = untagged).  Encoded as the 0x80 high bit of
    #: the op byte plus a trailing string, so untagged ops keep their
    #: exact pre-QoS wire bytes (golden digests depend on them).
    tenant: str = ""

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_str(self.pool)
        bl.encode_str(self.object_name)
        bl.encode_u8(int(self.op) | (0x80 if self.tenant else 0))
        if self.tenant:
            bl.encode_str(self.tenant)
        bl.encode_u64(self.length)
        bl.encode_u64(self.offset)
        bl.encode_u32(self.map_epoch)
        bl.encode_bool(self.data is not None)

    def _encode_data(self, bl: BufferList) -> None:
        if self.data is not None:
            bl.append_blob(self.data)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDOp":
        pool = d.decode_str()
        object_name = d.decode_str()
        raw_op = d.decode_u8()
        op = OpType(raw_op & 0x7F)
        tenant = d.decode_str() if raw_op & 0x80 else ""
        length = d.decode_u64()
        offset = d.decode_u64()
        epoch = d.decode_u32()
        has_data = d.decode_bool()
        data = d.decode_blob() if has_data else None
        return cls(
            src=src, tid=tid, pool=pool, object_name=object_name, op=op,
            length=length, offset=offset, data=data, map_epoch=epoch,
            tenant=tenant,
        )

    @property
    def data_len(self) -> int:
        return self.data.length if self.data is not None else 0


@_register
@dataclass
class MOSDOpReply(Message):
    """Reply to a client op; carries read data for READ ops."""

    TYPE: ClassVar[MessageType] = MessageType.OSD_OP_REPLY

    result: int = 0
    version: int = 0
    data: Optional[DataBlob] = None

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_s64(self.result)
        bl.encode_u64(self.version)
        bl.encode_bool(self.data is not None)

    def _encode_data(self, bl: BufferList) -> None:
        if self.data is not None:
            bl.append_blob(self.data)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDOpReply":
        result = d.decode_s64()
        version = d.decode_u64()
        has_data = d.decode_bool()
        data = d.decode_blob() if has_data else None
        return cls(src=src, tid=tid, result=result, version=version, data=data)

    @property
    def data_len(self) -> int:
        return self.data.length if self.data is not None else 0


@_register
@dataclass
class MOSDRepOp(Message):
    """Primary → replica: apply this write transaction."""

    TYPE: ClassVar[MessageType] = MessageType.OSD_REPOP

    pool: str = ""
    pg_seed: int = 0
    object_name: str = ""
    length: int = 0
    offset: int = 0
    data: Optional[DataBlob] = None
    map_epoch: int = 0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_str(self.pool)
        bl.encode_u32(self.pg_seed)
        bl.encode_str(self.object_name)
        bl.encode_u64(self.length)
        bl.encode_u64(self.offset)
        bl.encode_u32(self.map_epoch)
        bl.encode_bool(self.data is not None)

    def _encode_data(self, bl: BufferList) -> None:
        if self.data is not None:
            bl.append_blob(self.data)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDRepOp":
        pool = d.decode_str()
        pg_seed = d.decode_u32()
        object_name = d.decode_str()
        length = d.decode_u64()
        offset = d.decode_u64()
        epoch = d.decode_u32()
        has_data = d.decode_bool()
        data = d.decode_blob() if has_data else None
        return cls(
            src=src, tid=tid, pool=pool, pg_seed=pg_seed,
            object_name=object_name, length=length, offset=offset,
            data=data, map_epoch=epoch,
        )

    @property
    def data_len(self) -> int:
        return self.data.length if self.data is not None else 0


@_register
@dataclass
class MOSDRepOpReply(Message):
    """Replica → primary: transaction committed."""

    TYPE: ClassVar[MessageType] = MessageType.OSD_REPOP_REPLY

    result: int = 0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_s64(self.result)

    @classmethod
    def _decode_front(
        cls, d: BufferDecoder, src: str, tid: int
    ) -> "MOSDRepOpReply":
        return cls(src=src, tid=tid, result=d.decode_s64())


@_register
@dataclass
class MOSDPing(Message):
    """OSD↔OSD heartbeat."""

    TYPE: ClassVar[MessageType] = MessageType.PING

    is_reply: bool = False
    stamp: float = 0.0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_bool(self.is_reply)
        bl.encode_f64(self.stamp)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDPing":
        return cls(src=src, tid=tid, is_reply=d.decode_bool(),
                   stamp=d.decode_f64())


@_register
@dataclass
class MOSDBeacon(Message):
    """OSD → monitor liveness beacon.

    ``failed_peers`` carries the ids of heartbeat peers this OSD has not
    heard from within its grace window; the monitor aggregates reports
    from multiple OSDs to mark an unreachable peer down before its own
    beacon grace expires (Ceph's ``MOSDFailure`` path, folded into the
    beacon for simplicity)."""

    TYPE: ClassVar[MessageType] = MessageType.OSD_BEACON

    osd_id: int = 0
    map_epoch: int = 0
    failed_peers: tuple[int, ...] = ()

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_u32(self.osd_id)
        bl.encode_u32(self.map_epoch)
        bl.encode_u32(len(self.failed_peers))
        for peer in self.failed_peers:
            bl.encode_u32(peer)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDBeacon":
        osd_id = d.decode_u32()
        map_epoch = d.decode_u32()
        count = d.decode_u32()
        failed = tuple(d.decode_u32() for _ in range(count))
        return cls(src=src, tid=tid, osd_id=osd_id, map_epoch=map_epoch,
                   failed_peers=failed)


@_register
@dataclass
class MMonGetMap(Message):
    """Client/OSD → monitor: send me the current OSDMap."""

    TYPE: ClassVar[MessageType] = MessageType.MON_GET_MAP

    have_epoch: int = 0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_u32(self.have_epoch)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MMonGetMap":
        return cls(src=src, tid=tid, have_epoch=d.decode_u32())


@_register
@dataclass
class MMonMapReply(Message):
    """Monitor → requester: the OSDMap (object via ``attachment``; its
    wire footprint modelled by a map-sized virtual blob)."""

    TYPE: ClassVar[MessageType] = MessageType.MON_MAP_REPLY

    epoch: int = 0
    map_bytes: int = 4096

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_u32(self.epoch)
        bl.encode_u32(self.map_bytes)

    def _encode_data(self, bl: BufferList) -> None:
        bl.append_blob(DataBlob(self.map_bytes))

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MMonMapReply":
        epoch = d.decode_u32()
        map_bytes = d.decode_u32()
        d.decode_blob()
        return cls(src=src, tid=tid, epoch=epoch, map_bytes=map_bytes)

    @property
    def data_len(self) -> int:
        return self.map_bytes


@_register
@dataclass
class MOSDPGPull(Message):
    """Recovery: a (re)joining acting-set member asks the primary to
    push the PG's objects.  ``have`` lists the object names the puller
    already holds so the pusher streams only the delta (a restarting
    member typically misses a handful of interim writes, not the PG)."""

    TYPE: ClassVar[MessageType] = MessageType.PG_PULL

    pool: str = ""
    pg_seed: int = 0
    map_epoch: int = 0
    have: tuple = ()

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_str(self.pool)
        bl.encode_u32(self.pg_seed)
        bl.encode_u32(self.map_epoch)
        bl.encode_u32(len(self.have))
        for name in self.have:
            bl.encode_str(name)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDPGPull":
        pool = d.decode_str()
        pg_seed = d.decode_u32()
        map_epoch = d.decode_u32()
        have = tuple(d.decode_str() for _ in range(d.decode_u32()))
        return cls(src=src, tid=tid, pool=pool, pg_seed=pg_seed,
                   map_epoch=map_epoch, have=have)


@_register
@dataclass
class MOSDPGPush(Message):
    """Recovery: primary pushes one object of a PG to a member.
    ``last`` marks the final push of the recovery round; it carries
    ``skipped``, the names the pusher holds but did not stream because
    the pull declared them in ``have`` (the puller needs the full set
    the source knows to compute what to push back), and ``pushed``, the
    manifest of names the stream *did* send — the puller refuses to
    credit an episode whose manifest it did not fully receive (a data
    frame consumed at the wire layer must not leave a "full" copy with
    a hole in it)."""

    TYPE: ClassVar[MessageType] = MessageType.PG_PUSH

    pool: str = ""
    pg_seed: int = 0
    object_name: str = ""
    length: int = 0
    data: Optional[DataBlob] = None
    last: bool = False
    skipped: tuple = ()
    pushed: tuple = ()

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_str(self.pool)
        bl.encode_u32(self.pg_seed)
        bl.encode_str(self.object_name)
        bl.encode_u64(self.length)
        bl.encode_bool(self.last)
        bl.encode_u32(len(self.skipped))
        for name in self.skipped:
            bl.encode_str(name)
        bl.encode_u32(len(self.pushed))
        for name in self.pushed:
            bl.encode_str(name)
        bl.encode_bool(self.data is not None)

    def _encode_data(self, bl: BufferList) -> None:
        if self.data is not None:
            bl.append_blob(self.data)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MOSDPGPush":
        pool = d.decode_str()
        pg_seed = d.decode_u32()
        object_name = d.decode_str()
        length = d.decode_u64()
        last = d.decode_bool()
        skipped = tuple(d.decode_str() for _ in range(d.decode_u32()))
        pushed = tuple(d.decode_str() for _ in range(d.decode_u32()))
        data = d.decode_blob() if d.decode_bool() else None
        return cls(src=src, tid=tid, pool=pool, pg_seed=pg_seed,
                   object_name=object_name, length=length, data=data,
                   last=last, skipped=skipped, pushed=pushed)

    @property
    def data_len(self) -> int:
        return self.data.length if self.data is not None else 0


@_register
@dataclass
class MOSDPGPushReply(Message):
    """Recovery: member acknowledges a push."""

    TYPE: ClassVar[MessageType] = MessageType.PG_PUSH_REPLY

    pg_seed: int = 0
    result: int = 0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_u32(self.pg_seed)
        bl.encode_s64(self.result)

    @classmethod
    def _decode_front(
        cls, d: BufferDecoder, src: str, tid: int
    ) -> "MOSDPGPushReply":
        return cls(src=src, tid=tid, pg_seed=d.decode_u32(),
                   result=d.decode_s64())


@_register
@dataclass
class MScrubDigest(Message):
    """Scrub: primary sends its per-object digest list for a PG;
    replicas compare against their own metadata."""

    TYPE: ClassVar[MessageType] = MessageType.SCRUB_DIGEST

    pool: str = ""
    pg_seed: int = 0
    digests: dict[str, int] = field(default_factory=dict, compare=True)

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_str(self.pool)
        bl.encode_u32(self.pg_seed)
        bl.encode_u32(len(self.digests))
        for name in sorted(self.digests):
            bl.encode_str(name)
            bl.encode_u64(self.digests[name])

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MScrubDigest":
        pool = d.decode_str()
        pg_seed = d.decode_u32()
        n = d.decode_u32()
        digests = {}
        for _ in range(n):
            name = d.decode_str()
            digests[name] = d.decode_u64()
        return cls(src=src, tid=tid, pool=pool, pg_seed=pg_seed,
                   digests=digests)


@_register
@dataclass
class MScrubReply(Message):
    """Scrub: replica's verdict for a PG digest comparison."""

    TYPE: ClassVar[MessageType] = MessageType.SCRUB_REPLY

    pg_seed: int = 0
    mismatches: int = 0

    def _encode_front(self, bl: BufferList) -> None:
        bl.encode_u32(self.pg_seed)
        bl.encode_u32(self.mismatches)

    @classmethod
    def _decode_front(cls, d: BufferDecoder, src: str, tid: int) -> "MScrubReply":
        return cls(src=src, tid=tid, pg_seed=d.decode_u32(),
                   mismatches=d.decode_u32())
