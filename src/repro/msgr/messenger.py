"""The async messenger: Ceph's communication layer, reimplemented.

This is the component the paper offloads.  Architecture mirrors Ceph's
AsyncMessenger (§2.3, Figure 2):

* a pool of ``msgr-worker-N`` threads, each running an epoll-style event
  loop over the connections assigned to it (round-robin assignment, as
  in Ceph);
* the **send path** (worker context): encode the message (fixed cost +
  checksum at ``crc_bandwidth``), traverse the kernel TCP send path
  (CPU + context switches from the :class:`~repro.hw.tcp.TcpStackModel`),
  then hand the bytes to the connection's wire pump — a per-connection
  process that streams them through the NIC pipes in order, modelling
  the kernel socket buffer draining asynchronously;
* the **receive path** (worker context): epoll wakeup (context switch),
  kernel TCP receive costs, decode, then dispatch to the registered
  dispatcher (the OSD pushes into its op queue there);
* an optional dispatch throttle bounding in-flight receive bytes.

Every byte of CPU cost lands on the CPU complex of the messenger's
:class:`~repro.hw.node.NetStack` — which is precisely how DoCeph moves
messenger load off the host: construct the messenger on the DPU stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Protocol

from ..hw.node import NetStack
from ..hw.cpu import SimThread
from ..sim import Container, Environment, Store
from ..sim.exceptions import Interrupt
from ..util.bufferlist import BufferList
from .message import Message, decode_message

__all__ = [
    "AsyncMessenger",
    "Connection",
    "Dispatcher",
    "MessengerCostModel",
    "MsgrDirectory",
    "MSGR_CATEGORY",
]

#: Thread category for messenger workers (Ceph's "msgr-worker-" prefix).
MSGR_CATEGORY = "msgr-worker"


@dataclass(frozen=True, slots=True)
class MessengerCostModel:
    """CPU costs of messenger-internal work (beyond the TCP stack)."""

    encode_fixed: float = 1.5e-6
    """Per-message encode cost: header assembly, bufferlist builder."""

    decode_fixed: float = 2.0e-6
    """Per-message decode cost: header parse, message construction."""

    crc_bandwidth: float = 6.0e9
    """Payload checksum throughput, bytes/s (crc32c over data)."""

    dispatch_fixed: float = 1.0e-6
    """Cost of fast-dispatching a decoded message to the dispatcher."""

    def encode_cpu(self, wire_bytes: int) -> float:
        return self.encode_fixed + wire_bytes / self.crc_bandwidth

    def decode_cpu(self, wire_bytes: int) -> float:
        return self.decode_fixed + wire_bytes / self.crc_bandwidth


class Dispatcher(Protocol):
    """Anything able to receive messages from a messenger."""

    def ms_dispatch(
        self, msg: Message, conn: "Connection"
    ) -> Generator[Any, Any, None]:
        """Handle ``msg`` (runs in the messenger worker's context; must
        be quick — heavy work belongs on the receiver's own threads)."""
        ...


class MsgrDirectory:
    """Address → messenger registry for one simulated fabric."""

    __slots__ = ("_endpoints",)

    def __init__(self) -> None:
        self._endpoints: dict[str, "AsyncMessenger"] = {}

    def register(self, address: str, messenger: "AsyncMessenger") -> None:
        if address in self._endpoints:
            raise ValueError(f"messenger address in use: {address}")
        self._endpoints[address] = messenger

    def lookup(self, address: str) -> "AsyncMessenger":
        try:
            return self._endpoints[address]
        except KeyError:
            raise ValueError(f"no messenger at address: {address}") from None


class Connection:
    """One ordered, bidirectional peer link (as seen from one side)."""

    __slots__ = (
        "messenger",
        "peer_addr",
        "worker",
        "_wire_queue",
        "_pump",
        "messages_sent",
        "bytes_sent",
    )

    def __init__(
        self,
        messenger: "AsyncMessenger",
        peer_addr: str,
        worker: "_Worker",
    ) -> None:
        self.messenger = messenger
        self.peer_addr = peer_addr
        self.worker = worker
        self._wire_queue: Store = Store(messenger.env)
        self._pump = messenger.env.process(
            self._wire_pump(), name=f"wire:{messenger.address}->{peer_addr}"
        )
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, msg: Message) -> None:
        """Queue ``msg`` for transmission (returns immediately; the
        worker and wire pump do the rest in order)."""
        self.worker.enqueue(("send", self, msg))

    def _wire_pump(self) -> Generator[Any, Any, None]:
        """Streams encoded messages through the NIC in FIFO order,
        modelling the kernel socket buffer draining."""
        net = self.messenger.stack.network
        src = self.messenger.stack.address
        try:
            while True:
                bl, msg, wire_bytes, send_span = yield self._wire_queue.get()
                delivered = yield from net.deliver(
                    src, self.peer_addr, wire_bytes
                )
                if delivered is False:
                    # a network partition ate the bytes on the wire
                    self.messenger.messages_dropped += 1
                    if send_span is not None:
                        send_span.tag("dropped", "partition")
                        send_span.error(self.messenger.env.now, "partition")
                    continue
                if send_span is not None:
                    send_span.finish(self.messenger.env.now)
                peer = self.messenger.directory.lookup(self.peer_addr)
                peer._enqueue_incoming(
                    src, bl, msg.attachment, wire_bytes, send_span
                )
                self.messages_sent += 1
                self.bytes_sent += wire_bytes
        except Interrupt:
            # messenger shutdown: socket buffer discarded with the daemon
            return

    def __repr__(self) -> str:
        return f"<Connection {self.messenger.address} -> {self.peer_addr}>"


class _Worker:
    """One msgr-worker thread: serial event loop over its connections."""

    __slots__ = ("messenger", "index", "thread", "queue", "proc")

    def __init__(self, messenger: "AsyncMessenger", index: int) -> None:
        self.messenger = messenger
        self.index = index
        self.thread = SimThread(
            messenger.stack.cpu,
            f"{messenger.name}.msgr-worker-{index}",
            MSGR_CATEGORY,
        )
        self.queue: Store = Store(messenger.env)
        self.proc = messenger.env.process(
            self._loop(), name=f"{messenger.name}.msgr-worker-{index}"
        )

    def enqueue(self, item: tuple) -> None:
        # Store.put on an unbounded store succeeds synchronously; the
        # returned event is consumed by the loop's get.
        self.queue.put(item)

    def _loop(self) -> Generator[Any, Any, None]:
        msgr = self.messenger
        tcp = msgr.stack.tcp
        cost = msgr.cost
        thread = self.thread
        while True:
            item = yield self.queue.get()
            if msgr.down:
                # daemon is dead: every queued or newly arriving item is
                # dropped on the floor, like a closed socket
                msgr.messages_dropped += 1
                if item[0] == "recv" and item[5] is not None:
                    item[5].tag("dropped", "daemon-down")
                continue
            kind = item[0]
            if kind == "send":
                _, conn, msg = item
                ctx = msg.span_ctx
                bl = msg.encode()
                wire = len(bl) + _WIRE_OVERHEAD
                send_span = None
                if ctx is not None:
                    send_span = ctx.start_span(
                        "msgr.send", msgr.env.now, thread=thread,
                        nbytes=wire,
                    )
                    send_span.tag("msg", type(msg).__name__)
                    send_span.tag("peer", conn.peer_addr)
                    # replies carry the span of the work that produced
                    # them (osd.op / osd.repop); the link lets the
                    # critical-path walk cross from the reply wire back
                    # into that processing span
                    origin = msg.origin_span
                    if origin is not None:
                        send_span.link(origin, "follows")
                send_cpu, _, send_ctx, _ = tcp.costs(wire)
                yield from thread.charge(cost.encode_cpu(wire))
                yield from thread.charge(send_cpu)
                yield from thread.ctx_switch(send_ctx)
                conn._wire_queue.put((bl, msg, wire, send_span))
                msgr.messages_sent += 1
                msgr.bytes_sent += wire
            elif kind == "recv":
                _, src_addr, bl, attachment, wire, sender_span = item
                recv_span = None
                if sender_span is not None and sender_span.parent is not None:
                    recv_span = sender_span.tracer.start_span(
                        "msgr.recv", msgr.env.now,
                        parent=sender_span.parent, thread=thread,
                        nbytes=wire,
                    )
                    recv_span.link(sender_span, "follows")
                # epoll wakeup + kernel receive path
                _, recv_cpu, _, recv_ctx = tcp.costs(wire)
                yield from thread.ctx_switch(recv_ctx)
                yield from thread.charge(recv_cpu)
                yield from thread.charge(cost.decode_cpu(wire))
                msg = decode_message(bl, attachment)
                if recv_span is not None:
                    recv_span.tag("msg", type(msg).__name__)
                    msg.span_ctx = sender_span.parent.context  # type: ignore[attr-defined]
                msgr.messages_received += 1
                msgr.bytes_received += wire
                if msgr.throttle is not None:
                    yield msgr.throttle.get(max(1, wire))
                    msg.throttle_release = _release_once(msgr.throttle, max(1, wire))  # type: ignore[attr-defined]
                yield from thread.charge(cost.dispatch_fixed)
                conn = msgr.connect(src_addr)
                dispatcher = msgr.dispatcher
                if dispatcher is not None:
                    yield from dispatcher.ms_dispatch(msg, conn)
                if recv_span is not None:
                    recv_span.finish(msgr.env.now)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown worker item: {item!r}")


def _release_once(throttle: Container, amount: int) -> Callable[[], None]:
    released = [False]

    def release() -> None:
        if not released[0]:
            released[0] = True
            throttle.put(amount)

    return release


_WIRE_OVERHEAD = 33  # keep in sync with message.WIRE_OVERHEAD


class AsyncMessenger:
    """Messenger instance bound to one :class:`NetStack`.

    Parameters
    ----------
    stack:
        Where this messenger lives (host stack for Baseline, DPU stack
        for DoCeph — this single argument is the paper's architectural
        change).
    name:
        Instance name, e.g. ``"osd.0"``.
    directory:
        Shared address registry for the fabric.
    workers:
        msgr-worker thread count (Ceph default 3).
    throttle_bytes:
        Dispatch throttle capacity; ``None`` disables throttling.
    """

    __slots__ = (
        "stack",
        "name",
        "directory",
        "cost",
        "dispatcher",
        "_workers",
        "_connections",
        "_conn_counter",
        "throttle",
        "down",
        "messages_sent",
        "messages_received",
        "bytes_sent",
        "bytes_received",
        "messages_dropped",
    )

    def __init__(
        self,
        stack: NetStack,
        name: str,
        directory: MsgrDirectory,
        workers: int = 3,
        cost: MessengerCostModel | None = None,
        throttle_bytes: Optional[int] = 256 * 1024 * 1024,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one messenger worker")
        self.stack = stack
        self.name = name
        self.directory = directory
        self.cost = cost or MessengerCostModel()
        self.dispatcher: Optional[Dispatcher] = None
        directory.register(stack.address, self)

        self._workers = [_Worker(self, i) for i in range(workers)]
        self._connections: dict[str, Connection] = {}
        self._conn_counter = 0

        self.throttle: Optional[Container] = None
        if throttle_bytes is not None:
            self.throttle = Container(
                stack.env, capacity=throttle_bytes, init=throttle_bytes
            )

        #: ``True`` while the owning daemon is down; set by
        #: :meth:`shutdown` / cleared by :meth:`startup`.
        self.down = False

        # statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_dropped = 0

    @property
    def env(self) -> Environment:
        return self.stack.env

    @property
    def address(self) -> str:
        return self.stack.address

    def register_dispatcher(self, dispatcher: Dispatcher) -> None:
        """Set the entity that receives inbound messages."""
        self.dispatcher = dispatcher

    def shutdown(self) -> None:
        """Tear down every connection, as when the owning daemon dies.

        Outbound bytes still in wire pumps are lost; queued worker items
        are drained and dropped; inbound messages are refused until
        :meth:`startup`.  Idempotent.
        """
        if self.down:
            return
        self.down = True
        for conn in self._connections.values():
            if conn._pump.is_alive:
                conn._pump.interrupt("messenger shutdown")
        # old connections (and their wire queues, which may hold stale
        # waiters) are abandoned; startup() recreates them lazily
        self._connections.clear()

    def startup(self) -> None:
        """Accept traffic again after :meth:`shutdown` (fresh
        connections are created lazily on first use)."""
        self.down = False

    def connect(self, peer_addr: str) -> Connection:
        """Get (or lazily create) the ordered connection to a peer.

        New connections are assigned to workers round-robin, as in
        Ceph's AsyncMessenger.
        """
        conn = self._connections.get(peer_addr)
        if conn is None:
            worker = self._workers[self._conn_counter % len(self._workers)]
            self._conn_counter += 1
            conn = Connection(self, peer_addr, worker)
            self._connections[peer_addr] = conn
        return conn

    def send_message(self, msg: Message, peer_addr: str) -> None:
        """Send ``msg`` to the messenger at ``peer_addr``."""
        if self.down:
            self.messages_dropped += 1
            return
        msg.src = self.address
        self.connect(peer_addr).send(msg)

    def _enqueue_incoming(
        self,
        src_addr: str,
        bl: BufferList,
        attachment: Any,
        wire: int,
        sender_span: Any = None,
    ) -> None:
        """Called by the sender's wire pump when bytes land in our
        kernel receive buffer: wake the owning worker."""
        if self.down:
            # nobody is listening on the socket
            self.messages_dropped += 1
            if sender_span is not None:
                sender_span.tag("dropped", "peer-down")
            return
        conn = self.connect(src_addr)
        conn.worker.enqueue(
            ("recv", src_addr, bl, attachment, wire, sender_span)
        )

    def __repr__(self) -> str:
        return (
            f"<AsyncMessenger {self.name}@{self.address} "
            f"workers={len(self._workers)}>"
        )
