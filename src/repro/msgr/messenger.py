"""The async messenger: Ceph's communication layer, reimplemented.

This is the component the paper offloads.  Architecture mirrors Ceph's
AsyncMessenger (§2.3, Figure 2):

* a pool of ``msgr-worker-N`` threads, each running an epoll-style event
  loop over the connections assigned to it (round-robin assignment, as
  in Ceph);
* the **send path** (worker context): encode the message (fixed cost +
  checksum at ``crc_bandwidth``), traverse the kernel TCP send path
  (CPU + context switches from the :class:`~repro.hw.tcp.TcpStackModel`),
  then hand the bytes to the connection's wire pump — a per-connection
  process that streams them through the NIC pipes in order, modelling
  the kernel socket buffer draining asynchronously;
* the **receive path** (worker context): epoll wakeup (context switch),
  kernel TCP receive costs, wire-integrity checks (frame CRC, epoch,
  sequence), decode, then dispatch to the registered dispatcher (the
  OSD pushes into its op queue there);
* an optional dispatch throttle bounding in-flight receive bytes.

Wire integrity (msgr-v2 style, hardened against
:mod:`repro.msgr.adversary`): every frame carries a per-connection
monotonic sequence number, a connection epoch, and — whenever a wire
adversary is armed on the sender — a crc32c over the encoded
bufferlist.  The *cost* of that checksum is the ``crc_bandwidth`` term
the cost model has always charged on both encode and decode; arming
verification only adds the (event-free) comparison.  Receivers suppress
duplicates (``seq <= last delivered``), buffer bounded reorder gaps and
nack the missing frames back along the connection's reverse control
channel (modelling TCP's ack/SACK stream, whose wire footprint rides in
``WIRE_OVERHEAD``), and treat an epoch bump as a connection reset:
sequence state restarts and the sender re-numbers + resends its
in-flight window.  Exhausted retransmit budgets and reorder-buffer
overflows escalate to a reset, so corruption or sequence gaps always
trigger recovery instead of silent acceptance.

Every byte of CPU cost lands on the CPU complex of the messenger's
:class:`~repro.hw.node.NetStack` — which is precisely how DoCeph moves
messenger load off the host: construct the messenger on the DPU stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Protocol

from ..hw.net import _RxChunk
from ..hw.node import NetStack
from ..hw.cpu import SimThread
from ..sim import Container, Environment, Store
from ..sim.exceptions import Interrupt
from ..sim.machine import Machine
from ..util.bufferlist import BufferList, EncodeError
from .message import Message, decode_message

__all__ = [
    "AsyncMessenger",
    "Connection",
    "Dispatcher",
    "MessengerCostModel",
    "MsgrDirectory",
    "WireFrame",
    "MSGR_CATEGORY",
]

#: Thread category for messenger workers (Ceph's "msgr-worker-" prefix).
MSGR_CATEGORY = "msgr-worker"

#: In-flight frames a connection keeps for retransmission.
_RESEND_DEPTH = 64
#: Retransmit attempts per frame before escalating to a reset.
_MAX_RETRANSMIT = 4
#: Receiver reorder-buffer bound (frames and gap span) before a reset.
_REORDER_LIMIT = 32
#: Flush timeout for a reorder-held frame with no follow-up traffic.
_REORDER_FLUSH = 0.005


@dataclass(frozen=True, slots=True)
class MessengerCostModel:
    """CPU costs of messenger-internal work (beyond the TCP stack)."""

    encode_fixed: float = 1.5e-6
    """Per-message encode cost: header assembly, bufferlist builder."""

    decode_fixed: float = 2.0e-6
    """Per-message decode cost: header parse, message construction."""

    crc_bandwidth: float = 6.0e9
    """Payload checksum throughput, bytes/s (crc32c over data)."""

    dispatch_fixed: float = 1.0e-6
    """Cost of fast-dispatching a decoded message to the dispatcher."""

    def encode_cpu(self, wire_bytes: int) -> float:
        return self.encode_fixed + wire_bytes / self.crc_bandwidth

    def decode_cpu(self, wire_bytes: int) -> float:
        return self.decode_fixed + wire_bytes / self.crc_bandwidth


class Dispatcher(Protocol):
    """Anything able to receive messages from a messenger."""

    def ms_dispatch(
        self, msg: Message, conn: "Connection"
    ) -> Generator[Any, Any, None]:
        """Handle ``msg`` (runs in the messenger worker's context; must
        be quick — heavy work belongs on the receiver's own threads)."""
        ...


class MsgrDirectory:
    """Address → messenger registry for one simulated fabric."""

    __slots__ = ("_endpoints",)

    def __init__(self) -> None:
        self._endpoints: dict[str, "AsyncMessenger"] = {}

    def register(self, address: str, messenger: "AsyncMessenger") -> None:
        if address in self._endpoints:
            raise ValueError(f"messenger address in use: {address}")
        self._endpoints[address] = messenger

    def lookup(self, address: str) -> "AsyncMessenger":
        try:
            return self._endpoints[address]
        except KeyError:
            raise ValueError(f"no messenger at address: {address}") from None


class WireFrame:
    """One encoded message on the wire, with its integrity metadata.

    ``seq``/``epoch``/``crc`` ride conceptually inside the existing
    33-byte ``WIRE_OVERHEAD`` (banner/header/trailer), so frame sizes
    and CPU charges are unchanged.  ``crc`` is ``None`` when no
    adversary is armed on the sender — the comparison would be
    tautological, so neither side computes it.
    """

    __slots__ = (
        "seq",
        "epoch",
        "crc",
        "bl",
        "attachment",
        "wire",
        "span",
        "span_open",
        "attempts",
        "retx",
    )

    def __init__(
        self,
        seq: int,
        epoch: int,
        crc: Optional[int],
        bl: BufferList,
        attachment: Any,
        wire: int,
        span: Any,
    ) -> None:
        self.seq = seq
        self.epoch = epoch
        self.crc = crc
        self.bl = bl
        self.attachment = attachment
        self.wire = wire
        self.span = span
        self.span_open = span is not None
        self.attempts = 0
        #: delivered again after a nack or reset: the originating spans
        #: are closed by now, so the late copy is dispatched traceless
        self.retx = False

    def __repr__(self) -> str:
        return f"<WireFrame seq={self.seq} epoch={self.epoch} wire={self.wire}>"


class _RxState:
    """Receive-side stream state for one peer (socket-level, so it dies
    with the daemon on shutdown, unlike the Connection object map)."""

    __slots__ = ("epoch", "seq", "reorder")

    def __init__(self) -> None:
        self.epoch = 0
        self.seq = 0
        #: out-of-order frames parked until the gap fills:
        #: seq -> (frame, bl-as-delivered, recv_span)
        self.reorder: dict[int, tuple] = {}


class Connection:
    """One ordered, bidirectional peer link (as seen from one side)."""

    __slots__ = (
        "messenger",
        "peer_addr",
        "worker",
        "_wire_queue",
        "_pump",
        "messages_sent",
        "bytes_sent",
        "send_seq",
        "epoch",
        "peer_acked",
        "_resend",
        "_dropped",
        "_consec_drops",
        "_held",
    )

    def __init__(
        self,
        messenger: "AsyncMessenger",
        peer_addr: str,
        worker: "_Worker",
    ) -> None:
        self.messenger = messenger
        self.peer_addr = peer_addr
        self.worker = worker
        self._wire_queue: Store = Store(messenger.env)
        self._pump = _WirePump(self)
        self.messages_sent = 0
        self.bytes_sent = 0
        # wire-integrity state
        self.send_seq = 0
        self.epoch = messenger._next_epoch()
        #: highest in-order seq the peer has reported back via nack
        self.peer_acked = 0
        #: bounded in-flight window kept for retransmission: seq -> frame
        self._resend: dict[int, WireFrame] = {}
        #: seqs the wire consumed (partition drops): nacks for these are
        #: answered with a hole-skip, not a replay of stale history
        self._dropped: set[int] = set()
        self._consec_drops = 0
        #: frame held back by the reorder adversary, if any
        self._held: Optional[WireFrame] = None

    def send(self, msg: Message) -> None:
        """Queue ``msg`` for transmission (returns immediately; the
        worker and wire pump do the rest in order)."""
        self.worker.enqueue(("send", self, msg))

    def _queue_frame(
        self, bl: BufferList, msg: Message, wire: int, send_span: Any
    ) -> None:
        """Stamp integrity metadata and hand the frame to the pump
        (worker send context; pure computation, no events)."""
        self.send_seq += 1
        crc = bl.crc32() if self.messenger.adversary is not None else None
        frame = WireFrame(
            self.send_seq, self.epoch, crc, bl, msg.attachment, wire,
            send_span,
        )
        self._resend[frame.seq] = frame
        if len(self._resend) > _RESEND_DEPTH:
            del self._resend[next(iter(self._resend))]
        self._wire_queue.put(frame)

    def _finish_delivery(
        self, frame: WireFrame, bl: Optional[BufferList] = None
    ) -> None:
        """Land ``frame`` in the peer's kernel receive buffer.  ``bl``
        overrides the delivered bytes (adversary mutation) without
        touching the pristine copy in the resend window."""
        msgr = self.messenger
        if msgr.down or msgr._connections.get(self.peer_addr) is not self:
            # the daemon died (or reconnected) while this frame was in
            # flight on a detached jitter/flush process
            return
        if frame.span is not None and frame.span_open:
            frame.span.finish(msgr.env.now)
            frame.span_open = False
        peer = msgr.directory.lookup(self.peer_addr)
        peer._enqueue_incoming(
            msgr.address, frame, bl if bl is not None else frame.bl
        )
        self.messages_sent += 1
        self.bytes_sent += frame.wire

    def _release_held(self) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            self._finish_delivery(held)

    def _flush_held(
        self, frame: WireFrame, delay: float
    ) -> Generator[Any, Any, None]:
        yield self.messenger.env.timeout(delay)
        if self._held is frame:
            self._held = None
            self._finish_delivery(frame)

    def _deliver_late(
        self, frame: WireFrame, delay: float
    ) -> Generator[Any, Any, None]:
        yield self.messenger.env.timeout(delay)
        self._finish_delivery(frame)

    # -- reverse control channel (called by the receiving messenger) ------

    def handle_nack(self, missing_seq: int, acked_seq: int) -> None:
        """Peer reports ``missing_seq`` absent with everything through
        ``acked_seq`` delivered: retransmit from the in-flight window,
        or reset the connection when the budget/window is exhausted."""
        msgr = self.messenger
        if msgr.down:
            return
        if acked_seq > self.peer_acked:
            self.peer_acked = acked_seq
            self._dropped = {s for s in self._dropped if s > acked_seq}
        frame = self._resend.get(missing_seq)
        if frame is None:
            if missing_seq in self._dropped:
                # the wire consumed this frame; tell the peer to give up
                # on the hole instead of replaying stale history
                self._dropped.discard(missing_seq)
                try:
                    peer = msgr.directory.lookup(self.peer_addr)
                except ValueError:
                    return
                peer._skip_seq(msgr.address, missing_seq)
                return
            # evicted from the window: the peer is too far behind
            self.reset()
            return
        if frame.attempts >= _MAX_RETRANSMIT:
            self.reset()
            return
        frame.attempts += 1
        frame.retx = True
        msgr._wire_count("retransmit")
        self._wire_queue.put(frame)

    def reset(self, resend: bool = True) -> None:
        """msgr-v2 style connection reset: bump the epoch, renumber the
        unacked in-flight window from 1, and resend it.  The peer adopts
        the new epoch on first contact and restarts its sequence state;
        message-level idempotency (tids, incarnation fencing) absorbs
        any re-delivery of frames it had already dispatched.

        With ``resend=False`` this is a *session* reset instead: the
        peer lost all connection state (daemon restart), so replaying
        pre-reset history would resurrect work the rest of the system
        has already given up on.  The queued window is dropped and the
        dispatcher's connect-fault hook is poked so message-level retry
        recovers — matching Ceph's reset-on-peer-session-loss policy."""
        msgr = self.messenger
        msgr._wire_count("reset")
        self.epoch = msgr._next_epoch()
        pending = [
            frame for seq, frame in sorted(self._resend.items())
            if seq > self.peer_acked
        ]
        self._resend = {}
        self._dropped.clear()
        self.send_seq = 0
        self.peer_acked = 0
        self._held = None
        if resend:
            for frame in pending:
                self.send_seq += 1
                frame.seq = self.send_seq
                frame.epoch = self.epoch
                frame.attempts = 0
                frame.retx = True
                self._resend[frame.seq] = frame
                self._wire_queue.put(frame)
            return
        if pending:
            msgr._wire_count("session_drop")
            hook = getattr(msgr.dispatcher, "ms_handle_connect_fault", None)
            if hook is not None:
                hook(self.peer_addr)
        for frame in pending:
            if frame.span_open:
                frame.span.tag("dropped", "session-reset")
                frame.span.finish(msgr.env.now)
                frame.span_open = False

    def __repr__(self) -> str:
        return f"<Connection {self.messenger.address} -> {self.peer_addr}>"


class _WirePump(Machine):
    """Flattened wire pump: streams encoded frames through the NIC in
    FIFO order, modelling the kernel socket buffer draining.

    Replaces the ``Connection._wire_pump`` generator (the second-hottest
    process type) with a state machine.  :meth:`Network.deliver`'s tx
    loop is inlined — chunk the frame through the sender's tx pipe,
    spawn an :class:`~repro.hw.net._RxChunk` per chunk, join them in
    order, re-check partitions — with exact event parity (the dynamic
    tie-order probe and the golden digests pin this).  Adversary
    branches stay on the existing synchronous helpers and cold generator
    processes (``_flush_held`` / ``_deliver_late``).

    Interruptible (messenger shutdown): maintains the Process duck-type
    fields at every park; an interrupt releases a held tx-pipe slot
    first, matching ``BandwidthPipe.transmit``'s ``finally`` unwinding,
    then completes — the generator's ``except Interrupt: return``.
    """

    __slots__ = (
        "conn",
        "_frame",
        "_tx_pipe",
        "_rx_pipe",
        "_latency",
        "_remaining",
        "_chunk",
        "_ser",
        "_req",
        "_rx_procs",
        "_rx_i",
    )

    def __init__(self, conn: Connection) -> None:
        msgr = conn.messenger
        super().__init__(
            msgr.env, f"wire:{msgr.address}->{conn.peer_addr}"
        )
        self.conn = conn
        self._init_interruptible()
        self._frame: Optional[WireFrame] = None
        self._req: Any = None
        # Reused across frames (PERF303: no per-frame list allocation).
        self._rx_procs: list = []
        self._start(self._s_kicked)

    def _s_kicked(self, event: Any) -> None:
        self._next_frame()

    def _next_frame(self) -> None:
        self._park(self.conn._wire_queue.get(), self._s_frame)

    def _s_frame(self, event: Any) -> None:
        frame = event._value
        self._frame = frame
        conn = self.conn
        msgr = conn.messenger
        net = msgr.stack.network
        src = msgr.stack.address
        dst = conn.peer_addr
        # -- net.deliver(src, dst, frame.wire), flattened --
        if src == dst:
            self._s_delivered(True)
            return
        if net._severed(src, dst, frame.wire):
            self._s_delivered(False)
            return
        self._tx_pipe = net.nic(src).tx
        self._rx_pipe = net.nic(dst).rx
        self._latency = net.latency_s
        self._remaining = frame.wire
        self._rx_procs.clear()
        self._rx_i = 0
        self._tx_next()

    def _tx_next(self) -> None:
        remaining = self._remaining
        if remaining <= 0:
            self._wait_rx()
            return
        tx = self._tx_pipe
        chunk_bytes = tx.chunk_bytes
        chunk = chunk_bytes if remaining > chunk_bytes else remaining
        ser = chunk * 8.0 / tx.bandwidth_bps
        injector = tx.fault_injector
        if injector is not None:
            spec = injector.fire(self.env.now, size=chunk)
            if spec is not None:
                ser *= spec.factor
                tx.degraded_chunks += 1
        self._chunk = chunk
        self._ser = ser
        req = tx._res.request()
        self._req = req
        self._park(req, self._s_tx_granted)

    def _s_tx_granted(self, event: Any) -> None:
        self._park(self.env.sleep(self._ser), self._s_tx_done)

    def _s_tx_done(self, event: Any) -> None:
        tx = self._tx_pipe
        tx._res.finish(self._req)
        self._req = None
        chunk = self._chunk
        tx.bytes_transferred += chunk
        tx.busy_time += self._ser
        # chunks are spawned in order and the kernel breaks timer ties
        # FIFO, so per-connection ordering is preserved
        self._rx_procs.append(
            _RxChunk(self.env, self._rx_pipe, chunk, self._latency)
        )
        self._remaining = self._remaining - chunk
        self._tx_next()

    def _wait_rx(self) -> None:
        procs = self._rx_procs
        i = self._rx_i
        n = len(procs)
        while i < n:
            proc = procs[i]
            i += 1
            if proc.callbacks is not None:
                self._rx_i = i
                self._park(proc, self._s_rx_done)
                return
        procs.clear()
        conn = self.conn
        msgr = conn.messenger
        frame = self._frame
        severed = msgr.stack.network._severed(
            msgr.stack.address, conn.peer_addr, frame.wire
        )
        self._s_delivered(not severed)

    def _s_rx_done(self, event: Any) -> None:
        self._wait_rx()

    def _s_delivered(self, delivered: bool) -> None:
        conn = self.conn
        frame = self._frame
        self._frame = None
        msgr = conn.messenger
        if delivered is False:
            # a network partition ate the bytes on the wire; the frame
            # is gone for good (message-level retry is the recovery
            # path), so take it out of the resend window and remember
            # the hole for nack handling
            conn._resend.pop(frame.seq, None)
            conn._dropped.add(frame.seq)
            msgr.messages_dropped += 1
            conn._consec_drops += 1
            if frame.span is not None and frame.span_open:
                frame.span.tag("dropped", "partition")
                frame.span.error(msgr.env.now, "partition")
                frame.span_open = False
            # tell the dispatcher its peer is unreachable, so retry
            # loops fail fast instead of waiting out a reply the
            # partition already ate
            hook = getattr(msgr.dispatcher, "ms_handle_connect_fault", None)
            if hook is not None:
                msgr._wire_count("connect_fault")
                hook(conn.peer_addr)
            self._next_frame()
            return
        conn._consec_drops = 0
        adversary = msgr.adversary
        spec = None
        if adversary is not None:
            spec = adversary.action(msgr.env.now, frame.wire)
        if spec is None:
            conn._finish_delivery(frame)
            conn._release_held()
            self._next_frame()
            return
        kind = spec.kind
        if kind == "dup":
            conn._finish_delivery(frame)
            conn._finish_delivery(frame)
            conn._release_held()
        elif kind == "reorder" and conn._held is None:
            # held until the next frame passes it (or the flush timer
            # fires) — a reorder window of one frame
            conn._held = frame
            msgr.env.process(
                conn._flush_held(frame, spec.delay or _REORDER_FLUSH),
                name=f"wire-flush:{msgr.stack.address}->{conn.peer_addr}",
            )
        elif kind == "jitter":
            msgr.env.process(
                conn._deliver_late(frame, spec.delay),
                name=f"wire-jitter:{msgr.stack.address}->{conn.peer_addr}",
            )
        elif kind == "corrupt":
            conn._finish_delivery(frame, adversary.corrupted(frame.bl))
            conn._release_held()
        elif kind == "truncate":
            conn._finish_delivery(frame, adversary.truncated(frame.bl))
            conn._release_held()
        else:  # a second reorder while one frame is already held
            conn._finish_delivery(frame)
            conn._release_held()
        self._next_frame()

    def _on_interrupt(self, exc: Interrupt) -> None:
        # messenger shutdown: socket buffer discarded with the daemon.
        # Release a held tx-pipe slot first — parity with the transmit
        # generator's `finally` unwinding as the Interrupt propagated.
        req = self._req
        if req is not None:
            self._req = None
            self._tx_pipe._res.finish(req)
        self._finish(None)


class _Worker:
    """One msgr-worker thread: serial event loop over its connections."""

    __slots__ = ("messenger", "index", "thread", "queue", "proc")

    def __init__(self, messenger: "AsyncMessenger", index: int) -> None:
        self.messenger = messenger
        self.index = index
        self.thread = SimThread(
            messenger.stack.cpu,
            f"{messenger.name}.msgr-worker-{index}",
            MSGR_CATEGORY,
        )
        self.queue: Store = Store(messenger.env)
        self.proc = messenger.env.process(
            self._loop(), name=f"{messenger.name}.msgr-worker-{index}"
        )

    def enqueue(self, item: tuple) -> None:
        # Store.put on an unbounded store succeeds synchronously; the
        # returned event is consumed by the loop's get.
        self.queue.put(item)

    def _loop(self) -> Generator[Any, Any, None]:
        msgr = self.messenger
        tcp = msgr.stack.tcp
        cost = msgr.cost
        thread = self.thread
        while True:
            item = yield self.queue.get()
            if msgr.down:
                # daemon is dead: every queued or newly arriving item is
                # dropped on the floor, like a closed socket
                msgr.messages_dropped += 1
                if item[0] == "recv" and item[2].span is not None:
                    item[2].span.tag("dropped", "daemon-down")
                continue
            kind = item[0]
            if kind == "send":
                _, conn, msg = item
                ctx = msg.span_ctx
                bl = msg.encode()
                wire = len(bl) + _WIRE_OVERHEAD
                send_span = None
                if ctx is not None:
                    send_span = ctx.start_span(
                        "msgr.send", msgr.env.now, thread=thread,
                        nbytes=wire,
                    )
                    send_span.tag("msg", type(msg).__name__)
                    send_span.tag("peer", conn.peer_addr)
                    # replies carry the span of the work that produced
                    # them (osd.op / osd.repop); the link lets the
                    # critical-path walk cross from the reply wire back
                    # into that processing span
                    origin = msg.origin_span
                    if origin is not None:
                        send_span.link(origin, "follows")
                send_cpu, _, send_ctx, _ = tcp.costs(wire)
                yield from thread.charge(cost.encode_cpu(wire))
                yield from thread.charge(send_cpu)
                yield from thread.ctx_switch(send_ctx)
                conn._queue_frame(bl, msg, wire, send_span)
                msgr.messages_sent += 1
                msgr.bytes_sent += wire
            elif kind == "recv":
                _, src_addr, frame, bl = item
                sender_span = None if frame.retx else frame.span
                recv_span = None
                if sender_span is not None and sender_span.parent is not None:
                    recv_span = sender_span.tracer.start_span(
                        "msgr.recv", msgr.env.now,
                        parent=sender_span.parent, thread=thread,
                        nbytes=frame.wire,
                    )
                    recv_span.link(sender_span, "follows")
                # epoll wakeup + kernel receive path
                _, recv_cpu, _, recv_ctx = tcp.costs(frame.wire)
                yield from thread.ctx_switch(recv_ctx)
                yield from thread.charge(recv_cpu)
                yield from thread.charge(cost.decode_cpu(frame.wire))
                # -- wire integrity: pure computation, so the in-order
                # uncorrupted path adds zero events over the old code --
                rx = msgr._rx_state(src_addr)
                if frame.epoch != rx.epoch:
                    if frame.epoch < rx.epoch:
                        # pre-reset straggler from a dead stream
                        msgr._wire_count("stale_drop")
                        if recv_span is not None:
                            recv_span.tag("dropped", "stale-epoch")
                            recv_span.finish(msgr.env.now)
                        continue
                    # peer reset (or first contact): fresh stream state
                    if rx.epoch:
                        msgr._wire_count("reset_seen")
                    rx.epoch = frame.epoch
                    rx.seq = 0
                    rx.reorder.clear()
                if frame.seq <= rx.seq:
                    # duplicate / replay of an already-delivered frame
                    msgr._wire_count("dup_suppressed")
                    if recv_span is not None:
                        recv_span.tag("dropped", "duplicate")
                        recv_span.finish(msgr.env.now)
                    continue
                if (
                    frame.crc is not None
                    and msgr.verify_frames
                    and frame.crc != bl.crc32()
                ):
                    msgr._wire_count("crc_rejected")
                    if recv_span is not None:
                        recv_span.tag("dropped", "crc-mismatch")
                        recv_span.error(msgr.env.now, "crc-mismatch")
                    msgr._request_retransmit(src_addr, rx, frame.seq)
                    continue
                if frame.seq > rx.seq + 1:
                    # sequence gap: park the frame, nack the holes
                    gap = frame.seq - rx.seq - 1
                    if gap > _REORDER_LIMIT or len(rx.reorder) >= _REORDER_LIMIT:
                        msgr._wire_count("reset_requested")
                        rx.reorder.clear()
                        if recv_span is not None:
                            recv_span.tag("dropped", "reorder-overflow")
                            recv_span.error(msgr.env.now, "reorder-overflow")
                        msgr._request_reset(src_addr, rx)
                        continue
                    msgr._wire_count("gap")
                    if frame.seq not in rx.reorder:
                        rx.reorder[frame.seq] = (frame, bl, recv_span)
                    elif recv_span is not None:
                        recv_span.tag("dropped", "duplicate")
                        recv_span.finish(msgr.env.now)
                    for missing in range(rx.seq + 1, frame.seq):
                        if missing not in rx.reorder:
                            msgr._request_retransmit(src_addr, rx, missing)
                    # partition-consumed holes are skipped synchronously
                    # via the control channel; drain whatever that just
                    # made contiguous
                    while (rx.seq + 1) in rx.reorder:
                        rx.seq += 1
                        nxt, nbl, nspan = rx.reorder.pop(rx.seq)
                        if nspan is not None:
                            nspan.tag("reordered", "buffered")
                        yield from self._deliver(src_addr, nxt, nbl, nspan)
                    continue
                # in-order: dispatch, then drain any parked successors
                rx.seq = frame.seq
                yield from self._deliver(src_addr, frame, bl, recv_span)
                while (rx.seq + 1) in rx.reorder:
                    rx.seq += 1
                    nxt, nbl, nspan = rx.reorder.pop(rx.seq)
                    if nspan is not None:
                        nspan.tag("reordered", "buffered")
                    yield from self._deliver(src_addr, nxt, nbl, nspan)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown worker item: {item!r}")

    def _deliver(
        self, src_addr: str, frame: WireFrame, bl: BufferList, recv_span: Any
    ) -> Generator[Any, Any, None]:
        """Decode + dispatch one integrity-checked frame (the receive
        charges were paid when its bytes arrived)."""
        msgr = self.messenger
        cost = msgr.cost
        thread = self.thread
        try:
            msg = decode_message(bl, frame.attachment)
        except EncodeError:
            # truncated frame reached decode (verification disabled or a
            # mangled header slipping past the blob-tagged CRC)
            msgr._wire_count("decode_error")
            if recv_span is not None:
                recv_span.tag("dropped", "decode-error")
                recv_span.error(msgr.env.now, "decode-error")
            return
        if recv_span is not None:
            recv_span.tag("msg", type(msg).__name__)
            msg.span_ctx = frame.span.parent.context  # type: ignore[attr-defined]
        msgr.messages_received += 1
        msgr.bytes_received += frame.wire
        if msgr.throttle is not None:
            yield msgr.throttle.get(max(1, frame.wire))
            msg.throttle_release = _release_once(msgr.throttle, max(1, frame.wire))  # type: ignore[attr-defined]
        yield from thread.charge(cost.dispatch_fixed)
        conn = msgr.connect(src_addr)
        dispatcher = msgr.dispatcher
        if dispatcher is not None:
            yield from dispatcher.ms_dispatch(msg, conn)
        if recv_span is not None:
            recv_span.finish(msgr.env.now)


def _release_once(throttle: Container, amount: int) -> Callable[[], None]:
    released = [False]

    def release() -> None:
        if not released[0]:
            released[0] = True
            throttle.put(amount)

    return release


_WIRE_OVERHEAD = 33  # keep in sync with message.WIRE_OVERHEAD


class AsyncMessenger:
    """Messenger instance bound to one :class:`NetStack`.

    Parameters
    ----------
    stack:
        Where this messenger lives (host stack for Baseline, DPU stack
        for DoCeph — this single argument is the paper's architectural
        change).
    name:
        Instance name, e.g. ``"osd.0"``.
    directory:
        Shared address registry for the fabric.
    workers:
        msgr-worker thread count (Ceph default 3).
    throttle_bytes:
        Dispatch throttle capacity; ``None`` disables throttling.
    """

    __slots__ = (
        "stack",
        "name",
        "directory",
        "cost",
        "dispatcher",
        "_workers",
        "_connections",
        "_conn_counter",
        "throttle",
        "down",
        "messages_sent",
        "messages_received",
        "bytes_sent",
        "bytes_received",
        "messages_dropped",
        "adversary",
        "_rx",
        "_epoch_counter",
        "wire_stats",
    )

    #: Test-only escape hatch: class-level flag disabling frame CRC
    #: verification, proving the *defense* (not the adversary's absence)
    #: is what holds the durability invariant.
    verify_frames = True

    def __init__(
        self,
        stack: NetStack,
        name: str,
        directory: MsgrDirectory,
        workers: int = 3,
        cost: MessengerCostModel | None = None,
        throttle_bytes: Optional[int] = 256 * 1024 * 1024,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one messenger worker")
        self.stack = stack
        self.name = name
        self.directory = directory
        self.cost = cost or MessengerCostModel()
        self.dispatcher: Optional[Dispatcher] = None
        directory.register(stack.address, self)

        self._workers = [_Worker(self, i) for i in range(workers)]
        self._connections: dict[str, Connection] = {}
        self._conn_counter = 0

        self.throttle: Optional[Container] = None
        if throttle_bytes is not None:
            self.throttle = Container(
                stack.env, capacity=throttle_bytes, init=throttle_bytes
            )

        #: ``True`` while the owning daemon is down; set by
        #: :meth:`shutdown` / cleared by :meth:`startup`.
        self.down = False

        #: Wire adversary armed by :meth:`FaultPlan.attach_msgr`
        #: (``None`` keeps the whole integrity layer event-free).
        self.adversary: Optional[Any] = None
        #: per-source receive stream state (socket-level; dies with the
        #: daemon, unlike the lazily rebuilt Connection map)
        self._rx: dict[str, _RxState] = {}
        self._epoch_counter = 0
        #: wire-integrity incident counters (crc_rejected,
        #: dup_suppressed, gap, retransmit, reset, ...)
        self.wire_stats: dict[str, int] = {}

        # statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_dropped = 0

    @property
    def env(self) -> Environment:
        return self.stack.env

    @property
    def address(self) -> str:
        return self.stack.address

    def register_dispatcher(self, dispatcher: Dispatcher) -> None:
        """Set the entity that receives inbound messages."""
        self.dispatcher = dispatcher

    def shutdown(self) -> None:
        """Tear down every connection, as when the owning daemon dies.

        Outbound bytes still in wire pumps are lost; queued worker items
        are drained and dropped; inbound messages are refused until
        :meth:`startup`.  Idempotent.
        """
        if self.down:
            return
        self.down = True
        for conn in self._connections.values():
            if conn._pump.is_alive:
                conn._pump.interrupt("messenger shutdown")
        # old connections (and their wire queues, which may hold stale
        # waiters) are abandoned; startup() recreates them lazily
        self._connections.clear()
        # kernel socket state dies with the daemon; survivors' streams
        # re-handshake via the epoch-adoption path on first contact
        self._rx.clear()

    def startup(self) -> None:
        """Accept traffic again after :meth:`shutdown` (fresh
        connections are created lazily on first use)."""
        self.down = False

    def connect(self, peer_addr: str) -> Connection:
        """Get (or lazily create) the ordered connection to a peer.

        New connections are assigned to workers round-robin, as in
        Ceph's AsyncMessenger.
        """
        conn = self._connections.get(peer_addr)
        if conn is None:
            worker = self._workers[self._conn_counter % len(self._workers)]
            self._conn_counter += 1
            conn = Connection(self, peer_addr, worker)
            self._connections[peer_addr] = conn
        return conn

    def send_message(self, msg: Message, peer_addr: str) -> None:
        """Send ``msg`` to the messenger at ``peer_addr``."""
        if self.down:
            self.messages_dropped += 1
            return
        msg.src = self.address
        self.connect(peer_addr).send(msg)

    def _enqueue_incoming(
        self,
        src_addr: str,
        frame: WireFrame,
        bl: BufferList,
    ) -> None:
        """Called by the sender's wire pump when bytes land in our
        kernel receive buffer: wake the owning worker."""
        if self.down:
            # nobody is listening on the socket
            self.messages_dropped += 1
            if frame.span is not None:
                frame.span.tag("dropped", "peer-down")
            return
        conn = self.connect(src_addr)
        conn.worker.enqueue(("recv", src_addr, frame, bl))

    # -- wire-integrity plumbing ------------------------------------------

    def _next_epoch(self) -> int:
        self._epoch_counter += 1
        return self._epoch_counter

    def _rx_state(self, src_addr: str) -> _RxState:
        rx = self._rx.get(src_addr)
        if rx is None:
            rx = self._rx[src_addr] = _RxState()
        return rx

    def _wire_count(self, key: str) -> None:
        self.wire_stats[key] = self.wire_stats.get(key, 0) + 1

    def _peer_conn(self, src_addr: str, rx: _RxState) -> Optional[Connection]:
        """The sender-side connection behind ``rx``'s stream, for the
        reverse control channel (models TCP's ack/SACK path riding the
        same established connection — hence no separate wire charge)."""
        try:
            sender = self.directory.lookup(src_addr)
        except ValueError:
            return None
        if sender.down:
            return None
        conn = sender._connections.get(self.address)
        if conn is None or conn.epoch != rx.epoch:
            return None
        return conn

    def _request_retransmit(
        self, src_addr: str, rx: _RxState, seq: int
    ) -> None:
        conn = self._peer_conn(src_addr, rx)
        if conn is not None:
            conn.handle_nack(seq, rx.seq)

    def _request_reset(self, src_addr: str, rx: _RxState) -> None:
        conn = self._peer_conn(src_addr, rx)
        if conn is not None:
            # rx.seq == 0 means we have no delivered history in this
            # epoch: the sender kept counting while we lost state (we
            # restarted) — a session reset, not an in-flight recovery
            conn.reset(resend=rx.seq > 0)

    def _skip_seq(self, src_addr: str, seq: int) -> None:
        """The sender declares ``seq`` gone for good (the wire consumed
        it): advance past the hole so parked successors can drain."""
        rx = self._rx.get(src_addr)
        if rx is not None and rx.epoch and rx.seq == seq - 1:
            rx.seq = seq
            self._wire_count("skip")

    def __repr__(self) -> str:
        return (
            f"<AsyncMessenger {self.name}@{self.address} "
            f"workers={len(self._workers)}>"
        )
