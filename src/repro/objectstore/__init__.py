"""ObjectStore interface, transactions, and the BlueStore backend."""

from .api import (
    NoSuchObject,
    ObjectStore,
    StatResult,
    StoreError,
    Transaction,
    TxnOp,
    TxnOpKind,
)
from .bluestore import (
    BSTORE_CATEGORY,
    BitmapAllocator,
    BlueStore,
    BlueStoreConfig,
    CommitInfo,
    Extent,
    KVStore,
    WriteBatch,
)

__all__ = [
    "BSTORE_CATEGORY",
    "BitmapAllocator",
    "BlueStore",
    "BlueStoreConfig",
    "CommitInfo",
    "Extent",
    "KVStore",
    "NoSuchObject",
    "ObjectStore",
    "StatResult",
    "StoreError",
    "Transaction",
    "TxnOp",
    "TxnOpKind",
    "WriteBatch",
]
