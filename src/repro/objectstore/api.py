"""The ObjectStore interface and Transaction type.

Ceph's OSD talks to its backend exclusively through the pluggable
``ObjectStore`` interface; BlueStore and FileStore are implementations.
DoCeph exploits exactly this seam: on the DPU it substitutes a
``ProxyObjectStore`` that forwards these calls to the host (§3.1).

A :class:`Transaction` is an ordered list of mutations applied
atomically.  Transactions encode to/decode from bufferlists because the
proxy serializes them for the RPC/DMA channels (§4: "the arguments are
serialized (e.g., collection ID, object handles, transaction data) into
a bufferlist").

All interface methods are generators: callers ``yield from`` them and
resume when the operation reaches its completion point (commit for
transactions, data availability for reads).  Each takes the calling
:class:`~repro.hw.cpu.SimThread` so CPU is billed to whoever executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Generator, Optional

from ..hw.cpu import SimThread
from ..util.bufferlist import BufferDecoder, BufferList, DataBlob

__all__ = [
    "TxnOpKind",
    "TxnOp",
    "Transaction",
    "ObjectStore",
    "StatResult",
    "StoreError",
    "NoSuchObject",
]


class StoreError(Exception):
    """Backend failure (bad transaction, missing collection, …)."""


class NoSuchObject(StoreError):
    """Stat/read of an object that does not exist."""


class TxnOpKind(IntEnum):
    """Mutation types a transaction may carry."""

    TOUCH = 1
    WRITE = 2
    TRUNCATE = 3
    REMOVE = 4
    SETATTR = 5
    OMAP_SET = 6
    CREATE_COLLECTION = 7


@dataclass
class TxnOp:
    """One mutation inside a transaction."""

    kind: TxnOpKind
    coll: str = ""
    oid: str = ""
    offset: int = 0
    length: int = 0
    data: Optional[DataBlob] = None
    key: str = ""
    value: bytes = b""


@dataclass
class Transaction:
    """An atomic batch of mutations (BlueStore commits all-or-nothing)."""

    ops: list[TxnOp] = field(default_factory=list)

    #: Optional :class:`repro.trace.SpanContext` set by the submitting
    #: layer; backends start their commit spans under it.  Not part of
    #: the wire encoding — the host proxy server re-attaches the context
    #: carried by the RPC request after decode.
    span_ctx: Any = field(default=None, compare=False, repr=False)

    # -- builders ----------------------------------------------------------
    def touch(self, coll: str, oid: str) -> "Transaction":
        self.ops.append(TxnOp(TxnOpKind.TOUCH, coll, oid))
        return self

    def write(
        self, coll: str, oid: str, offset: int, length: int, data: DataBlob
    ) -> "Transaction":
        if length != data.length:
            raise StoreError(
                f"write length {length} != blob length {data.length}"
            )
        self.ops.append(
            TxnOp(TxnOpKind.WRITE, coll, oid, offset=offset, length=length,
                  data=data)
        )
        return self

    def truncate(self, coll: str, oid: str, size: int) -> "Transaction":
        self.ops.append(TxnOp(TxnOpKind.TRUNCATE, coll, oid, length=size))
        return self

    def remove(self, coll: str, oid: str) -> "Transaction":
        self.ops.append(TxnOp(TxnOpKind.REMOVE, coll, oid))
        return self

    def setattr(self, coll: str, oid: str, key: str, value: bytes) -> "Transaction":
        self.ops.append(
            TxnOp(TxnOpKind.SETATTR, coll, oid, key=key, value=value)
        )
        return self

    def omap_set(self, coll: str, oid: str, key: str, value: bytes) -> "Transaction":
        self.ops.append(
            TxnOp(TxnOpKind.OMAP_SET, coll, oid, key=key, value=value)
        )
        return self

    def create_collection(self, coll: str) -> "Transaction":
        self.ops.append(TxnOp(TxnOpKind.CREATE_COLLECTION, coll))
        return self

    # -- introspection ------------------------------------------------------
    @property
    def data_len(self) -> int:
        """Total bulk payload bytes carried by WRITE ops."""
        return sum(op.length for op in self.ops if op.kind == TxnOpKind.WRITE)

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def data_blobs(self) -> list[DataBlob]:
        return [op.data for op in self.ops
                if op.kind == TxnOpKind.WRITE and op.data is not None]

    # -- serialization (for the proxy channels) ------------------------------
    def encode(self) -> BufferList:
        bl = BufferList()
        bl.encode_u32(len(self.ops))
        for op in self.ops:
            bl.encode_u8(int(op.kind))
            bl.encode_str(op.coll)
            bl.encode_str(op.oid)
            bl.encode_u64(op.offset)
            bl.encode_u64(op.length)
            bl.encode_str(op.key)
            bl.encode_bytes(op.value)
            bl.encode_bool(op.data is not None)
            if op.data is not None:
                bl.append_blob(op.data)
        return bl

    @classmethod
    def decode(cls, d: BufferDecoder) -> "Transaction":
        n = d.decode_u32()
        txn = cls()
        for _ in range(n):
            kind = TxnOpKind(d.decode_u8())
            coll = d.decode_str()
            oid = d.decode_str()
            offset = d.decode_u64()
            length = d.decode_u64()
            key = d.decode_str()
            value = d.decode_bytes()
            data = d.decode_blob() if d.decode_bool() else None
            txn.ops.append(
                TxnOp(kind, coll, oid, offset=offset, length=length,
                      data=data, key=key, value=value)
            )
        return txn


@dataclass(frozen=True)
class StatResult:
    """Result of a stat call."""

    size: int
    attrs: int  # number of xattrs
    version: int
    content_id: int = 0  # virtual-payload fingerprint (see bluestore.Onode)


class ObjectStore:
    """Abstract backend interface (the seam DoCeph proxies across).

    Implementations: :class:`~repro.objectstore.bluestore.BlueStore`
    (real backend, host) and
    :class:`~repro.core.proxy_objectstore.ProxyObjectStore` (DPU-side
    forwarder).
    """

    # -- data plane -------------------------------------------------------------
    def queue_transaction(
        self, txn: Transaction, thread: SimThread
    ) -> Generator[Any, Any, None]:
        """Apply ``txn``; resumes the caller at durable commit."""
        raise NotImplementedError

    def read(
        self,
        coll: str,
        oid: str,
        offset: int,
        length: int,
        thread: SimThread,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, DataBlob]:
        """Read ``length`` bytes at ``offset``; returns a data blob.

        ``span_ctx`` optionally parents the backend's read span."""
        raise NotImplementedError

    # -- control plane ---------------------------------------------------------
    def stat(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, StatResult]:
        """Object metadata; raises :class:`NoSuchObject` if missing."""
        raise NotImplementedError

    def exists(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, bool]:
        """Does the object exist?"""
        raise NotImplementedError

    def getattr(
        self, coll: str, oid: str, key: str, thread: SimThread
    ) -> Generator[Any, Any, bytes]:
        """Read one xattr; raises :class:`NoSuchObject` if missing."""
        raise NotImplementedError

    def list_objects(
        self, coll: str, thread: SimThread
    ) -> Generator[Any, Any, list[str]]:
        """All object names in a collection."""
        raise NotImplementedError
