"""BlueStore: bitmap allocator, embedded KV store, and the commit
pipeline (aio data writes + batched kv_sync WAL flushes)."""

from .allocator import AllocError, BitmapAllocator, Extent
from .kv import KVStore, WriteBatch
from .store import BSTORE_CATEGORY, BlueStore, BlueStoreConfig, CommitInfo

__all__ = [
    "AllocError",
    "BSTORE_CATEGORY",
    "BitmapAllocator",
    "BlueStore",
    "BlueStoreConfig",
    "CommitInfo",
    "Extent",
    "KVStore",
    "WriteBatch",
]
