"""Bitmap block allocator (BlueStore's default allocator family).

Tracks device space in fixed ``alloc_unit`` blocks using a real bitmap
(one bit per block, packed in a ``bytearray``).  Allocation is first-fit
from a roving hint — the same policy class as BlueStore's bitmap
allocator — returning possibly-fragmented extent lists.  Frees validate
double-free, and accounting invariants (free + used == capacity) are
enforced by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BitmapAllocator", "Extent", "AllocError"]


class AllocError(Exception):
    """Out of space, double free, or misaligned request."""


@dataclass(frozen=True)
class Extent:
    """A contiguous run of device blocks: byte ``offset`` + ``length``."""

    offset: int
    length: int


class BitmapAllocator:
    """First-fit bitmap allocator over ``capacity`` bytes."""

    def __init__(self, capacity: int, alloc_unit: int = 65536) -> None:
        if capacity <= 0 or alloc_unit <= 0:
            raise AllocError("capacity and alloc_unit must be positive")
        if capacity % alloc_unit:
            raise AllocError("capacity must be a multiple of alloc_unit")
        self.capacity = capacity
        self.alloc_unit = alloc_unit
        self.num_blocks = capacity // alloc_unit
        # bit set = used
        self._bitmap = bytearray((self.num_blocks + 7) // 8)
        self._free_blocks = self.num_blocks
        self._hint = 0

    # -- bit helpers -------------------------------------------------------------
    def _test(self, block: int) -> bool:
        return bool(self._bitmap[block >> 3] & (1 << (block & 7)))

    def _set(self, block: int) -> None:
        self._bitmap[block >> 3] |= 1 << (block & 7)

    def _clear(self, block: int) -> None:
        self._bitmap[block >> 3] &= ~(1 << (block & 7)) & 0xFF

    # -- public API -------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return self._free_blocks * self.alloc_unit

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    def allocate(self, nbytes: int) -> list[Extent]:
        """Allocate ≥ ``nbytes`` (rounded up to blocks) as extents.

        First-fit from the roving hint; wraps once.  Raises
        :class:`AllocError` when insufficient space remains (no partial
        allocation is left behind).
        """
        if nbytes <= 0:
            raise AllocError(f"allocation size must be positive: {nbytes}")
        want = -(-nbytes // self.alloc_unit)  # ceil div
        if want > self._free_blocks:
            raise AllocError(
                f"out of space: want {want} blocks, have {self._free_blocks}"
            )

        extents: list[Extent] = []
        got = 0
        num = self.num_blocks
        start = self._hint % num
        unit = self.alloc_unit
        bitmap = self._bitmap
        cur_start = -1
        cur_len = 0
        # First-fit scan from the hint, wrapping once: identical visit
        # order to a modulo walk over every block, but written as two
        # linear passes with inlined bit tests and a fast skip over
        # fully-used bytes (0xFF = 8 allocated blocks at once).  On a
        # mostly-full device the scan spends its time in that skip.
        for lo, hi in ((start, num), (0, start)):
            block = lo
            while block < hi and got < want:
                bit = block & 7
                byte = bitmap[block >> 3]
                if byte == 0xFF:
                    block += 8 - bit
                    continue
                if not byte & (1 << bit):
                    bitmap[block >> 3] = byte | (1 << bit)
                    got += 1
                    if block == cur_start + cur_len:
                        cur_len += 1
                    else:
                        if cur_start >= 0:
                            extents.append(
                                Extent(cur_start * unit, cur_len * unit)
                            )
                        cur_start, cur_len = block, 1
                block += 1
            if got == want:
                break
        if cur_start >= 0:
            extents.append(Extent(cur_start * unit, cur_len * unit))

        assert got == want, "free-block accounting violated"
        self._free_blocks -= want
        last = extents[-1]
        self._hint = (
            (last.offset + last.length) // self.alloc_unit
        ) % self.num_blocks
        return extents

    def free(self, extents: list[Extent]) -> None:
        """Return extents to the free pool (validates double-free)."""
        for e in extents:
            if e.offset % self.alloc_unit or e.length % self.alloc_unit:
                raise AllocError(f"misaligned extent: {e}")
            first = e.offset // self.alloc_unit
            count = e.length // self.alloc_unit
            if first + count > self.num_blocks:
                raise AllocError(f"extent out of range: {e}")
            bitmap = self._bitmap
            for b in range(first, first + count):
                mask = 1 << (b & 7)
                if not bitmap[b >> 3] & mask:
                    raise AllocError(f"double free at block {b}")
                bitmap[b >> 3] &= ~mask & 0xFF
            self._free_blocks += count

    def fragmentation(self) -> float:
        """Crude score: 1 - (largest free run / total free blocks)."""
        if self._free_blocks == 0:
            return 0.0
        largest = 0
        run = 0
        for b in range(self.num_blocks):
            if not self._test(b):
                run += 1
                largest = max(largest, run)
            else:
                run = 0
        return 1.0 - largest / self._free_blocks

    def __repr__(self) -> str:
        return (
            f"<BitmapAllocator {self.used_bytes}/{self.capacity} B used,"
            f" unit={self.alloc_unit}>"
        )
