"""Embedded ordered key-value store ("RocksDB-lite").

BlueStore keeps onodes, allocator state, and its write-ahead log in
RocksDB.  This module provides the semantics BlueStore needs from it —
ordered keys, prefix iteration, atomic write batches, and a WAL whose
*size* feeds the device-write cost model — implemented on a sorted key
list.  It is deterministic and dependency-free; the I/O cost of flushing
batches is charged by BlueStore itself (the KV store only reports byte
counts).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["KVStore", "WriteBatch"]


@dataclass
class WriteBatch:
    """An atomic batch of KV mutations."""

    puts: list[tuple[str, bytes]] = field(default_factory=list)
    deletes: list[str] = field(default_factory=list)

    def put(self, key: str, value: bytes) -> "WriteBatch":
        self.puts.append((key, value))
        return self

    def delete(self, key: str) -> "WriteBatch":
        self.deletes.append(key)
        return self

    @property
    def size_bytes(self) -> int:
        """Approximate WAL footprint of this batch."""
        return sum(len(k) + len(v) + 16 for k, v in self.puts) + sum(
            len(k) + 16 for k in self.deletes
        )

    def __len__(self) -> int:
        return len(self.puts) + len(self.deletes)


class KVStore:
    """Ordered in-memory KV with atomic batches and prefix scans."""

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self._keys: list[str] = []
        self.batches_committed = 0
        self.bytes_logged = 0

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, value: bytes) -> None:
        """Single-key convenience write (its own batch)."""
        self.commit(WriteBatch().put(key, value))

    def delete(self, key: str) -> None:
        self.commit(WriteBatch().delete(key))

    def commit(self, batch: WriteBatch) -> int:
        """Apply a batch atomically; returns its WAL byte footprint."""
        for key, value in batch.puts:
            if key not in self._data:
                insort(self._keys, key)
            self._data[key] = value
        for key in batch.deletes:
            if key in self._data:
                del self._data[key]
                idx = bisect_left(self._keys, key)
                del self._keys[idx]
        self.batches_committed += 1
        self.bytes_logged += batch.size_bytes
        return batch.size_bytes

    def iterate_prefix(self, prefix: str) -> Iterator[tuple[str, bytes]]:
        """All (key, value) pairs whose key starts with ``prefix``,
        in key order."""
        idx = bisect_left(self._keys, prefix)
        while idx < len(self._keys):
            key = self._keys[idx]
            if not key.startswith(prefix):
                break
            yield key, self._data[key]
            idx += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data
