"""BlueStore: the host-resident storage backend.

A behavioural model of Ceph's BlueStore with the moving parts the paper
measures:

* ``bstore_aio`` threads build transaction contexts: checksum the
  payload, allocate extents (real bitmap allocator), and issue the data
  write to the raw device — large writes go straight to their allocated
  extents (write-through), small writes are *deferred* into the WAL;
* a ``bstore_kv_sync`` thread batches transaction commits into RocksDB
  (the KV model) with one WAL flush per batch, then completes the
  waiting submitters — this is the durability point;
* object metadata lives in onodes, persisted through the KV store;
* all CPU burned here lands in the ``bstore`` accounting category —
  the slice of Figure 5 that *stays on the host* under DoCeph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ...hw.cpu import CpuComplex, SimThread
from ...hw.storage import SsdDevice
from ...sim import Environment, Event, Store
from ...util.bufferlist import DataBlob
from ...util.rng import hash_combine
from ..api import (
    NoSuchObject,
    ObjectStore,
    StatResult,
    StoreError,
    Transaction,
    TxnOpKind,
)
from .allocator import BitmapAllocator, Extent
from .kv import KVStore, WriteBatch

__all__ = ["BlueStore", "BlueStoreConfig", "BSTORE_CATEGORY"]

#: Thread category for BlueStore threads (Ceph's "bstore_" prefix).
BSTORE_CATEGORY = "bstore"


@dataclass(frozen=True)
class BlueStoreConfig:
    """Cost and policy constants for BlueStore."""

    device_capacity: int = 1 << 40
    """Usable capacity of the data device (1 TiB default)."""

    alloc_unit: int = 65536
    """Allocator block size (BlueStore's min_alloc_size for HDD/SSD)."""

    deferred_threshold: int = 65536
    """Writes at or below this size take the deferred (WAL) path."""

    csum_bandwidth: float = 5.0e9
    """crc32c throughput, bytes/s, charged per payload byte."""

    prep_cpu_per_op: float = 8.0e-6
    """Per-transaction-op CPU: txc build, onode update, encode."""

    alloc_cpu_per_extent: float = 1.5e-6
    """CPU per extent allocated/freed."""

    kv_commit_cpu: float = 12.0e-6
    """Per-transaction CPU in the kv_sync thread."""

    kv_batch_max: int = 16
    """Max transactions folded into one WAL flush."""

    onode_record_bytes: int = 512
    """Approximate KV footprint of one onode update."""

    submit_cpu: float = 3.0e-6
    """Cost on the *submitting* thread to enqueue a transaction."""

    control_cpu: float = 2.0e-6
    """Cost of a metadata lookup (stat/exists/getattr)."""

    read_cpu_per_byte: float = 1.0 / 12.0e9
    """Per-byte CPU on reads (checksum verify + copy-out)."""

    aio_threads: int = 2
    """Number of bstore_aio worker threads."""


@dataclass
class Onode:
    """In-memory object metadata (mirrors the KV-persisted record)."""

    size: int = 0
    version: int = 0
    attrs: dict[str, bytes] = field(default_factory=dict)
    omap: dict[str, bytes] = field(default_factory=dict)
    extents: list[Extent] = field(default_factory=list)
    allocated: int = 0  # bytes of device space held
    content_id: int = 0
    """Virtual-payload fingerprint: the simulation carries no real bytes,
    so this stands in for "what data is stored here".  A full overwrite
    adopts the written blob's root id; partial writes and truncates fold
    into the running fingerprint.  Replicas holding byte-identical data
    hold equal (size, content_id) pairs."""


@dataclass(frozen=True)
class CommitInfo:
    """What a committed transaction reports back to its submitter."""

    total_time: float
    """Submission → durable commit (includes pipeline queueing)."""

    device_time: float
    """Device busy time attributable to this transaction (direct data
    write + its share of the batched WAL flush) — the paper's
    'Host write' (time taken to write data to BlueStore)."""


@dataclass
class _Txc:
    """A transaction in flight through the commit pipeline."""

    txn: Transaction
    commit_event: Event
    deferred_bytes: int = 0
    submitted_at: float = 0.0
    committed_at: float = 0.0
    device_time: float = 0.0
    #: the transaction's trace span (None untraced); the aio/kv loops
    #: record pipeline milestones on it as span events
    span: Any = None


class BlueStore(ObjectStore):
    """The real backend; always runs on the host CPU complex."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cpu: CpuComplex,
        ssd: SsdDevice,
        config: Optional[BlueStoreConfig] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.cpu = cpu
        self.ssd = ssd
        self.config = config or BlueStoreConfig()

        self.kv = KVStore()
        self.allocator = BitmapAllocator(
            self.config.device_capacity, self.config.alloc_unit
        )
        self.collections: dict[str, dict[str, Onode]] = {}

        self._txc_queue: Store = Store(env)
        self._kv_queue: Store = Store(env)

        self._aio_threads = [
            SimThread(cpu, f"{name}.bstore_aio-{i}", BSTORE_CATEGORY)
            for i in range(self.config.aio_threads)
        ]
        self._kv_thread = SimThread(cpu, f"{name}.bstore_kv_sync", BSTORE_CATEGORY)
        for i, t in enumerate(self._aio_threads):
            env.process(self._aio_loop(t), name=f"{name}.bstore_aio-{i}")
        env.process(self._kv_sync_loop(), name=f"{name}.bstore_kv_sync")

        # statistics
        self.txns_committed = 0
        self.bytes_committed = 0
        self.deferred_txns = 0

    # ------------------------------------------------------------------ setup
    def mkfs(self) -> None:
        """Initialize the store (creates the meta collection)."""
        self.collections.setdefault("meta", {})

    def create_collection_sync(self, coll: str) -> None:
        """Synchronously create a collection (cluster bring-up helper)."""
        self.collections.setdefault(coll, {})

    # ---------------------------------------------------------------- data plane
    def queue_transaction(
        self, txn: Transaction, thread: SimThread
    ) -> Generator[Any, Any, "CommitInfo"]:
        """Submit a transaction; resumes at durable commit.

        Returns a :class:`CommitInfo` (total latency + attributable
        device time)."""
        yield from thread.charge(self.config.submit_cpu * max(1, txn.num_ops))
        span = None
        if txn.span_ctx is not None:
            span = txn.span_ctx.start_span(
                "bstore.commit", self.env.now, cpu=self.cpu.name,
                category=BSTORE_CATEGORY, thread_name=f"{self.name}.bstore",
                nbytes=txn.data_len,
            )
            span.tag("ops", txn.num_ops)
        txc = _Txc(txn, self.env.event(), submitted_at=self.env.now,
                   span=span)
        yield self._txc_queue.put(txc)
        try:
            yield txc.commit_event
        except StoreError:
            if span is not None:
                span.error(self.env.now, "store-error")
            raise
        if span is not None:
            span.finish(self.env.now)
        return CommitInfo(
            total_time=txc.committed_at - txc.submitted_at,
            device_time=txc.device_time,
        )

    def read(
        self,
        coll: str,
        oid: str,
        offset: int,
        length: int,
        thread: SimThread,
        span_ctx: Any = None,
    ) -> Generator[Any, Any, DataBlob]:
        span = None
        if span_ctx is not None:
            span = span_ctx.start_span(
                "bstore.read", self.env.now, cpu=self.cpu.name,
                category=BSTORE_CATEGORY, thread_name=f"{self.name}.bstore",
                nbytes=length,
            )
        try:
            onode = self._get_onode(coll, oid)
        except NoSuchObject:
            if span is not None:
                span.error(self.env.now, "enoent")
            raise
        if offset >= onode.size:
            if span is not None:
                span.nbytes = 0
                span.finish(self.env.now)
            return DataBlob(0)
        n = min(length, onode.size - offset)
        yield from thread.charge(
            self.config.control_cpu + n * self.config.read_cpu_per_byte
        )
        yield from self.ssd.read(n)
        if span is not None:
            span.nbytes = n
            span.finish(self.env.now)
        # the returned blob carries the stored content's identity, so a
        # full-object read pushed to another replica reproduces the same
        # content fingerprint there (recovery preserves bytes)
        if offset == 0 and n == onode.size and onode.content_id:
            return DataBlob(n, parent_id=onode.content_id)
        return DataBlob(n)

    # ---------------------------------------------------------------- control plane
    def stat(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, StatResult]:
        yield from thread.charge(self.config.control_cpu)
        onode = self._get_onode(coll, oid)
        return StatResult(size=onode.size, attrs=len(onode.attrs),
                          version=onode.version,
                          content_id=onode.content_id)

    def exists(
        self, coll: str, oid: str, thread: SimThread
    ) -> Generator[Any, Any, bool]:
        yield from thread.charge(self.config.control_cpu)
        objects = self.collections.get(coll)
        return objects is not None and oid in objects

    def getattr(
        self, coll: str, oid: str, key: str, thread: SimThread
    ) -> Generator[Any, Any, bytes]:
        yield from thread.charge(self.config.control_cpu)
        onode = self._get_onode(coll, oid)
        try:
            return onode.attrs[key]
        except KeyError:
            raise NoSuchObject(f"{coll}/{oid}: no attr {key!r}") from None

    def list_objects(
        self, coll: str, thread: SimThread
    ) -> Generator[Any, Any, list[str]]:
        objects = self.collections.get(coll)
        if objects is None:
            raise StoreError(f"no such collection: {coll}")
        yield from thread.charge(
            self.config.control_cpu * max(1, len(objects) // 64)
        )
        return sorted(objects)

    # ---------------------------------------------------------------- pipeline
    def _aio_loop(self, thread: SimThread) -> Generator[Any, Any, None]:
        cfg = self.config
        while True:
            txc: _Txc = yield self._txc_queue.get()
            yield from thread.ctx_switch()
            if txc.span is not None:
                txc.span.event(self.env.now, "aio_start")
            data_len = txc.txn.data_len
            # txc build + payload checksum
            yield from thread.charge(
                cfg.prep_cpu_per_op * max(1, txc.txn.num_ops)
                + data_len / cfg.csum_bandwidth
            )
            try:
                new_extents = self._apply_metadata(txc, thread)
            except StoreError as exc:
                # A bad transaction fails its submitter, not the pipeline.
                txc.commit_event.fail(exc)
                continue
            yield from thread.charge(cfg.alloc_cpu_per_extent * len(new_extents))
            direct = sum(
                op.length
                for op in txc.txn.ops
                if op.kind == TxnOpKind.WRITE
                and op.length > cfg.deferred_threshold
            )
            txc.deferred_bytes = data_len - direct
            if direct:
                t_io = self.env.now
                yield from self.ssd.write(direct)
                txc.device_time += self.env.now - t_io
            if txc.deferred_bytes:
                self.deferred_txns += 1
            yield from thread.ctx_switch()  # aio completion wakeup
            if txc.span is not None:
                txc.span.event(self.env.now, "kv_queued")
            yield self._kv_queue.put(txc)

    def _kv_sync_loop(self) -> Generator[Any, Any, None]:
        cfg = self.config
        thread = self._kv_thread
        while True:
            first: _Txc = yield self._kv_queue.get()
            batch = [first]
            while self._kv_queue.items and len(batch) < cfg.kv_batch_max:
                batch.append((yield self._kv_queue.get()))
            yield from thread.ctx_switch()
            yield from thread.charge(cfg.kv_commit_cpu * len(batch))

            wal = WriteBatch()
            wal_data = 0
            for txc in batch:
                wal_data += txc.deferred_bytes
                for op in txc.txn.ops:
                    if op.kind in (TxnOpKind.WRITE, TxnOpKind.TOUCH,
                                   TxnOpKind.SETATTR, TxnOpKind.OMAP_SET,
                                   TxnOpKind.TRUNCATE):
                        wal.put(self._onode_key(op.coll, op.oid),
                                b"\0" * cfg.onode_record_bytes)
                    elif op.kind == TxnOpKind.REMOVE:
                        wal.delete(self._onode_key(op.coll, op.oid))
            flush_bytes = wal.size_bytes + wal_data
            t_io = self.env.now
            yield from self.ssd.write(flush_bytes)
            flush_time = (self.env.now - t_io) / len(batch)
            self.kv.commit(wal)
            yield from thread.ctx_switch()  # flush completion wakeup

            for txc in batch:
                txc.device_time += flush_time
                txc.committed_at = self.env.now
                if txc.span is not None:
                    txc.span.event(self.env.now, "kv_commit")
                self.txns_committed += 1
                self.bytes_committed += txc.txn.data_len
                txc.commit_event.succeed()
                if txc.deferred_bytes:
                    # deferred data drains to its extents after commit
                    self.env.process(
                        self._deferred_apply(txc.deferred_bytes),
                        name=f"{self.name}.deferred",
                    )

    def _deferred_apply(self, nbytes: int) -> Generator[Any, Any, None]:
        yield from self.ssd.write(nbytes)

    # ---------------------------------------------------------------- mutations
    def _apply_metadata(self, txc: _Txc, thread: SimThread) -> list[Extent]:
        """Apply a transaction's metadata effects; returns new extents."""
        new_extents: list[Extent] = []
        for op in txc.txn.ops:
            if op.kind == TxnOpKind.CREATE_COLLECTION:
                self.collections.setdefault(op.coll, {})
                continue
            objects = self.collections.get(op.coll)
            if objects is None:
                raise StoreError(f"no such collection: {op.coll}")
            if op.kind == TxnOpKind.TOUCH:
                onode = objects.setdefault(op.oid, Onode())
                onode.version += 1
            elif op.kind == TxnOpKind.WRITE:
                onode = objects.setdefault(op.oid, Onode())
                prev_size = onode.size
                end = op.offset + op.length
                if end > onode.allocated:
                    grow = end - onode.allocated
                    extents = self.allocator.allocate(grow)
                    onode.extents.extend(extents)
                    onode.allocated += sum(e.length for e in extents)
                    new_extents.extend(extents)
                onode.size = max(onode.size, end)
                onode.version += 1
                root = op.data.root_id if op.data is not None else 0
                if op.offset == 0 and end >= prev_size:
                    # full overwrite: the object *is* this blob now
                    onode.content_id = root
                else:
                    onode.content_id = hash_combine(
                        onode.content_id,
                        f"w:{op.offset}:{op.length}:{root}",
                    )
            elif op.kind == TxnOpKind.TRUNCATE:
                onode = objects.setdefault(op.oid, Onode())
                onode.size = op.length
                onode.version += 1
                onode.content_id = hash_combine(
                    onode.content_id, f"t:{op.length}"
                )
            elif op.kind == TxnOpKind.REMOVE:
                onode = objects.pop(op.oid, None)
                if onode is None:
                    raise NoSuchObject(f"{op.coll}/{op.oid}")
                if onode.extents:
                    self.allocator.free(onode.extents)
            elif op.kind == TxnOpKind.SETATTR:
                onode = objects.setdefault(op.oid, Onode())
                onode.attrs[op.key] = op.value
                onode.version += 1
            elif op.kind == TxnOpKind.OMAP_SET:
                onode = objects.setdefault(op.oid, Onode())
                onode.omap[op.key] = op.value
                onode.version += 1
            else:  # pragma: no cover - exhaustive
                raise StoreError(f"unknown op kind: {op.kind}")
        return new_extents

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _onode_key(coll: str, oid: str) -> str:
        return f"O/{coll}/{oid}"

    def _get_onode(self, coll: str, oid: str) -> Onode:
        objects = self.collections.get(coll)
        if objects is None or oid not in objects:
            raise NoSuchObject(f"{coll}/{oid}")
        return objects[oid]

    def __repr__(self) -> str:
        return f"<BlueStore {self.name} txns={self.txns_committed}>"
