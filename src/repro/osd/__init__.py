"""The OSD daemon: dispatch, prioritized op queue, primary-copy
replication, heartbeats, monitor beacons, recovery, and scrubbing."""

from .daemon import OSD_CATEGORY, OsdConfig, OsdDaemon
from .opqueue import (
    CLIENT_OP,
    RECOVERY_OP,
    SCRUB_OP,
    STRICT_THRESHOLD,
    SUB_OP,
    QosSpec,
    WeightedPriorityQueue,
)
from .optracker import OpTracker, TrackedOp
from .pg import PlacementGroup
from .recovery import RecoveryManager
from .scrub import ScrubManager

__all__ = [
    "CLIENT_OP",
    "OSD_CATEGORY",
    "OsdConfig",
    "OsdDaemon",
    "OpTracker",
    "PlacementGroup",
    "QosSpec",
    "RECOVERY_OP",
    "RecoveryManager",
    "SCRUB_OP",
    "STRICT_THRESHOLD",
    "SUB_OP",
    "ScrubManager",
    "TrackedOp",
    "WeightedPriorityQueue",
]
