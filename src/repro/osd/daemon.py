"""The OSD daemon: request dispatch, primary-copy replication, recovery
hooks.

Thread structure mirrors Figure 2 of the paper:

* the messenger's ``msgr-worker`` threads fast-dispatch decoded messages
  into the OSD's op queue (steps ②–③);
* ``tp_osd_tp`` worker threads pop ops (step ④), do the PG-level
  processing, submit transactions to the ObjectStore (step ⑤) and issue
  replication messages back through the messenger (steps ⑥–⑧);
* commit completions are event-driven (Ceph's on_commit contexts):
  worker threads never block on I/O, so a small thread pool sustains
  deep client concurrency;
* once the local commit and every replica ack arrive, the client reply
  goes out (step ⑨).

The same daemon runs unmodified on the host (Baseline) or on the DPU
(DoCeph) — only the CPU complex behind its threads and the ObjectStore
behind ``self.store`` change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hw.cpu import SimThread
from ..msgr.heartbeat import HeartbeatAgent
from ..msgr.message import (
    Message,
    MOSDBeacon,
    MOSDOp,
    MOSDOpReply,
    MOSDPGPull,
    MOSDPGPush,
    MOSDPGPushReply,
    MOSDPing,
    MOSDRepOp,
    MOSDRepOpReply,
    MScrubDigest,
    MScrubReply,
    OpType,
)
from ..msgr.messenger import AsyncMessenger, Connection
from ..objectstore.api import NoSuchObject, ObjectStore, StoreError, Transaction
from ..rados.osdmap import OsdMap
from ..rados.types import PgId
from ..sim import AllOf, Event
from ..sim.exceptions import Interrupt
from ..sim.machine import Machine
from .optracker import OpTracker
from .opqueue import (
    CLIENT_OP,
    RECOVERY_OP,
    SCRUB_OP,
    SUB_OP,
    QosSpec,
    WeightedPriorityQueue,
)
from .pg import PlacementGroup
from .recovery import RecoveryManager
from .scrub import ScrubManager

__all__ = ["OsdDaemon", "OsdConfig", "OSD_CATEGORY"]

#: Thread category for OSD worker threads (Ceph's "tp_osd_tp").
OSD_CATEGORY = "tp_osd_tp"


@dataclass(frozen=True, slots=True)
class OsdConfig:
    """OSD thread counts and CPU cost constants."""

    op_threads: int = 2
    """tp_osd_tp worker count (Ceph osd_op_num_threads_per_shard × shards)."""

    dispatch_cpu: float = 1.5e-6
    """Fast-dispatch cost in the messenger worker (enqueue only)."""

    op_cpu: float = 15.0e-6
    """Per-client-op PG processing: pg lock, object context, op checks."""

    repop_cpu: float = 8.0e-6
    """Per-replicated-op processing on a replica."""

    reply_cpu: float = 4.0e-6
    """Building and queueing the client reply."""

    heartbeat_interval: float = 1.0
    """Peer ping period in seconds."""


class _InFlightWrite:
    """Tracks one client write until commit + all replica acks."""

    __slots__ = ("ack_events", "_next", "failed")

    def __init__(self, needed_acks: int, env: Any) -> None:
        self.ack_events: list[Event] = [env.event() for _ in range(needed_acks)]
        self._next = 0
        #: a replica reported it could not persist the sub-op: the op
        #: must fail to the client (acking a write that some replica
        #: does not hold silently breaks durability)
        self.failed = False

    def ack(self, ok: bool = True) -> None:
        if not ok:
            self.failed = True
        self.ack_events[self._next].succeed()
        self._next += 1


class OsdDaemon:
    """One Object Storage Daemon."""

    __slots__ = (
        "osd_id",
        "name",
        "messenger",
        "store",
        "osdmap",
        "config",
        "env",
        "pgs",
        "member_pgs",
        "_op_queue",
        "_op_threads",
        "_completion_thread",
        "_op_procs",
        "_repop_tid",
        "_inflight",
        "heartbeat",
        "recovery",
        "scrub",
        "tracker",
        "alive",
        "incarnation",
        "_beacon_proc",
        "_beacon_cfg",
        "_hb_cfg",
        "_recovery_cfg",
        "_scrub_cfg",
        "_down_handled",
        "client_ops",
        "repops",
        "bytes_written",
        "bytes_read",
        "crashes",
        "restarts",
        "rejoins",
        "misdirected_ops",
        "objects_discarded",
        "_qos_specs",
    )

    def __init__(
        self,
        osd_id: int,
        messenger: AsyncMessenger,
        store: ObjectStore,
        osdmap: OsdMap,
        config: Optional[OsdConfig] = None,
    ) -> None:
        self.osd_id = osd_id
        self.name = f"osd.{osd_id}"
        self.messenger = messenger
        self.store = store
        self.osdmap = osdmap
        self.config = config or OsdConfig()
        self.env = messenger.env

        messenger.register_dispatcher(self)

        self.pgs: dict[PgId, PlacementGroup] = {}
        #: PGs whose data this OSD holds (drives recovery detection).
        self.member_pgs: set[PgId] = set()
        self._op_queue = WeightedPriorityQueue(self.env, seed=osd_id)
        cpu = messenger.stack.cpu
        self._op_threads = [
            SimThread(cpu, f"{self.name}.tp_osd_tp-{i}", OSD_CATEGORY)
            for i in range(self.config.op_threads)
        ]
        self._completion_thread = SimThread(
            cpu, f"{self.name}.tp_osd_tp-complete", OSD_CATEGORY
        )
        self._op_procs = [
            _OpLoop(self, t, f"{self.name}.tp_osd_tp-{i}")
            for i, t in enumerate(self._op_threads)
        ]

        self._repop_tid = 0
        self._inflight: dict[int, _InFlightWrite] = {}
        self.heartbeat: Optional[HeartbeatAgent] = None
        self.recovery: Optional[RecoveryManager] = None
        self.scrub: Optional[ScrubManager] = None
        self.tracker: Optional[OpTracker] = None

        # lifecycle: crash() flips alive and bumps incarnation so that
        # completions spawned before the crash cannot speak for the
        # restarted daemon
        self.alive = True
        self.incarnation = 0
        self._beacon_proc: Optional[Any] = None
        self._beacon_cfg: Optional[tuple[str, float]] = None
        self._hb_cfg: Optional[dict[str, Any]] = None
        self._recovery_cfg: Optional[tuple[list[str], float]] = None
        self._scrub_cfg: Optional[tuple[list[str], float]] = None
        #: set once the daemon has resynced after being marked down, so
        #: a partition-rejoin (no crash) also discards its stale copies
        self._down_handled = True
        #: tenant -> QosSpec, survives crash/restart (config, not state)
        self._qos_specs: dict[str, QosSpec] = {}

        # statistics
        self.client_ops = 0
        self.repops = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.crashes = 0
        self.restarts = 0
        self.rejoins = 0
        self.misdirected_ops = 0
        self.objects_discarded = 0

    # ---------------------------------------------------------------- lifecycle
    def activate_pgs(self, pool_name: str) -> Generator[Any, Any, None]:
        """Create local state (and backing collections) for every PG this
        OSD participates in.  Run at cluster bring-up."""
        txn = Transaction()
        for pgid in self.osdmap.all_pgs(pool_name):
            acting = self.osdmap.pg_to_osds(pgid)
            if self.osd_id in acting:
                pg = PlacementGroup(pgid, acting, self.osd_id)
                self.pgs[pgid] = pg
                self.member_pgs.add(pgid)
                self.osdmap.record_pg_holder(pgid, self.osd_id, full=True)
                txn.create_collection(pg.collection)
        if txn.num_ops:
            yield from self.store.queue_transaction(txn, self._op_threads[0])

    def start_heartbeats(
        self,
        peer_addrs: Optional[list[str]] = None,
        dynamic: bool = False,
    ) -> None:
        """Begin pinging peer OSDs.

        With ``dynamic=True`` the agent recomputes its peer set from the
        shared OSDMap each interval (peers marked down stop being
        pinged; unreachable-but-up peers are reported in beacons);
        otherwise the given static address list is pinged forever.
        """
        self._hb_cfg = {"peer_addrs": peer_addrs, "dynamic": dynamic}
        self.heartbeat = HeartbeatAgent(
            self.messenger,
            peer_addrs or [],
            interval=self.config.heartbeat_interval,
            osdmap=self.osdmap if dynamic else None,
            whoami=self.osd_id if dynamic else None,
        )

    def start_mon_beacon(self, mon_addr: str, interval: float = 1.0) -> None:
        """Begin sending liveness beacons to the monitor."""
        self._beacon_cfg = (mon_addr, interval)
        self._beacon_proc = self.env.process(
            self._beacon_loop(mon_addr, interval), name=f"{self.name}.beacon"
        )

    def _beacon_loop(
        self, mon_addr: str, interval: float
    ) -> Generator[Any, Any, None]:
        tid = 0
        try:
            while True:
                up = self.osdmap.is_up(self.osd_id)
                if up:
                    self._down_handled = False
                elif not self._down_handled:
                    # marked down while still running (partition, false
                    # positive): other OSDs may have taken over our PGs,
                    # so discard stale copies before rejoining — exactly
                    # what a restart does, minus the process teardown
                    self._down_handled = True
                    self.rejoins += 1
                    yield from self._resync_store()
                failed: tuple[int, ...] = ()
                if self.heartbeat is not None:
                    failed = tuple(
                        self.heartbeat.failed_peer_ids(self.env.now)
                    )
                tid += 1
                self.messenger.send_message(
                    MOSDBeacon(tid=tid, osd_id=self.osd_id,
                               map_epoch=self.osdmap.epoch,
                               failed_peers=failed),
                    mon_addr,
                )
                yield self.env.timeout(interval)
        except Interrupt:
            return

    def enable_recovery(self, pool_names: list[str],
                        tick: float = 1.0) -> None:
        """Start the background recovery manager."""
        self._recovery_cfg = (list(pool_names), tick)
        self.recovery = RecoveryManager(self, pool_names, tick=tick)

    def enable_scrub(self, pool_names: list[str],
                     interval: float = 20.0) -> None:
        """Start periodic light scrubbing of the PGs this OSD leads."""
        self._scrub_cfg = (list(pool_names), interval)
        self.scrub = ScrubManager(self, pool_names, interval=interval)

    def set_qos(self, tenant: str, spec: QosSpec) -> None:
        """Install the mClock share for ``tenant`` on this OSD's queue
        (persisted across crash/restart — it is configuration)."""
        self._qos_specs[tenant] = spec
        self._op_queue.set_tenant(tenant, spec)

    def qos_stats(self) -> dict[str, int]:
        """mClock scheduler counters (this incarnation's queue)."""
        q = self._op_queue
        return {
            "tagged_enqueued": q.tagged_enqueued,
            "reservation_served": q.reservation_served,
            "weight_served": q.weight_served,
            "limit_deferrals": q.limit_deferrals,
        }

    # ---------------------------------------------------------------- crash
    def crash(self) -> None:
        """Kill the daemon: all sim processes stop, in-flight ops and
        connections drop, un-acked state is forgotten.  The ObjectStore
        survives (it is the disk).  Idempotent while down."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.incarnation += 1
        self.messenger.shutdown()
        for proc in self._op_procs:
            if proc.is_alive:
                proc.interrupt("osd crash")
        self._op_procs = []
        if self._beacon_proc is not None and self._beacon_proc.is_alive:
            self._beacon_proc.interrupt("osd crash")
        self._beacon_proc = None
        if self.heartbeat is not None:
            self.heartbeat.stop()
            self.heartbeat = None
        if self.recovery is not None:
            self.recovery.stop()
            self.recovery = None
        if self.scrub is not None:
            self.scrub.stop()
            self.scrub = None
        # anything queued dies with the daemon; the old queue may hold
        # stale waiters from the interrupted loops, so replace it
        self._inflight.clear()
        self.pgs.clear()
        self._op_queue = WeightedPriorityQueue(
            self.env, seed=self.osd_id + (self.incarnation << 16)
        )
        for tenant, spec in self._qos_specs.items():
            self._op_queue.set_tenant(tenant, spec)

    def restart(self) -> Generator[Any, Any, None]:
        """Boot the daemon again on its surviving ObjectStore.

        Stale PG copies (PGs that now have other up members) are
        discarded *before* the messenger comes back, so no traffic can
        interleave with the resync; recovery then re-pulls them and the
        next beacon re-registers us with the monitor."""
        if self.alive:
            return
        self.restarts += 1
        yield from self._resync_store()
        # Rebuild in-memory PG state for the copies the resync kept
        # (crash() cleared ``pgs``; a survivor-free or equal-generation
        # copy stays a member and must serve again without a re-pull).
        for pgid in sorted(self.member_pgs,
                           key=lambda p: (p.pool, p.seed)):
            self.refresh_pg(pgid)
        self._down_handled = True
        self._op_procs = [
            _OpLoop(self, t, f"{self.name}.tp_osd_tp-{i}")
            for i, t in enumerate(self._op_threads)
        ]
        self.messenger.startup()
        self.alive = True
        if self._hb_cfg is not None:
            self.start_heartbeats(**self._hb_cfg)
        if self._recovery_cfg is not None:
            self.enable_recovery(*self._recovery_cfg)
        if self._scrub_cfg is not None:
            self.enable_scrub(*self._scrub_cfg)
        if self._beacon_cfg is not None:
            self.start_mon_beacon(*self._beacon_cfg)

    def _resync_store(self) -> Generator[Any, Any, None]:
        """Discard local copies of PGs another *full* holder now serves.

        Our copy may miss writes acked while we were gone; a surviving
        full holder's copy is authoritative, and recovery will re-pull
        the PG from it.  A survivor only qualifies if its content
        generation is *strictly above* ours: any write acked during our
        absence necessarily bumped the generation (we were a registered
        full holder outside the acting set), so equal generations prove
        our copy missed nothing and discarding it would only force a
        pointless full re-stream.  A survivor *below* ours means our
        copy holds acked writes the survivor never received (we took
        them while it was down), and discarding against it would
        destroy their last copy.  If no up OSD qualifies — the others
        are down too, at or behind our generation, or only interim
        (partial) holders accepted writes while everyone was out — we
        keep our data and our membership: recovery merges the divergent
        copies instead."""
        thread = self._completion_thread
        for pgid in sorted(self.member_pgs,
                           key=lambda p: (p.pool, p.seed)):
            acting = self.osdmap.pg_to_osds(pgid)
            if not any(o != self.osd_id for o in acting):
                continue
            my_gen = self.osdmap.holder_gen(pgid, self.osd_id)
            survivors = [
                o for o in self.osdmap.full_holders_of(pgid)
                if o != self.osd_id and self.osdmap.is_up(o)
                and self.osdmap.holder_gen(pgid, o) > my_gen
            ]
            if not survivors:
                continue
            coll = str(pgid)
            try:
                names = yield from self.store.list_objects(coll, thread)
            except StoreError:
                names = []
            if names:
                txn = Transaction()
                for name in names:
                    txn.remove(coll, name)
                try:
                    yield from self.store.queue_transaction(txn, thread)
                except StoreError:
                    pass
                self.objects_discarded += len(names)
            self.member_pgs.discard(pgid)
            self.pgs.pop(pgid, None)
            self.osdmap.drop_pg_holder(pgid, self.osd_id)
            if self.recovery is not None:
                self.recovery.forget_pg(pgid)

    def enable_op_tracking(self, history_size: int = 256) -> OpTracker:
        """Turn on per-op stage tracing (Ceph's dump_historic_ops)."""
        self.tracker = OpTracker(history_size)
        return self.tracker

    def refresh_pg(self, pgid: PgId) -> PlacementGroup:
        """Re-read the acting set from the (possibly newer) OSDMap."""
        acting = self.osdmap.pg_to_osds(pgid)
        pg = self.pgs.get(pgid)
        if pg is None or pg.acting != acting:
            clean = pg.clean if pg is not None else True
            pg = PlacementGroup(pgid, acting, self.osd_id, clean=clean)
            self.pgs[pgid] = pg
        return pg

    # ---------------------------------------------------------------- dispatch
    def ms_dispatch(
        self, msg: Message, conn: Connection
    ) -> Generator[Any, Any, None]:
        """Fast dispatch, runs in the messenger worker (keep it light)."""
        if isinstance(msg, MOSDOp):
            if self.tracker is not None:
                tracked = self.tracker.create(
                    f"osd_op({msg.op.name} {msg.pool}/{msg.object_name})",
                    self.env.now,
                )
                msg.tracked_op = tracked  # type: ignore[attr-defined]
            ctx = getattr(msg, "span_ctx", None)
            if ctx is not None:
                span = ctx.start_span(
                    "osd.op", self.env.now,
                    cpu=self.messenger.stack.cpu.name,
                    category=OSD_CATEGORY,
                    thread_name=f"{self.name}.tp_osd_tp",
                    nbytes=msg.length,
                )
                span.tag("osd", self.osd_id)
                span.tag("op", msg.op.name)
                if msg.tenant:
                    span.tag("tenant", msg.tenant)
                msg.op_span = span  # type: ignore[attr-defined]
            # stage marks land on the tracked op AND as span events, so
            # the two facilities cannot drift
            _mark(msg, self.env.now, "queued_for_pg")
            self._op_queue.enqueue(msg, CLIENT_OP,
                                   tenant=msg.tenant or None)
        elif isinstance(msg, MOSDRepOp):
            self._op_queue.enqueue(msg, SUB_OP)
        elif isinstance(msg, (MOSDPGPull, MOSDPGPush)):
            self._op_queue.enqueue(msg, RECOVERY_OP)
        elif isinstance(msg, MScrubDigest):
            self._op_queue.enqueue(msg, SCRUB_OP)
        elif isinstance(msg, MOSDPGPushReply):
            if self.recovery is not None:
                self.recovery.handle_push_reply(msg)
            _release(msg)
        elif isinstance(msg, MScrubReply):
            if self.scrub is not None:
                self.scrub.handle_reply(msg)
            _release(msg)
        elif isinstance(msg, MOSDRepOpReply):
            inflight = self._inflight.get(msg.tid)
            if inflight is not None:
                inflight.ack(ok=msg.result == 0)
            _release(msg)
        elif isinstance(msg, MOSDPing):
            if self.heartbeat is not None:
                reply = self.heartbeat.handle_ping(msg)
                if reply is not None:
                    self.messenger.send_message(reply, msg.src)
            elif not msg.is_reply:
                self.messenger.send_message(
                    MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp),
                    msg.src,
                )
            _release(msg)
        else:
            _release(msg)
        if False:  # keep the generator form the messenger expects
            yield

    def _misdirected(self, msg: MOSDOp, pgid: PgId) -> bool:
        """Drop a client op we are not the current primary for.

        A daemon the monitor has marked down may still be processing
        queued ops against a map that excludes it; replicating to
        ``acting[1:]`` of *that* map and acking would lose the write
        when this daemon later resyncs.  Dropping without a reply lets
        the client's timeout resend to the real primary (Ceph's
        misdirected-op discard)."""
        acting = self.osdmap.pg_to_osds(pgid)
        if not self.alive or not acting or acting[0] != self.osd_id:
            self.misdirected_ops += 1
            span = getattr(msg, "op_span", None)
            if span is not None:
                span.error(self.env.now, "misdirected")
            _release(msg)
            return True
        return False

    # -- client write (primary) ------------------------------------------------
    def _handle_client_write(
        self, msg: MOSDOp, thread: SimThread
    ) -> Generator[Any, Any, None]:
        yield from thread.charge(self.config.op_cpu)
        _mark(msg, self.env.now, "reached_pg")
        pgid = self.osdmap.object_to_pg(msg.pool, msg.object_name)
        if self._misdirected(msg, pgid):
            return
        pg = self.refresh_pg(pgid)
        assert msg.data is not None, "WRITE op without payload"

        txn = Transaction()
        # Writes some registered full holder will miss bump the PG's
        # content generation: copies without them are stale and must
        # not serve as discard survivors or settle as clean.  The
        # acting set is *credited* at the new generation only on ack
        # (``gen_credit`` applied in :meth:`_commit_and_reply`):
        # registering at entry would let a concurrent recovery pull
        # capture the generation before the data is readable in the
        # store, handing the puller a "full" copy that silently lacks
        # this write.
        gen_credit: list[tuple[int, bool | None, int]] = []
        if pgid not in self.member_pgs:
            # remapped PG whose backfill hasn't started yet: create the
            # collection so fresh writes land (recovery pulls the rest),
            # and register as a partial holder so these acked writes are
            # merged back once the full holders return.  The replicas
            # persist this write too (repop below), so credit them at
            # the same generation — leaving them behind would send
            # every acting member on a pointless catch-up pull per
            # write.
            txn.create_collection(pg.collection)
            interim_gen = self.osdmap.bump_pg_gen(pgid)
            gen_credit.append((self.osd_id, False, interim_gen))
            for replica in pg.replicas:
                gen_credit.append((replica, None, interim_gen))
        else:
            full_holders = self.osdmap.full_holders_of(pgid)
            if any(o not in pg.acting for o in full_holders):
                # degraded write: a registered full holder is down and
                # will miss it — the absent holder's copy must not later
                # justify discarding the only copies of this write.
                gen = self.osdmap.bump_pg_gen(pgid)
                gen_credit.append((self.osd_id, None, gen))
                for replica in pg.replicas:
                    gen_credit.append((replica, None, gen))
        txn.write(
            pg.collection, msg.object_name, msg.offset, msg.length, msg.data
        )
        op_span = getattr(msg, "op_span", None)
        if op_span is not None:
            txn.span_ctx = op_span.context
        inflight = _InFlightWrite(len(pg.replicas), self.env)
        self._repop_tid += 1
        repop_tid = self._repop_tid
        if pg.replicas:
            self._inflight[repop_tid] = inflight
        for replica in pg.replicas:
            rep = MOSDRepOp(
                tid=repop_tid,
                pool=msg.pool,
                pg_seed=pgid.seed,
                object_name=msg.object_name,
                length=msg.length,
                offset=msg.offset,
                data=msg.data,
                map_epoch=self.osdmap.epoch,
            )
            if op_span is not None:
                rep.span_ctx = op_span.context  # type: ignore[attr-defined]
            self.messenger.send_message(
                rep, self.osdmap.address_of(replica)
            )
            pg.repops_sent += 1
        if pg.replicas:
            _mark(msg, self.env.now, "sub_op_sent")

        pg.record_write(msg.length)
        self.client_ops += 1
        self.bytes_written += msg.length
        self.env.process(
            self._commit_and_reply(msg, txn, inflight, repop_tid,
                                   pgid, gen_credit),
            name=f"{self.name}.commit.{msg.tid}",
        )

    def _commit_and_reply(
        self,
        msg: MOSDOp,
        txn: Transaction,
        inflight: _InFlightWrite,
        repop_tid: int,
        pgid: Optional[PgId] = None,
        gen_credit: Optional[list] = None,
    ) -> Generator[Any, Any, None]:
        thread = self._completion_thread
        inc = self.incarnation
        _mark(msg, self.env.now, "queued_transaction")
        local = self.env.process(
            self.store.queue_transaction(txn, thread),
            name=f"{self.name}.txn.{msg.tid}",
        )
        result = 0
        try:
            yield AllOf(self.env, [local, *inflight.ack_events])
        except StoreError:
            result = -22  # -EINVAL
        if inflight.failed:
            result = -22  # a replica could not persist: fail, never ack
        op_span = getattr(msg, "op_span", None)
        if self.incarnation != inc or not self.alive:
            # the daemon died while this write was in flight: never ack
            # on behalf of a later incarnation (the client will resend)
            if op_span is not None:
                op_span.error(self.env.now, "osd-crashed")
            _release(msg)
            return
        _mark(msg, self.env.now, "commit_received")
        self._inflight.pop(repop_tid, None)
        if result == 0 and gen_credit:
            # the write is durable everywhere it was sent: only now may
            # the acting set's content generations reflect it (a pull
            # capturing the gen earlier would miss the not-yet-readable
            # data and still count as complete)
            for holder, full, gen in gen_credit:
                self.osdmap.record_pg_holder(pgid, holder, full=full,
                                             gen=gen)
        yield from thread.charge(self.config.reply_cpu)
        reply = MOSDOpReply(
            tid=msg.tid, result=result, version=self.osdmap.epoch
        )
        if op_span is not None:
            reply.span_ctx = getattr(msg, "span_ctx", None)  # type: ignore[attr-defined]
            reply.origin_span = op_span  # type: ignore[attr-defined]
        self.messenger.send_message(reply, msg.src)
        _complete(self, msg)
        _release(msg)
        if op_span is not None:
            op_span.finish(
                self.env.now, status="error" if result != 0 else "ok"
            )

    # -- client read -----------------------------------------------------------------
    def _handle_client_read(
        self, msg: MOSDOp, thread: SimThread
    ) -> Generator[Any, Any, None]:
        yield from thread.charge(self.config.op_cpu)
        pgid = self.osdmap.object_to_pg(msg.pool, msg.object_name)
        if self._misdirected(msg, pgid):
            return
        pg = self.refresh_pg(pgid)
        pg.record_read(msg.length)
        self.client_ops += 1
        self.bytes_read += msg.length
        self.env.process(
            self._read_and_reply(msg, pg), name=f"{self.name}.read.{msg.tid}"
        )

    def _read_and_reply(
        self, msg: MOSDOp, pg: PlacementGroup
    ) -> Generator[Any, Any, None]:
        thread = self._completion_thread
        inc = self.incarnation
        op_span = getattr(msg, "op_span", None)
        try:
            blob = yield from self.store.read(
                pg.collection, msg.object_name, msg.offset, msg.length,
                thread,
                span_ctx=op_span.context if op_span is not None else None,
            )
            reply = MOSDOpReply(tid=msg.tid, result=0, data=blob)
        except NoSuchObject:
            reply = MOSDOpReply(tid=msg.tid, result=-2)  # -ENOENT
        except StoreError:
            # Backend failure that isn't fail-stop (e.g. a proxied
            # store's RPC timing out): error the op, don't kill the OSD.
            reply = MOSDOpReply(tid=msg.tid, result=-5)  # -EIO
        if self.incarnation != inc or not self.alive:
            if op_span is not None:
                op_span.error(self.env.now, "osd-crashed")
            _release(msg)
            return
        yield from thread.charge(self.config.reply_cpu)
        if op_span is not None:
            reply.span_ctx = getattr(msg, "span_ctx", None)  # type: ignore[attr-defined]
            reply.origin_span = op_span  # type: ignore[attr-defined]
        self.messenger.send_message(reply, msg.src)
        _release(msg)
        if op_span is not None:
            op_span.finish(self.env.now)

    # -- client stat -----------------------------------------------------------------
    def _handle_client_stat(
        self, msg: MOSDOp, thread: SimThread
    ) -> Generator[Any, Any, None]:
        yield from thread.charge(self.config.op_cpu)
        pgid = self.osdmap.object_to_pg(msg.pool, msg.object_name)
        if self._misdirected(msg, pgid):
            return
        pg = self.refresh_pg(pgid)
        inc = self.incarnation

        def work() -> Generator[Any, Any, None]:
            t = self._completion_thread
            op_span = getattr(msg, "op_span", None)
            try:
                st = yield from self.store.stat(
                    pg.collection, msg.object_name, t
                )
                reply = MOSDOpReply(tid=msg.tid, result=0, version=st.version)
                reply.attachment = st
            except NoSuchObject:
                reply = MOSDOpReply(tid=msg.tid, result=-2)
            except StoreError:
                reply = MOSDOpReply(tid=msg.tid, result=-5)  # -EIO
            if self.incarnation != inc or not self.alive:
                if op_span is not None:
                    op_span.error(self.env.now, "osd-crashed")
                _release(msg)
                return
            yield from t.charge(self.config.reply_cpu)
            if op_span is not None:
                reply.span_ctx = getattr(msg, "span_ctx", None)  # type: ignore[attr-defined]
                reply.origin_span = op_span  # type: ignore[attr-defined]
            self.messenger.send_message(reply, msg.src)
            _release(msg)
            if op_span is not None:
                op_span.finish(self.env.now)

        self.env.process(work(), name=f"{self.name}.stat.{msg.tid}")

    # -- client delete -----------------------------------------------------------------
    def _handle_client_delete(
        self, msg: MOSDOp, thread: SimThread
    ) -> Generator[Any, Any, None]:
        yield from thread.charge(self.config.op_cpu)
        pgid = self.osdmap.object_to_pg(msg.pool, msg.object_name)
        if self._misdirected(msg, pgid):
            return
        pg = self.refresh_pg(pgid)
        txn = Transaction().remove(pg.collection, msg.object_name)
        op_span = getattr(msg, "op_span", None)
        if op_span is not None:
            txn.span_ctx = op_span.context
        inflight = _InFlightWrite(len(pg.replicas), self.env)
        self._repop_tid += 1
        repop_tid = self._repop_tid
        if pg.replicas:
            self._inflight[repop_tid] = inflight
        for replica in pg.replicas:
            rep = MOSDRepOp(
                tid=repop_tid, pool=msg.pool, pg_seed=pgid.seed,
                object_name=msg.object_name, length=0,
                map_epoch=self.osdmap.epoch,
            )
            if op_span is not None:
                rep.span_ctx = op_span.context  # type: ignore[attr-defined]
            self.messenger.send_message(
                rep, self.osdmap.address_of(replica)
            )
        self.env.process(
            self._commit_and_reply(msg, txn, inflight, repop_tid),
            name=f"{self.name}.del.{msg.tid}",
        )

    # -- replica side -----------------------------------------------------------------
    def _handle_repop(
        self, msg: MOSDRepOp, thread: SimThread
    ) -> Generator[Any, Any, None]:
        yield from thread.charge(self.config.repop_cpu)
        pgid = PgId(self.osdmap.pool_by_name(msg.pool).id, msg.pg_seed)
        pg = self.refresh_pg(pgid)
        ctx = getattr(msg, "span_ctx", None)
        if ctx is not None:
            repop_span = ctx.start_span(
                "osd.repop", self.env.now, thread=thread,
                nbytes=msg.length,
            )
            repop_span.tag("osd", self.osd_id)
            msg.repop_span = repop_span  # type: ignore[attr-defined]
        txn = Transaction()
        if pgid not in self.member_pgs:
            txn.create_collection(pg.collection)
            self.osdmap.record_pg_holder(
                pgid, self.osd_id, full=False,
                gen=self.osdmap.bump_pg_gen(pgid),
            )
        if msg.data is not None:
            txn.write(
                pg.collection, msg.object_name, msg.offset, msg.length, msg.data
            )
            if ctx is not None:
                txn.span_ctx = msg.repop_span.context  # type: ignore[attr-defined]
        else:
            txn.remove(pg.collection, msg.object_name)
            if ctx is not None:
                txn.span_ctx = msg.repop_span.context  # type: ignore[attr-defined]
        pg.repops_applied += 1
        self.repops += 1
        self.env.process(
            self._apply_repop(msg, txn), name=f"{self.name}.repop.{msg.tid}"
        )

    def _apply_repop(
        self, msg: MOSDRepOp, txn: Transaction
    ) -> Generator[Any, Any, None]:
        thread = self._completion_thread
        inc = self.incarnation
        result = 0
        repop_span = getattr(msg, "repop_span", None)
        try:
            yield from self.store.queue_transaction(txn, thread)
        except StoreError:
            result = -22  # -EINVAL
        if self.incarnation != inc or not self.alive:
            # committed to disk pre-crash, but the daemon that promised
            # the ack is gone; the primary stalls and the client resends
            if repop_span is not None:
                repop_span.error(self.env.now, "osd-crashed")
            _release(msg)
            return
        reply = MOSDRepOpReply(tid=msg.tid, result=result)
        if repop_span is not None:
            reply.span_ctx = getattr(msg, "span_ctx", None)  # type: ignore[attr-defined]
            reply.origin_span = repop_span  # type: ignore[attr-defined]
        self.messenger.send_message(reply, msg.src)
        _release(msg)
        if repop_span is not None:
            repop_span.finish(
                self.env.now, status="error" if result != 0 else "ok"
            )

    def __repr__(self) -> str:
        return f"<OsdDaemon {self.name} pgs={len(self.pgs)}>"


class _OpLoop(Machine):
    """Flattened ``tp_osd_tp`` worker: pop an op, pay the context
    switch, dispatch by message type.

    The loop shell (dequeue park → ctx-switch charge → dispatch) is
    hand-flattened; the per-type handlers stay generators — they are
    long, branchy, and individually cold — and run under the machine's
    generator driver with exact ``yield from`` parity.  Interruptible
    (daemon crash): an interrupt at any park, mid-charge, or mid-handler
    completes the machine, matching the generator's
    ``except Interrupt: return``.
    """

    __slots__ = ("_daemon", "_thread", "_msg")

    def __init__(self, daemon: OsdDaemon, thread: SimThread, name: str) -> None:
        super().__init__(daemon.env, name)
        self._init_interruptible()
        self._daemon = daemon
        self._thread = thread
        self._msg: Optional[Message] = None
        self._start(self._s_kicked)

    def _s_kicked(self, event: Any) -> None:
        self._next_op()

    def _next_op(self) -> None:
        self._park(self._daemon._op_queue.dequeue(), self._s_got)

    def _s_got(self, event: Any) -> None:
        self._msg = event._value
        self._ctx_switch(self._thread, self._s_dispatch)

    def _s_dispatch(self) -> None:
        msg = self._msg
        self._msg = None
        daemon = self._daemon
        thread = self._thread
        if isinstance(msg, MOSDOp):
            op = msg.op
            if op == OpType.WRITE:
                self._drive(
                    daemon._handle_client_write(msg, thread), self._s_handled
                )
            elif op == OpType.READ:
                self._drive(
                    daemon._handle_client_read(msg, thread), self._s_handled
                )
            elif op == OpType.STAT:
                self._drive(
                    daemon._handle_client_stat(msg, thread), self._s_handled
                )
            elif op == OpType.DELETE:
                self._drive(
                    daemon._handle_client_delete(msg, thread), self._s_handled
                )
            else:
                self._next_op()
        elif isinstance(msg, MOSDRepOp):
            self._drive(daemon._handle_repop(msg, thread), self._s_handled)
        elif isinstance(msg, MOSDPGPull):
            if daemon.recovery is not None:
                daemon.recovery.handle_pull(msg)
            _release(msg)
            self._next_op()
        elif isinstance(msg, MOSDPGPush):
            if daemon.recovery is not None:
                daemon.env.process(
                    daemon.recovery.handle_push(msg),
                    name=f"{daemon.name}.recv-push",
                )
            else:
                _release(msg)
            self._next_op()
        elif isinstance(msg, MScrubDigest):
            if daemon.scrub is not None:
                daemon.env.process(
                    daemon.scrub.handle_digest(msg),
                    name=f"{daemon.name}.scrub-check",
                )
            else:
                _release(msg)
            self._next_op()
        else:
            self._next_op()

    def _s_handled(self, value: Any) -> None:
        self._next_op()


def _release(msg: Message) -> None:
    """Release the dispatch-throttle reservation attached to a message."""
    release = getattr(msg, "throttle_release", None)
    if release is not None:
        release()


def _mark(msg: Message, now: float, stage: str) -> None:
    """Record a stage transition on a tracked op (no-op untracked).

    The same mark is folded into the op's span as a span event, so the
    OpTracker stage view and the trace view cannot drift."""
    tracked = getattr(msg, "tracked_op", None)
    if tracked is not None:
        tracked.mark(now, stage)
    span = getattr(msg, "op_span", None)
    if span is not None:
        span.event(now, stage)


def _complete(osd: "OsdDaemon", msg: Message) -> None:
    """Finish a tracked op (no-op untracked)."""
    tracked = getattr(msg, "tracked_op", None)
    if tracked is not None and osd.tracker is not None:
        osd.tracker.complete(tracked, osd.env.now)
