"""Prioritized OSD operation queue (Ceph's WPQ discipline + mClock tenants).

Ceph schedules work items (client ops, sub-ops, recovery pushes, scrubs)
through a weighted priority queue: *strict*-priority items always go
first; everything else is dequeued with probability proportional to its
priority, so background recovery can never starve client I/O and vice
versa.

This is a faithful reimplementation of the WPQ semantics on top of the
simulation kernel's event machinery: ``enqueue``/``dequeue`` are event
based so OSD worker threads simply ``yield queue.dequeue()``.

Priority classes follow Ceph's conventions:

* ``CLIENT_OP``   (63)  — client I/O
* ``SUB_OP``      (127) — replication sub-operations (strict band)
* ``RECOVERY_OP`` (5)   — background recovery/backfill
* ``SCRUB_OP``    (5)   — background scrubbing

Multi-tenant QoS (``repro.qos``) adds an mClock/dmClock band: ops
enqueued with a ``tenant`` tag carry per-tenant reservation/limit/
proportional tags and are dequeued tag-ordered instead of FIFO.  The
tagged band joins the weighted-fair pick as one pseudo-class at
``CLIENT_OP`` priority **only when it has eligible backlog**, so runs
that never tag an op make byte-identical RNG draws and keep their
golden digests; replication stays in the strict band above everything.

mClock semantics (Gulati et al., OSDI'10; Ceph's dmclock):

* arrival of tenant *t* stamps ``R = max(now, prev_R + 1/reservation)``,
  ``L = max(now, prev_L + 1/limit)`` (``now`` when unlimited) and
  ``P = max(now, prev_P + 1/weight)``;
* dequeue serves the *reservation phase* first — the smallest R tag
  among heads with ``R <= now`` — so every tenant gets its reserved
  ops/sec floor even under saturation;
* otherwise the *weight phase* serves the smallest P tag among heads
  whose ``L <= now`` (the limit gate caps bursty tenants), and the
  served tenant's remaining R tags shift down by ``1/reservation`` so
  reservation counts *total* service, not just reservation-phase
  service;
* when backlog exists but every head is reservation/limit-blocked the
  queue arms a deterministic timer for the earliest tag time
  (``limit_deferrals`` counts these stalls).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Environment, Event
from ..util.rng import SeededRng

__all__ = ["WeightedPriorityQueue", "QueueItem", "QosSpec",
           "CLIENT_OP", "SUB_OP", "RECOVERY_OP", "SCRUB_OP",
           "STRICT_THRESHOLD"]

CLIENT_OP = 63
SUB_OP = 127
RECOVERY_OP = 5
SCRUB_OP = 5

#: Priorities at or above this are strict (always dequeued first);
#: mirrors Ceph's osd_client_op_priority cutoff behaviour.
STRICT_THRESHOLD = 64

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class QosSpec:
    """mClock share for one tenant (all rates in ops/sec).

    ``reservation`` is the guaranteed floor (0 = none), ``weight`` the
    proportional share of spare capacity, ``limit`` the hard ceiling
    (0 = unlimited).  A finite limit must be able to carry the
    reservation.
    """

    reservation: float = 0.0
    weight: float = 1.0
    limit: float = 0.0

    def __post_init__(self) -> None:
        if self.reservation < 0:
            raise ValueError(f"negative reservation: {self.reservation}")
        if self.weight <= 0:
            raise ValueError(f"non-positive weight: {self.weight}")
        if self.limit < 0:
            raise ValueError(f"negative limit: {self.limit}")
        if self.limit and self.limit < self.reservation:
            raise ValueError(
                f"limit {self.limit} below reservation {self.reservation}"
            )


class _MClockTenant:
    """Per-tenant mClock state: spec, tag clocks and FIFO of tagged ops.

    Queue entries are mutable lists ``[r_tag, l_tag, p_tag, seq,
    payload]`` because weight-phase service shifts the tenant's
    remaining R tags down in place.
    """

    __slots__ = ("spec", "queue", "prev_r", "prev_l", "prev_p",
                 "enqueued", "served")

    def __init__(self, spec: QosSpec) -> None:
        self.spec = spec
        self.queue: deque[list] = deque()
        self.prev_r = -_INF
        self.prev_l = -_INF
        self.prev_p = -_INF
        self.enqueued = 0
        self.served = 0


@dataclass(order=True, slots=True)
class QueueItem:
    """One queued work item (ordering key: priority desc, then FIFO)."""

    sort_key: tuple = field(init=False, repr=False)
    priority: int
    seq: int
    payload: Any = field(compare=False)

    def __post_init__(self) -> None:
        self.sort_key = (-self.priority, self.seq)


class WeightedPriorityQueue:
    """WPQ: strict band + weighted-fair band (+ optional mClock band).

    Items with priority ≥ :data:`STRICT_THRESHOLD` are served in strict
    priority/FIFO order before anything else.  Items below the
    threshold are served weighted-fair: each dequeue picks a priority
    class with probability proportional to (priority × backlog-present),
    using a deterministic seeded RNG so simulations stay reproducible.
    Tenant-tagged items form one extra pseudo-class at ``CLIENT_OP``
    priority, internally ordered by mClock tags (see module docstring).
    """

    __slots__ = (
        "env",
        "_seq",
        "_strict",
        "_weighted",
        "_waiters",
        "_rng",
        "_depth",
        "_tenants",
        "_tagged_depth",
        "_timer_armed",
        "_timer_deadline",
        "_timer_version",
        "enqueued",
        "dequeued",
        "max_depth",
        "tagged_enqueued",
        "reservation_served",
        "weight_served",
        "limit_deferrals",
    )

    def __init__(self, env: Environment, seed: int = 0) -> None:
        self.env = env
        self._seq = 0
        self._strict: list[QueueItem] = []  # heap
        self._weighted: dict[int, deque[QueueItem]] = {}  # prio -> FIFO
        self._waiters: deque[Event] = deque()
        self._rng = SeededRng(seed).stream("wpq")
        self._depth = 0
        self._tenants: dict[str, _MClockTenant] = {}
        self._tagged_depth = 0
        self._timer_armed = False
        self._timer_deadline = 0.0
        self._timer_version = 0

        # statistics
        self.enqueued = 0
        self.dequeued = 0
        self.max_depth = 0
        self.tagged_enqueued = 0
        self.reservation_served = 0
        self.weight_served = 0
        self.limit_deferrals = 0

    def __len__(self) -> int:
        return self._depth

    # ------------------------------------------------------------- tenants
    def set_tenant(self, name: str, spec: QosSpec) -> None:
        """Install (or update) the mClock spec for ``name``."""
        tenant = self._tenants.get(name)
        if tenant is None:
            self._tenants[name] = _MClockTenant(spec)
        else:
            tenant.spec = spec

    def tenant_depths(self) -> dict[str, int]:
        """Tagged backlog per tenant (empty tenants included)."""
        return {name: len(t.queue) for name, t in self._tenants.items()}

    def enqueue(self, payload: Any, priority: int = CLIENT_OP,
                tenant: Optional[str] = None) -> None:
        """Add a work item (non-blocking; queue is unbounded).

        ``tenant`` routes the item to the mClock band; ``None`` (the
        default) keeps the classic WPQ path untouched.
        """
        if priority < 0:
            raise ValueError(f"negative priority: {priority}")
        self._seq += 1
        if tenant is not None:
            self._enqueue_tagged(tenant, payload)
        elif priority >= STRICT_THRESHOLD:
            heapq.heappush(
                self._strict,
                QueueItem(priority=priority, seq=self._seq, payload=payload),
            )
        else:
            q = self._weighted.get(priority)
            if q is None:
                q = self._weighted[priority] = deque()
            q.append(QueueItem(priority=priority, seq=self._seq,
                               payload=payload))
        self.enqueued += 1
        self._depth += 1
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        if self._waiters:
            if self._servable():
                waiter = self._waiters.popleft()
                waiter.succeed(self._pop())
            elif self._tagged_depth:
                self.limit_deferrals += 1
                self._arm_timer()

    def dequeue(self) -> Event:
        """Event yielding the next work item's payload."""
        ev = self.env.event()
        if self._servable():
            ev.succeed(self._pop())
        else:
            self._waiters.append(ev)
            if self._tagged_depth:
                self.limit_deferrals += 1
                self._arm_timer()
        return ev

    # ---------------------------------------------------------------- internals
    def _enqueue_tagged(self, tenant: str, payload: Any) -> None:
        t = self._tenants.get(tenant)
        if t is None:
            t = self._tenants[tenant] = _MClockTenant(QosSpec())
        now = self.env.now
        spec = t.spec
        if spec.reservation:
            r_tag = max(now, t.prev_r + 1.0 / spec.reservation)
            t.prev_r = r_tag
        else:
            r_tag = _INF
        if spec.limit:
            l_tag = max(now, t.prev_l + 1.0 / spec.limit)
            t.prev_l = l_tag
        else:
            l_tag = now
        p_tag = max(now, t.prev_p + 1.0 / spec.weight)
        t.prev_p = p_tag
        t.queue.append([r_tag, l_tag, p_tag, self._seq, payload])
        t.enqueued += 1
        self._tagged_depth += 1
        self.tagged_enqueued += 1

    def _servable(self) -> bool:
        """True when the next ``_pop`` can legally serve something."""
        if self._depth - self._tagged_depth:
            return True
        return bool(self._tagged_depth) and self._tagged_ready(self.env.now)

    def _tagged_ready(self, now: float) -> bool:
        # The limit tag gates BOTH phases (a hard cap on total service,
        # the semantics operators expect), so a head is eligible iff
        # L <= now; unlimited tenants stamp L = enqueue-time now, which
        # is always eligible.
        for t in self._tenants.values():
            if t.queue and t.queue[0][1] <= now:
                return True
        return False

    def _next_tag_time(self) -> float:
        """Earliest time any blocked tagged head becomes eligible."""
        t_min = _INF
        for t in self._tenants.values():
            if t.queue:
                edge = t.queue[0][1]
                if edge < t_min:
                    t_min = edge
        return t_min

    def _arm_timer(self) -> None:
        now = self.env.now
        deadline = self._next_tag_time()
        if deadline == _INF:
            return
        if deadline < now:
            deadline = now
        if self._timer_armed and self._timer_deadline <= deadline:
            return
        self._timer_armed = True
        self._timer_deadline = deadline
        self._timer_version += 1
        self.env.process(self._timer_body(self._timer_version,
                                          deadline - now))

    def _timer_body(self, version: int, delay: float):
        yield self.env.timeout(delay)
        if version != self._timer_version:
            return
        self._timer_armed = False
        while self._waiters and self._servable():
            waiter = self._waiters.popleft()
            waiter.succeed(self._pop())
        if self._waiters and self._tagged_depth:
            self._arm_timer()

    def _pop(self) -> Any:
        self.dequeued += 1
        self._depth -= 1
        if self._strict:
            return heapq.heappop(self._strict).payload
        # weighted-fair pick among backlogged priorities; the tagged
        # band joins as a pseudo-class (queue sentinel None) only when
        # it has an eligible head, so untagged runs draw identically.
        classes = [(p, q) for p, q in self._weighted.items() if q]
        now = self.env.now
        if self._tagged_depth and self._tagged_ready(now):
            classes.append((CLIENT_OP, None))
        assert classes, "pop from empty queue"
        if len(classes) == 1:
            prio, q = classes[0]
        else:
            total = sum(p for p, _ in classes)
            pick = self._rng.uniform(0, total)
            acc = 0.0
            prio, q = classes[-1]
            for p, queue in sorted(classes, key=lambda c: c[0]):
                acc += p
                if pick <= acc:
                    prio, q = p, queue
                    break
        if q is None:
            return self._pop_tagged(now)
        item = q.popleft()
        if not q:
            del self._weighted[prio]
        return item.payload

    def _pop_tagged(self, now: float) -> Any:
        self._tagged_depth -= 1
        # reservation phase: smallest (R, seq) among heads with R <= now.
        # The L gate applies here too — classic mClock serves
        # reservations regardless of limit, which lets a backlogged
        # tenant sustain reservation+limit total; gating both phases
        # makes ``limit`` a true ceiling, and costs no reservation
        # because QosSpec enforces limit >= reservation.
        best: Optional[_MClockTenant] = None
        best_key = (0.0, 0)
        for t in self._tenants.values():
            if not t.queue:
                continue
            head = t.queue[0]
            if head[0] <= now and head[1] <= now:
                key = (head[0], head[3])
                if best is None or key < best_key:
                    best, best_key = t, key
        if best is not None:
            entry = best.queue.popleft()
            best.served += 1
            self.reservation_served += 1
            return entry[4]
        # weight phase: smallest (P, seq) among limit-eligible heads
        for t in self._tenants.values():
            if not t.queue:
                continue
            head = t.queue[0]
            if head[1] <= now:
                key = (head[2], head[3])
                if best is None or key < best_key:
                    best, best_key = t, key
        assert best is not None, "tagged pop with no eligible head"
        entry = best.queue.popleft()
        best.served += 1
        self.weight_served += 1
        spec = best.spec
        if spec.reservation:
            # mClock tag adjustment: weight-phase service also counts
            # toward the reservation, so shift remaining R tags down.
            delta = 1.0 / spec.reservation
            for e in best.queue:
                e[0] -= delta
            best.prev_r -= delta
        return entry[4]

    def depth_by_class(self) -> dict[int, int]:
        """Backlog per priority (strict classes included)."""
        out: dict[int, int] = {}
        for item in self._strict:
            out[item.priority] = out.get(item.priority, 0) + 1
        for prio, q in self._weighted.items():
            if q:
                out[prio] = out.get(prio, 0) + len(q)
        if self._tagged_depth:
            out[CLIENT_OP] = out.get(CLIENT_OP, 0) + self._tagged_depth
        return out

    def __repr__(self) -> str:
        return (
            f"<WeightedPriorityQueue depth={len(self)} "
            f"strict={len(self._strict)} tagged={self._tagged_depth}>"
        )
