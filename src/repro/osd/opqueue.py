"""Prioritized OSD operation queue (Ceph's WPQ discipline).

Ceph schedules work items (client ops, sub-ops, recovery pushes, scrubs)
through a weighted priority queue: *strict*-priority items always go
first; everything else is dequeued with probability proportional to its
priority, so background recovery can never starve client I/O and vice
versa.

This is a faithful reimplementation of the WPQ semantics on top of the
simulation kernel's event machinery: ``enqueue``/``dequeue`` are event
based so OSD worker threads simply ``yield queue.dequeue()``.

Priority classes follow Ceph's conventions:

* ``CLIENT_OP``   (63)  — client I/O
* ``SUB_OP``      (127) — replication sub-operations (strict band)
* ``RECOVERY_OP`` (5)   — background recovery/backfill
* ``SCRUB_OP``    (5)   — background scrubbing
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..sim import Environment, Event
from ..util.rng import SeededRng

__all__ = ["WeightedPriorityQueue", "QueueItem",
           "CLIENT_OP", "SUB_OP", "RECOVERY_OP", "SCRUB_OP",
           "STRICT_THRESHOLD"]

CLIENT_OP = 63
SUB_OP = 127
RECOVERY_OP = 5
SCRUB_OP = 5

#: Priorities at or above this are strict (always dequeued first);
#: mirrors Ceph's osd_client_op_priority cutoff behaviour.
STRICT_THRESHOLD = 64


@dataclass(order=True, slots=True)
class QueueItem:
    """One queued work item (ordering key: priority desc, then FIFO)."""

    sort_key: tuple = field(init=False, repr=False)
    priority: int
    seq: int
    payload: Any = field(compare=False)

    def __post_init__(self) -> None:
        self.sort_key = (-self.priority, self.seq)


class WeightedPriorityQueue:
    """WPQ: strict band + weighted-fair band.

    Items with priority ≥ :data:`STRICT_THRESHOLD` are served in strict
    priority/FIFO order before anything else.  Items below the
    threshold are served weighted-fair: each dequeue picks a priority
    class with probability proportional to (priority × backlog-present),
    using a deterministic seeded RNG so simulations stay reproducible.
    """

    __slots__ = (
        "env",
        "_seq",
        "_strict",
        "_weighted",
        "_waiters",
        "_rng",
        "_depth",
        "enqueued",
        "dequeued",
        "max_depth",
    )

    def __init__(self, env: Environment, seed: int = 0) -> None:
        self.env = env
        self._seq = 0
        self._strict: list[QueueItem] = []  # heap
        self._weighted: dict[int, deque[QueueItem]] = {}  # prio -> FIFO
        self._waiters: deque[Event] = deque()
        self._rng = SeededRng(seed).stream("wpq")
        self._depth = 0

        # statistics
        self.enqueued = 0
        self.dequeued = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return self._depth

    def enqueue(self, payload: Any, priority: int = CLIENT_OP) -> None:
        """Add a work item (non-blocking; queue is unbounded)."""
        if priority < 0:
            raise ValueError(f"negative priority: {priority}")
        self._seq += 1
        item = QueueItem(priority=priority, seq=self._seq, payload=payload)
        if priority >= STRICT_THRESHOLD:
            heapq.heappush(self._strict, item)
        else:
            q = self._weighted.get(priority)
            if q is None:
                q = self._weighted[priority] = deque()
            q.append(item)
        self.enqueued += 1
        self._depth += 1
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self._pop())

    def dequeue(self) -> Event:
        """Event yielding the next work item's payload."""
        ev = self.env.event()
        if self._depth:
            ev.succeed(self._pop())
        else:
            self._waiters.append(ev)
        return ev

    # ---------------------------------------------------------------- internals
    def _pop(self) -> Any:
        self.dequeued += 1
        self._depth -= 1
        if self._strict:
            return heapq.heappop(self._strict).payload
        # weighted-fair pick among backlogged priorities
        classes = [(p, q) for p, q in self._weighted.items() if q]
        assert classes, "pop from empty queue"
        if len(classes) == 1:
            prio, q = classes[0]
        else:
            total = sum(p for p, _ in classes)
            pick = self._rng.uniform(0, total)
            acc = 0.0
            prio, q = classes[-1]
            for p, queue in sorted(classes, key=lambda c: c[0]):
                acc += p
                if pick <= acc:
                    prio, q = p, queue
                    break
        item = q.popleft()
        if not q:
            del self._weighted[prio]
        return item.payload

    def depth_by_class(self) -> dict[int, int]:
        """Backlog per priority (strict classes included)."""
        out: dict[int, int] = {}
        for item in self._strict:
            out[item.priority] = out.get(item.priority, 0) + 1
        for prio, q in self._weighted.items():
            if q:
                out[prio] = out.get(prio, 0) + len(q)
        return out

    def __repr__(self) -> str:
        return (
            f"<WeightedPriorityQueue depth={len(self)} "
            f"strict={len(self._strict)}>"
        )
