"""OpTracker: per-operation stage tracing (Ceph's ``dump_historic_ops``).

Ceph's OSD tracks every in-flight operation through named stages
("initiated", "queued_for_pg", "reached_pg", "sub_op_committed", …) and
keeps a ring of recently completed ops for ``ceph daemon osd.N
dump_historic_ops``.  This module reproduces that facility for the
simulated OSD: when enabled, the daemon marks stage transitions with
simulated timestamps, and tests/examples can read exact per-stage
latency for any request — the microscopic view behind Table 3's
macroscopic averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["OpTracker", "TrackedOp"]


@dataclass(slots=True)
class TrackedOp:
    """One operation's stage history."""

    op_id: int
    description: str
    initiated_at: float
    events: list[tuple[float, str]] = field(default_factory=list)
    completed_at: Optional[float] = None

    def mark(self, t: float, stage: str) -> None:
        self.events.append((t, stage))

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.initiated_at

    def stage_durations(
        self, now: Optional[float] = None
    ) -> list[tuple[str, float]]:
        """(stage, time spent until the next stage) pairs.

        For a completed op the final stage ends at ``completed_at``.
        For an op still in flight the final stage is ongoing: pass
        ``now`` to report its elapsed time so far (without it the last
        mark itself is the best available end, i.e. zero elapsed)."""
        if not self.events:
            return []
        out = []
        times = [t for t, _ in self.events]
        names = [s for _, s in self.events]
        if self.completed_at is not None:
            last_end = self.completed_at
        elif now is not None:
            last_end = max(now, times[-1])
        else:
            last_end = times[-1]
        ends = times[1:] + [last_end]
        for name, start, end in zip(names, times, ends):
            out.append((name, end - start))
        return out

    def stage_time(self, stage: str, now: Optional[float] = None) -> float:
        """Total time attributed to one (possibly repeated) stage."""
        return sum(d for s, d in self.stage_durations(now) if s == stage)


class OpTracker:
    """Bounded registry of in-flight and recently completed ops."""

    __slots__ = (
        "history_size",
        "_next_id",
        "in_flight",
        "historic",
        "ops_tracked",
    )

    def __init__(self, history_size: int = 256) -> None:
        if history_size < 1:
            raise ValueError("history_size must be >= 1")
        self.history_size = history_size
        self._next_id = 0
        self.in_flight: dict[int, TrackedOp] = {}
        self.historic: list[TrackedOp] = []

        # statistics
        self.ops_tracked = 0

    def create(self, description: str, now: float) -> TrackedOp:
        """Register a new op (marks the 'initiated' stage)."""
        self._next_id += 1
        op = TrackedOp(self._next_id, description, now)
        op.mark(now, "initiated")
        self.in_flight[op.op_id] = op
        self.ops_tracked += 1
        return op

    def complete(self, op: TrackedOp, now: float) -> None:
        """Move an op to the historic ring."""
        op.completed_at = now
        self.in_flight.pop(op.op_id, None)
        self.historic.append(op)
        if len(self.historic) > self.history_size:
            self.historic.pop(0)

    # -- queries (the 'admin socket' surface) ------------------------------
    def dump_in_flight(self) -> list[TrackedOp]:
        return sorted(self.in_flight.values(), key=lambda o: o.op_id)

    def dump_historic(self, count: Optional[int] = None) -> list[TrackedOp]:
        """Most recent completed ops, newest last."""
        if count is None:
            return list(self.historic)
        return self.historic[-count:]

    def slowest(self, count: int = 5) -> list[TrackedOp]:
        """Completed ops with the longest total duration."""
        return sorted(
            self.historic,
            key=lambda o: o.duration or 0.0,
            reverse=True,
        )[:count]

    def __repr__(self) -> str:
        return (
            f"<OpTracker in_flight={len(self.in_flight)}"
            f" historic={len(self.historic)}>"
        )
