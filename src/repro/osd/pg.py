"""Placement-group state tracked by an OSD.

A PG here is the unit of replication bookkeeping: which OSDs serve it,
whether this OSD is primary, and per-PG traffic statistics.  (Full Ceph
peering/backfill state machines are out of scope — the paper's workload
never leaves the active+clean state.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rados.types import PgId

__all__ = ["PlacementGroup"]


@dataclass(slots=True)
class PlacementGroup:
    """One PG as seen by one OSD."""

    pgid: PgId
    acting: list[int]
    whoami: int

    #: False while this OSD's copy is being recovered from a peer.
    clean: bool = True

    ops: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    repops_sent: int = 0
    repops_applied: int = 0

    @property
    def is_primary(self) -> bool:
        return bool(self.acting) and self.acting[0] == self.whoami

    @property
    def collection(self) -> str:
        """The backing ObjectStore collection name."""
        return str(self.pgid)

    @property
    def replicas(self) -> list[int]:
        """Acting-set members other than the primary."""
        return self.acting[1:]

    def record_write(self, nbytes: int) -> None:
        self.ops += 1
        self.bytes_written += nbytes

    def record_read(self, nbytes: int) -> None:
        self.ops += 1
        self.bytes_read += nbytes
