"""PG recovery: re-replication after membership changes.

When the OSDMap remaps a PG onto an OSD that lacks its data (an OSD
died and was marked out, or a new OSD joined), the new acting-set
member *pulls* the PG from a peer that has it: the peer streams every
object over the messenger as :class:`~repro.msgr.message.MOSDPGPush`
messages at recovery priority, windowed so background recovery cannot
swamp client I/O.

This is the "recovery and rebalancing" traffic §1 of the paper counts
among the messenger's responsibilities — and under DoCeph it burns DPU
cycles instead of host cycles, which the recovery extension benchmark
demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, TYPE_CHECKING

from ..msgr.message import MOSDPGPull, MOSDPGPush, MOSDPGPushReply
from ..objectstore.api import StoreError, Transaction
from ..rados.types import PgId
from ..sim import Event
from ..sim.exceptions import Interrupt

if TYPE_CHECKING:
    from .daemon import OsdDaemon

__all__ = ["RecoveryManager"]


@dataclass(slots=True)
class _PushWindow:
    """Flow control for one outgoing recovery stream."""

    inflight: int = 0
    waiters: list[Event] = field(default_factory=list)


class RecoveryManager:
    """Per-OSD recovery logic (both puller and pusher roles)."""

    __slots__ = (
        "osd",
        "env",
        "pool_names",
        "tick",
        "max_push_inflight",
        "pull_timeout",
        "_pulling",
        "_pull_attempts",
        "_tid",
        "_windows",
        "pulls_sent",
        "pulls_retried",
        "pushes_sent",
        "objects_recovered",
        "bytes_recovered",
        "pgs_recovered",
        "_proc",
    )

    def __init__(
        self,
        osd: "OsdDaemon",
        pool_names: list[str],
        tick: float = 1.0,
        max_push_inflight: int = 2,
        pull_timeout: float | None = None,
    ) -> None:
        self.osd = osd
        self.env = osd.env
        self.pool_names = pool_names
        self.tick = tick
        self.max_push_inflight = max_push_inflight
        #: re-issue a pull whose stream stalls this long (pusher died or
        #: a partition ate the pull/push messages)
        self.pull_timeout = (
            max(5.0, 5.0 * tick) if pull_timeout is None else pull_timeout
        )

        self._pulling: dict[PgId, float] = {}  # pgid -> pull start time
        self._pull_attempts: dict[PgId, int] = {}
        self._tid = 0
        self._windows: dict[int, _PushWindow] = {}  # push tid -> window

        # statistics
        self.pulls_sent = 0
        self.pulls_retried = 0
        self.pushes_sent = 0
        self.objects_recovered = 0
        self.bytes_recovered = 0
        self.pgs_recovered = 0

        self._proc = self.env.process(
            self._tick_loop(), name=f"{osd.name}.recovery"
        )

    def stop(self) -> None:
        """Halt the detection loop (daemon crash/shutdown)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("recovery stop")
        self._proc = None

    # ---------------------------------------------------------------- detection
    def _tick_loop(self) -> Generator[Any, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.tick)
                for pool in self.pool_names:
                    for pgid in self.osd.osdmap.all_pgs(pool):
                        self._check_pg(pool, pgid)
        except Interrupt:
            return

    def _check_pg(self, pool: str, pgid: PgId) -> None:
        osdmap = self.osd.osdmap
        acting = osdmap.pg_to_osds(pgid)
        if self.osd.osd_id not in acting:
            return
        if pgid in self.osd.member_pgs:
            return
        started = self._pulling.get(pgid)
        if started is not None:
            if self.env.now - started < self.pull_timeout:
                return
            self.pulls_retried += 1  # stalled: re-issue below
        # Newly acquired PG: pull from any other acting member (after a
        # single failure, the surviving members all hold the data).
        sources = [o for o in acting if o != self.osd.osd_id]
        if not sources:
            self.osd.member_pgs.add(pgid)  # sole member: nothing to pull
            self.osd.refresh_pg(pgid)
            self._pulling.pop(pgid, None)
            return
        attempt = self._pull_attempts.get(pgid, 0)
        self._pull_attempts[pgid] = attempt + 1
        self._pulling[pgid] = self.env.now
        self.env.process(
            self._start_pull(pool, pgid, sources[attempt % len(sources)]),
            name=f"{self.osd.name}.pull.{pgid.seed:x}",
        )

    def _start_pull(
        self, pool: str, pgid: PgId, source: int
    ) -> Generator[Any, Any, None]:
        """Create the local collection, then ask ``source`` to push."""
        osd = self.osd
        pg = osd.refresh_pg(pgid)
        pg.clean = False
        txn = Transaction().create_collection(pg.collection)
        yield from osd.store.queue_transaction(txn, osd._completion_thread)
        self._tid += 1
        self.pulls_sent += 1
        osd.messenger.send_message(
            MOSDPGPull(tid=self._tid, pool=pool, pg_seed=pgid.seed,
                       map_epoch=osd.osdmap.epoch),
            osd.osdmap.address_of(source),
        )

    # ---------------------------------------------------------------- pusher
    def handle_pull(self, msg: MOSDPGPull) -> None:
        """A peer asked for this PG's objects (we have them)."""
        self.env.process(
            self._push_pg(msg), name=f"{self.osd.name}.push.{msg.pg_seed:x}"
        )

    def _push_pg(self, msg: MOSDPGPull) -> Generator[Any, Any, None]:
        osd = self.osd
        pool = osd.osdmap.pool_by_name(msg.pool)
        pgid = PgId(pool.id, msg.pg_seed)
        pg = osd.pgs.get(pgid)
        coll = str(pgid)
        thread = osd._completion_thread
        try:
            names = yield from osd.store.list_objects(coll, thread)
        except StoreError:
            names = []
        window = _PushWindow()
        for i, name in enumerate(names):
            try:
                blob = yield from osd.store.read(coll, name, 0, 1 << 62,
                                                 thread)
            except StoreError:
                continue
            while window.inflight >= self.max_push_inflight:
                ev = self.env.event()
                window.waiters.append(ev)
                yield ev
            window.inflight += 1
            self._tid += 1
            self._windows[self._tid] = window
            self.pushes_sent += 1
            osd.messenger.send_message(
                MOSDPGPush(
                    tid=self._tid, pool=msg.pool, pg_seed=msg.pg_seed,
                    object_name=name, length=blob.length, data=blob,
                    last=(i == len(names) - 1),
                ),
                msg.src,
            )
        if not names:
            # empty PG: a single 'last' marker completes the pull
            self._tid += 1
            osd.messenger.send_message(
                MOSDPGPush(tid=self._tid, pool=msg.pool,
                           pg_seed=msg.pg_seed, last=True),
                msg.src,
            )

    def handle_push_reply(self, msg: MOSDPGPushReply) -> None:
        window = self._windows.pop(msg.tid, None)
        if window is None:
            return
        window.inflight -= 1
        if window.waiters:
            window.waiters.pop(0).succeed()

    # ---------------------------------------------------------------- puller
    def handle_push(self, msg: MOSDPGPush) -> Generator[Any, Any, None]:
        """An object arrived; persist it and ack (runs as a process)."""
        osd = self.osd
        pool = osd.osdmap.pool_by_name(msg.pool)
        pgid = PgId(pool.id, msg.pg_seed)
        coll = str(pgid)
        thread = osd._completion_thread
        if msg.data is not None:
            # a client write that landed here after the pull started is
            # newer than the pushed copy — never clobber it
            try:
                have = yield from osd.store.exists(
                    coll, msg.object_name, thread
                )
            except StoreError:
                have = False
            if not have:
                txn = Transaction().write(
                    coll, msg.object_name, 0, msg.length, msg.data
                )
                try:
                    yield from osd.store.queue_transaction(txn, thread)
                    self.objects_recovered += 1
                    self.bytes_recovered += msg.length
                except StoreError:
                    pass
        osd.messenger.send_message(
            MOSDPGPushReply(tid=msg.tid, pg_seed=msg.pg_seed), msg.src
        )
        if msg.last:
            pg = osd.pgs.get(pgid)
            if pg is not None:
                pg.clean = True
            osd.member_pgs.add(pgid)
            self._pulling.pop(pgid, None)
            self._pull_attempts.pop(pgid, None)
            self.pgs_recovered += 1
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()

    def __repr__(self) -> str:
        return (
            f"<RecoveryManager {self.osd.name} recovered="
            f"{self.objects_recovered} objs/{self.bytes_recovered} B>"
        )
