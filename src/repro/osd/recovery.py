"""PG recovery: re-replication after membership changes.

When the OSDMap remaps a PG onto an OSD that lacks its data (an OSD
died and was marked out, or a new OSD joined), the new acting-set
member *pulls* the PG from the peers that have it: each peer streams
its objects over the messenger as
:class:`~repro.msgr.message.MOSDPGPush` messages at recovery priority,
windowed so background recovery cannot swamp client I/O.

Who has the data comes from the OSDMap's holder registry
(:meth:`~repro.rados.osdmap.OsdMap.holders_of`), not from the acting
set: an acting member that never recovered the PG holds nothing and
must not be treated as a source — nor may it declare itself a member
just because it is currently the only one mapped (that is how acked
writes used to vanish: an empty interim primary became authoritative
and the returning real holders discarded their copies against it).
A puller drains the *union* of every reachable holder and only counts
itself a full member once at least one drained source held a full
copy; until then the PG stays unclean and client-acked interim writes
are merged back when the full holders return.

Merging is *symmetric* and driven by content generations.  Writes that
miss a registered full holder bump the PG's generation (see
:meth:`~repro.rados.osdmap.OsdMap.bump_pg_gen`), so a member whose
generation trails any holder's knows it is missing acked writes and
pulls the union again; and a puller that holds objects a source's
stream did not include pushes them back to that source when the stream
ends.  Either direction alone loses data to a race: a one-way pull
folds interim writes into the puller's copy while the old full holder
— still registered full — never hears of them, and a later resync
discards the merged copy's "redundant" twin against it.  The two
mechanisms together make every recovery episode converge all reachable
copies to the union of acked writes.

Divergent copies are merged object-by-object as unions (pushes never
clobber an existing local object).  That is sound while the workload
creates distinct object names — concurrent conflicting writes to the
*same* name on partitioned holders would need version comparison this
model does not attempt (BlueStore onode versions are local counters).

This is the "recovery and rebalancing" traffic §1 of the paper counts
among the messenger's responsibilities — and under DoCeph it burns DPU
cycles instead of host cycles, which the recovery extension benchmark
demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, TYPE_CHECKING

from ..msgr.message import MOSDPGPull, MOSDPGPush, MOSDPGPushReply
from ..objectstore.api import StoreError, Transaction
from ..rados.types import PgId
from ..sim import Event
from ..sim.exceptions import Interrupt

if TYPE_CHECKING:
    from .daemon import OsdDaemon

__all__ = ["RecoveryManager"]


@dataclass(slots=True)
class _PushWindow:
    """Flow control for one outgoing recovery stream."""

    inflight: int = 0
    waiters: list[Event] = field(default_factory=list)


class RecoveryManager:
    """Per-OSD recovery logic (both puller and pusher roles)."""

    __slots__ = (
        "osd",
        "env",
        "pool_names",
        "tick",
        "max_push_inflight",
        "pull_timeout",
        "_pulling",
        "_pull_progress",
        "_pull_attempts",
        "_pull_pending",
        "_persists",
        "_deferred_last",
        "_pulled_from",
        "_pulled_full",
        "_recv_names",
        "_tid",
        "_windows",
        "pulls_sent",
        "pulls_retried",
        "pushes_sent",
        "objects_recovered",
        "bytes_recovered",
        "pgs_recovered",
        "_proc",
    )

    def __init__(
        self,
        osd: "OsdDaemon",
        pool_names: list[str],
        tick: float = 1.0,
        max_push_inflight: int = 2,
        pull_timeout: float | None = None,
    ) -> None:
        self.osd = osd
        self.env = osd.env
        self.pool_names = pool_names
        self.tick = tick
        self.max_push_inflight = max_push_inflight
        #: re-issue a pull whose stream stalls this long (pusher died or
        #: a partition ate the pull/push messages)
        self.pull_timeout = (
            max(5.0, 5.0 * tick) if pull_timeout is None else pull_timeout
        )

        self._pulling: dict[PgId, float] = {}  # pgid -> pull start time
        #: pgid -> time the episode last made progress (a push arrived);
        #: a long healthy stream is not "stalled" — only silence is
        self._pull_progress: dict[PgId, float] = {}
        self._pull_attempts: dict[PgId, int] = {}
        #: pgid -> {source address: (source osd, holds full copy,
        #: source's content gen at pull start)} still owing a 'last'
        #: push this episode
        self._pull_pending: dict[PgId, dict[str, tuple[int, bool, int]]] = {}
        #: pgid -> {source: gen drained at} this recovery episode (so a
        #: wait for a missing full holder does not re-pull unchanged
        #: sources every tick; a source that takes new writes bumps its
        #: gen and is pulled again)
        self._pulled_from: dict[PgId, dict[int, int]] = {}
        #: pgid -> a drained source held a full copy
        self._pulled_full: dict[PgId, bool] = {}
        #: pgid -> {source address: object names its stream delivered}
        #: — at episode end, local objects a source never sent are
        #: pushed back to it (the symmetric half of the merge)
        self._recv_names: dict[PgId, dict[str, set]] = {}
        #: pgid -> data pushes whose local persist is still in flight;
        #: a stream's 'last' must not credit the episode while one of
        #: its objects has not durably landed in the (possibly proxied)
        #: store
        self._persists: dict[PgId, int] = {}
        #: pgid -> 'last' markers waiting for in-flight persists to
        #: drain before completing their source
        self._deferred_last: dict[PgId, list[tuple[str, tuple, tuple]]] = {}
        self._tid = 0
        self._windows: dict[int, _PushWindow] = {}  # push tid -> window

        # statistics
        self.pulls_sent = 0
        self.pulls_retried = 0
        self.pushes_sent = 0
        self.objects_recovered = 0
        self.bytes_recovered = 0
        self.pgs_recovered = 0

        self._proc = self.env.process(
            self._tick_loop(), name=f"{osd.name}.recovery"
        )

    def stop(self) -> None:
        """Halt the detection loop (daemon crash/shutdown)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("recovery stop")
        self._proc = None

    # ---------------------------------------------------------------- detection
    def _tick_loop(self) -> Generator[Any, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.tick)
                for pool in self.pool_names:
                    for pgid in self.osd.osdmap.all_pgs(pool):
                        self._check_pg(pool, pgid)
        except Interrupt:
            return

    def forget_pg(self, pgid: PgId) -> None:
        """Reset recovery bookkeeping for a PG (its local copy was
        discarded by a resync, so any episode in flight is void)."""
        self._pulling.pop(pgid, None)
        self._pull_progress.pop(pgid, None)
        self._pull_attempts.pop(pgid, None)
        self._pull_pending.pop(pgid, None)
        self._pulled_from.pop(pgid, None)
        self._pulled_full.pop(pgid, None)
        self._recv_names.pop(pgid, None)
        self._deferred_last.pop(pgid, None)

    def _check_pg(self, pool: str, pgid: PgId) -> None:
        osd = self.osd
        osdmap = osd.osdmap
        acting = osdmap.pg_to_osds(pgid)
        if osd.osd_id not in acting:
            return
        member = pgid in osd.member_pgs
        drained = self._pulled_from.get(pgid, {})
        my_gen = osdmap.holder_gen(pgid, osd.osd_id)
        if member:
            # Merge-back: a holder with a higher content generation has
            # acked writes this copy misses (interim writes taken while
            # the full holders were down, or a merge that folded such
            # writes in); pull the union from every such holder.
            sources = [
                o for o in osdmap.holders_of(pgid)
                if o != osd.osd_id and osdmap.is_up(o)
                and osdmap.holder_gen(pgid, o) > my_gen
            ]
            if not sources and pgid not in self._pulling:
                return
        else:
            holders = osdmap.holders_of(pgid)
            if not holders:
                # Brand-new PG nobody has ever held: sole-create it.
                osd.member_pgs.add(pgid)
                osdmap.record_pg_holder(
                    pgid, osd.osd_id, full=True, gen=osdmap.pg_gen(pgid)
                )
                osd.refresh_pg(pgid)
                self.forget_pg(pgid)
                return
            # Never claim an existing PG without data: if no holder is
            # up, the PG is unavailable until one returns — an empty
            # acting member declaring itself authoritative is how acked
            # writes die.  A source drained earlier this episode is
            # skipped unless it has since taken writes (its gen moved).
            sources = [
                o for o in holders
                if o != osd.osd_id and osdmap.is_up(o)
                and (o not in drained
                     or osdmap.holder_gen(pgid, o) > drained[o])
            ]
        started = self._pulling.get(pgid)
        if started is not None:
            last_alive = max(started, self._pull_progress.get(pgid, started))
            if self.env.now - last_alive < self.pull_timeout:
                return
            # stalled: no push arrived for a full timeout — the pusher
            # died or a partition ate the stream.  (A merely *long*
            # stream keeps refreshing its progress stamp and is never
            # restarted: re-issuing a live stream piles concurrent
            # full streams onto the same peers and collapses recovery.)
            self._pulling.pop(pgid, None)
            self._pull_progress.pop(pgid, None)
            self._pull_pending.pop(pgid, None)
            self._deferred_last.pop(pgid, None)
            self.pulls_retried += 1
        if not sources:
            return  # wait for a data-bearing peer to come up
        full_set = set(osdmap.full_holders_of(pgid))
        sources_info = [
            (o, o in full_set, osdmap.holder_gen(pgid, o)) for o in sources
        ]
        self._pull_attempts[pgid] = self._pull_attempts.get(pgid, 0) + 1
        self._pulling[pgid] = self.env.now
        self.env.process(
            self._start_pull(pool, pgid, sources_info),
            name=f"{self.osd.name}.pull.{pgid.seed:x}",
        )

    def _start_pull(
        self, pool: str, pgid: PgId,
        sources_info: list[tuple[int, bool, int]],
    ) -> Generator[Any, Any, None]:
        """Create the local collection, then ask every source to push.

        Pulling the *union* of all reachable holders matters: after an
        availability gap the full copy and the interim acked writes may
        live on different OSDs, and both must land here (pushes never
        clobber an existing local object, so arrival order is
        immaterial for distinct names).  Each source's content gen is
        captured *now*: a write landing on it mid-stream may miss the
        stream, so completion only credits the gen the pull asked for —
        the next tick sees the newer gen and pulls again.

        The pull advertises the local object inventory (``have``) so
        each source streams only the delta: a member catching up a
        content generation misses a handful of interim writes, and
        re-streaming the whole PG for them is what used to push
        episodes past the stall timeout."""
        osd = self.osd
        pg = osd.refresh_pg(pgid)
        pg.clean = False
        txn = Transaction().create_collection(pg.collection)
        try:
            yield from osd.store.queue_transaction(
                txn, osd._completion_thread
            )
            local = yield from osd.store.list_objects(
                pg.collection, osd._completion_thread
            )
        except StoreError:
            # backend unreachable (a proxied store's RPC timed out):
            # abort this episode, the next tick retries
            self._pulling.pop(pgid, None)
            self.pulls_retried += 1
            return
        have = tuple(sorted(local))
        pending = {
            osd.osdmap.address_of(source): (source, full, gen)
            for source, full, gen in sources_info
        }
        self._pull_pending[pgid] = pending
        for addr in sorted(pending):
            self._tid += 1
            self.pulls_sent += 1
            osd.messenger.send_message(
                MOSDPGPull(tid=self._tid, pool=pool, pg_seed=pgid.seed,
                           map_epoch=osd.osdmap.epoch, have=have),
                addr,
            )

    # ---------------------------------------------------------------- pusher
    def handle_pull(self, msg: MOSDPGPull) -> None:
        """A peer asked for this PG's objects (we have them)."""
        self.env.process(
            self._push_pg(msg), name=f"{self.osd.name}.push.{msg.pg_seed:x}"
        )

    def _push_pg(self, msg: MOSDPGPull) -> Generator[Any, Any, None]:
        osd = self.osd
        pool = osd.osdmap.pool_by_name(msg.pool)
        pgid = PgId(pool.id, msg.pg_seed)
        pg = osd.pgs.get(pgid)
        coll = str(pgid)
        thread = osd._completion_thread
        try:
            names = yield from osd.store.list_objects(coll, thread)
        except StoreError:
            # cannot enumerate the local copy (a proxied store's RPC
            # failed): stay silent rather than send an empty stream with
            # a clean 'last' marker — the puller would credit itself a
            # full copy it never received and an acked write becomes
            # unreachable through the new primary.  The puller's stall
            # timer retries the episode.
            return
        puller_has = set(msg.have)
        to_send = [n for n in names if n not in puller_has]
        skipped = tuple(sorted(n for n in names if n in puller_has))
        window = _PushWindow()
        incomplete = False
        sent_names: list[str] = []
        for name in to_send:
            try:
                blob = yield from osd.store.read(coll, name, 0, 1 << 62,
                                                 thread)
            except StoreError:
                # this object never made it onto the wire: the stream
                # is incomplete, so it must not carry a 'last' marker
                incomplete = True
                continue
            while window.inflight >= self.max_push_inflight:
                ev = self.env.event()
                window.waiters.append(ev)
                yield ev
            window.inflight += 1
            self._tid += 1
            self._windows[self._tid] = window
            self.pushes_sent += 1
            sent_names.append(name)
            osd.messenger.send_message(
                MOSDPGPush(
                    tid=self._tid, pool=msg.pool, pg_seed=msg.pg_seed,
                    object_name=name, length=blob.length, data=blob,
                ),
                msg.src,
            )
        if incomplete:
            return  # puller's stall timer re-pulls the missing delta
        # dedicated 'last' marker (no payload) after the data pushes: it
        # carries the skipped names so the puller knows the source's
        # full inventory when computing what to push back, and the
        # manifest of streamed names so the puller can detect a data
        # push the wire layer consumed (session drop, partition) and
        # refuse to credit a holed episode
        self._tid += 1
        osd.messenger.send_message(
            MOSDPGPush(tid=self._tid, pool=msg.pool,
                       pg_seed=msg.pg_seed, last=True, skipped=skipped,
                       pushed=tuple(sent_names)),
            msg.src,
        )

    def handle_push_reply(self, msg: MOSDPGPushReply) -> None:
        window = self._windows.pop(msg.tid, None)
        if window is None:
            return
        window.inflight -= 1
        if window.waiters:
            window.waiters.pop(0).succeed()

    # ---------------------------------------------------------------- puller
    def handle_push(self, msg: MOSDPGPush) -> Generator[Any, Any, None]:
        """An object arrived; persist it and ack (runs as a process)."""
        osd = self.osd
        pool = osd.osdmap.pool_by_name(msg.pool)
        pgid = PgId(pool.id, msg.pg_seed)
        coll = str(pgid)
        thread = osd._completion_thread
        if msg.src in self._pull_pending.get(pgid, {}):
            # the stream is alive: refresh the stall stamp so a long
            # (but progressing) episode is not restarted from scratch
            self._pull_progress[pgid] = self.env.now
        if msg.data is not None:
            if msg.src in self._pull_pending.get(pgid, {}):
                # remember what this source's stream delivered: local
                # objects it never sent get pushed back at episode end
                self._recv_names.setdefault(pgid, {}).setdefault(
                    msg.src, set()
                ).add(msg.object_name)
            # a client write that landed here after the pull started is
            # newer than the pushed copy — never clobber it
            applied = False
            self._persists[pgid] = self._persists.get(pgid, 0) + 1
            try:
                try:
                    have = yield from osd.store.exists(
                        coll, msg.object_name, thread
                    )
                except StoreError:
                    have = False
                else:
                    if not have:
                        txn = Transaction().write(
                            coll, msg.object_name, 0, msg.length, msg.data
                        )
                        try:
                            yield from osd.store.queue_transaction(
                                txn, thread
                            )
                        except StoreError:
                            pass
                        else:
                            applied = True
                            self.objects_recovered += 1
                            self.bytes_recovered += msg.length
                    else:
                        applied = True
                if not applied and pgid in self._pull_pending:
                    # the object reached us but the local (possibly
                    # proxied) store could not persist it: the episode
                    # can no longer complete honestly — abort it so the
                    # next tick re-pulls.  Completing anyway would
                    # register a "full" copy that silently lacks this
                    # object (its stream 'last' is now ignored as
                    # stray).
                    self._pull_pending.pop(pgid, None)
                    self._pulling.pop(pgid, None)
                    self._pull_progress.pop(pgid, None)
                    self._recv_names.pop(pgid, None)
                    self._deferred_last.pop(pgid, None)
                    self.pulls_retried += 1
            finally:
                # persist done (or aborted): when the last in-flight
                # persist for this PG drains, fire any 'last' markers
                # that were held back waiting for it
                left = self._persists.get(pgid, 1) - 1
                if left > 0:
                    self._persists[pgid] = left
                else:
                    self._persists.pop(pgid, None)
                    for src, skipped, pushed in self._deferred_last.pop(
                        pgid, []
                    ):
                        self._complete_source(pgid, src, skipped, pushed)
        osd.messenger.send_message(
            MOSDPGPushReply(tid=msg.tid, pg_seed=msg.pg_seed), msg.src
        )
        if msg.last:
            if (
                self._persists.get(pgid)
                and msg.src in self._pull_pending.get(pgid, {})
            ):
                # pushes run as concurrent processes: a data push from
                # this stream may still be persisting (slow/faulted
                # proxied store).  Crediting the episode now would
                # register a copy whose store never saw that object —
                # hold the marker until the persists drain.
                self._deferred_last.setdefault(pgid, []).append(
                    (msg.src, msg.skipped, msg.pushed)
                )
            else:
                self._complete_source(pgid, msg.src, msg.skipped,
                                      msg.pushed)
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()

    def _complete_source(
        self, pgid: PgId, addr: str, skipped: tuple = (),
        pushed: tuple = (),
    ) -> None:
        """A source finished its stream; finish the episode when all
        requested sources have delivered."""
        pending = self._pull_pending.get(pgid)
        if pending is None:
            return  # stray 'last' from a superseded episode
        if addr in pending and pushed:
            # The 'last' marker's manifest names every object its
            # stream sent.  A name we never saw means a data push was
            # consumed at the wire layer (session reset dropped the
            # pending frame, or a partition tombstoned it) while the
            # marker itself survived — crediting this episode would
            # register a "full" copy with a hole where an acked write
            # should be.  Abort; the stall timer / next tick re-pulls.
            got = self._recv_names.get(pgid, {}).get(addr, set())
            if any(name not in got for name in pushed):
                self._pull_pending.pop(pgid, None)
                self._pulling.pop(pgid, None)
                self._pull_progress.pop(pgid, None)
                self._recv_names.pop(pgid, None)
                self._deferred_last.pop(pgid, None)
                self.pulls_retried += 1
                return
        entry = pending.pop(addr, None)
        if entry is not None:
            source, full, gen = entry
            self._pulled_from.setdefault(pgid, {})[source] = gen
            if full:
                self._pulled_full[pgid] = True
            if skipped:
                # names the source holds but did not stream (we declared
                # them in ``have``): the source knows these, so they are
                # excluded from the push-back backlog below
                self._recv_names.setdefault(pgid, {}).setdefault(
                    addr, set()
                ).update(skipped)
        if pending:
            return
        del self._pull_pending[pgid]
        self._pulling.pop(pgid, None)
        self._pull_progress.pop(pgid, None)
        self._deferred_last.pop(pgid, None)
        osd = self.osd
        osdmap = osd.osdmap
        was_member = pgid in osd.member_pgs
        drained = self._pulled_from.get(pgid, {})
        # The local copy is the union of what it was and every drained
        # stream: it reflects at least the highest gen it asked for.
        new_gen = max(
            [osdmap.holder_gen(pgid, osd.osd_id), *drained.values()]
        )
        recv = self._recv_names.pop(pgid, {})
        if was_member or self._pulled_full.get(pgid, False):
            # The local copy now unions a full copy with every drained
            # interim holder: it is authoritative.
            osd.member_pgs.add(pgid)
            osdmap.record_pg_holder(
                pgid, osd.osd_id, full=True, gen=new_gen
            )
            pg = osd.pgs.get(pgid)
            if pg is not None:
                pg.clean = True
            self._pull_attempts.pop(pgid, None)
            if not was_member:
                self.pgs_recovered += 1
            self._pulled_from.pop(pgid, None)
            self._pulled_full.pop(pgid, None)
        else:
            # Only partial holders were reachable: we hold their union
            # but not a full copy.  Stay unclean and wait for a full
            # holder; ``_pulled_from`` remembers the drained sources so
            # they are not re-pulled every tick.
            osdmap.record_pg_holder(
                pgid, osd.osd_id, full=False, gen=new_gen
            )
        # Symmetric half of the merge: anything we hold that a source's
        # stream did not include (interim writes we took, or objects
        # another source contributed) is unknown to that source — push
        # it back so its copy converges on the union too.
        targets = {}
        for source in drained:
            if osdmap.is_up(source):
                source_addr = osdmap.address_of(source)
                targets[source_addr] = recv.get(source_addr, set())
        self.env.process(
            self._push_back(pgid, targets),
            name=f"{osd.name}.pushback.{pgid.seed:x}",
        )

    def _push_back(
        self, pgid: PgId, targets: dict[str, set]
    ) -> Generator[Any, Any, None]:
        """Send each drained source the local objects its stream lacked.

        Receivers treat these like any recovery push — persist if the
        name is absent, ack — and ``last`` is never set, so a source
        concurrently pulling from us cannot mistake this stream for the
        completion of its own episode."""
        osd = self.osd
        coll = str(pgid)
        pool_name = osd.osdmap.pools[pgid.pool].name
        thread = osd._completion_thread
        try:
            local = yield from osd.store.list_objects(coll, thread)
        except StoreError:
            return
        for addr in sorted(targets):
            backlog = sorted(set(local) - targets[addr])
            if not backlog:
                continue
            window = _PushWindow()
            for name in backlog:
                try:
                    blob = yield from osd.store.read(coll, name, 0, 1 << 62,
                                                     thread)
                except StoreError:
                    continue
                while window.inflight >= self.max_push_inflight:
                    ev = self.env.event()
                    window.waiters.append(ev)
                    yield ev
                window.inflight += 1
                self._tid += 1
                self._windows[self._tid] = window
                self.pushes_sent += 1
                osd.messenger.send_message(
                    MOSDPGPush(
                        tid=self._tid, pool=pool_name, pg_seed=pgid.seed,
                        object_name=name, length=blob.length, data=blob,
                        last=False,
                    ),
                    addr,
                )

    def __repr__(self) -> str:
        return (
            f"<RecoveryManager {self.osd.name} recovered="
            f"{self.objects_recovered} objs/{self.bytes_recovered} B>"
        )
