"""Light scrubbing: periodic replica-consistency checks.

The primary of each PG periodically builds a per-object digest list
(name + version, via metadata stats) and sends it to the replicas,
which compare against their own metadata and report mismatches.  This
is Ceph's light scrub — pure control-plane traffic, which under DoCeph
flows over the proxy RPC channel and costs the host almost nothing.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from ..msgr.message import MScrubDigest, MScrubReply
from ..objectstore.api import NoSuchObject, StoreError
from ..rados.types import PgId
from ..sim import Event
from ..sim.exceptions import Interrupt
from ..util.rjenkins import crush_hash32_2, ceph_str_hash_rjenkins

if TYPE_CHECKING:
    from .daemon import OsdDaemon

__all__ = ["ScrubManager"]


def _digest(name: str, version: int) -> int:
    """Metadata digest of one object replica."""
    return crush_hash32_2(ceph_str_hash_rjenkins(name), version)


class ScrubManager:
    """Round-robin light scrubber for the PGs this OSD leads."""

    __slots__ = (
        "osd",
        "env",
        "pool_names",
        "interval",
        "_tid",
        "_pending",
        "_cursor",
        "scrubs_completed",
        "objects_scrubbed",
        "inconsistencies",
        "_proc",
    )

    def __init__(
        self,
        osd: "OsdDaemon",
        pool_names: list[str],
        interval: float = 20.0,
    ) -> None:
        self.osd = osd
        self.env = osd.env
        self.pool_names = pool_names
        self.interval = interval
        self._tid = 0
        self._pending: dict[int, Event] = {}
        self._cursor = 0

        # statistics
        self.scrubs_completed = 0
        self.objects_scrubbed = 0
        self.inconsistencies = 0

        self._proc = self.env.process(
            self._loop(), name=f"{osd.name}.scrub"
        )

    def _primary_pgs(self) -> list[PgId]:
        out = []
        for pool in self.pool_names:
            for pgid in self.osd.osdmap.all_pgs(pool):
                acting = self.osd.osdmap.pg_to_osds(pgid)
                if acting and acting[0] == self.osd.osd_id:
                    out.append(pgid)
        return out

    def stop(self) -> None:
        """Halt the scrub loop (daemon crash/shutdown)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("scrub stop")
        self._proc = None

    def _loop(self) -> Generator[Any, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.interval)
                pgs = self._primary_pgs()
                if not pgs:
                    continue
                pgid = pgs[self._cursor % len(pgs)]
                self._cursor += 1
                yield from self._scrub_pg(pgid)
        except Interrupt:
            return

    def _scrub_pg(self, pgid: PgId) -> Generator[Any, Any, None]:
        osd = self.osd
        coll = str(pgid)
        thread = osd._completion_thread
        digests = yield from self._local_digests(coll, thread)
        if digests is None:
            return
        self.objects_scrubbed += len(digests)

        acting = osd.osdmap.pg_to_osds(pgid)
        replies = []
        for replica in acting[1:]:
            self._tid += 1
            ev = self.env.event()
            self._pending[self._tid] = ev
            replies.append(ev)
            osd.messenger.send_message(
                MScrubDigest(tid=self._tid, pool=self._pool_name(pgid),
                             pg_seed=pgid.seed, digests=digests),
                osd.osdmap.address_of(replica),
            )
        for ev in replies:
            reply: MScrubReply = yield ev
            self.inconsistencies += reply.mismatches
        self.scrubs_completed += 1

    def _pool_name(self, pgid: PgId) -> str:
        return self.osd.osdmap.pools[pgid.pool].name

    def _local_digests(
        self, coll: str, thread: Any
    ) -> Generator[Any, Any, Optional[dict[str, int]]]:
        osd = self.osd
        try:
            names = yield from osd.store.list_objects(coll, thread)
        except StoreError:
            return None
        digests: dict[str, int] = {}
        for name in names:
            try:
                st = yield from osd.store.stat(coll, name, thread)
            except NoSuchObject:
                continue
            except StoreError:
                return None  # backend unreachable: skip this scrub
            digests[name] = _digest(name, st.version)
        return digests

    # ---------------------------------------------------------------- replica side
    def handle_digest(self, msg: MScrubDigest) -> Generator[Any, Any, None]:
        """Compare the primary's digests against ours; reply (process)."""
        osd = self.osd
        pool = osd.osdmap.pool_by_name(msg.pool)
        coll = str(PgId(pool.id, msg.pg_seed))
        ours = yield from self._local_digests(coll, osd._completion_thread)
        if ours is None:
            ours = {}
        mismatches = 0
        for name, digest in msg.digests.items():
            if ours.get(name) != digest:
                mismatches += 1
        mismatches += sum(1 for name in ours if name not in msg.digests)
        osd.messenger.send_message(
            MScrubReply(tid=msg.tid, pg_seed=msg.pg_seed,
                        mismatches=mismatches),
            msg.src,
        )
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()

    def handle_reply(self, msg: MScrubReply) -> None:
        ev = self._pending.pop(msg.tid, None)
        if ev is not None:
            ev.succeed(msg)

    def __repr__(self) -> str:
        return (
            f"<ScrubManager {self.osd.name} scrubs={self.scrubs_completed}"
            f" inconsistencies={self.inconsistencies}>"
        )
