"""Performance harness: deterministic workload replay + engine metrics.

The simulator's wall-clock throughput is the binding constraint on every
scale-up experiment, so this module gives the repository a first-class
way to measure it — and to prove that making the engine faster did not
change what it simulates.

* :data:`SCENARIOS` — small, named, fully-deterministic workload
  configurations (the same cluster builders and RADOS bench driver the
  experiments use).  Replaying a scenario at a fixed seed always yields
  the same event sequence, so its :func:`~repro.trace.simulation_digest`
  is a golden value: any engine "optimization" that perturbs behavior
  changes the digest and fails loudly.
* :func:`measure` — run a scenario and report events/sec, wall-clock
  seconds per simulated second, peak event-heap depth, and (optionally)
  a cProfile-derived per-subsystem breakdown.
* :func:`measure_hook_overhead` — quantify the per-event cost of the
  fault/trace hook *guards* by comparing a detached run against a run
  with an attached-but-never-firing fault plan (``dma,p=0``).  The two
  runs must produce identical digests; their wall-clock delta is the
  hook overhead.

Results serialize via :func:`perf_result_dict` into
``BENCH_perf_<scenario>.json`` artifacts (see the ``perf`` CLI
subcommand) so the engine-speed trajectory is tracked PR-over-PR.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Optional

from .bench.radosbench import BenchResult, run_rados_bench
from .cluster.builder import build_baseline_cluster, build_doceph_cluster
from .cluster.config import DocephProfile
from .faults import FaultPlan
from .qos.runner import run_qos
from .qos.tenants import default_tenants
from .sim import Environment
from .trace import simulation_digest
from .util.wallclock import perf_counter

__all__ = [
    "PerfScenario",
    "PerfResult",
    "HookOverhead",
    "SCENARIOS",
    "run_scenario",
    "measure",
    "measure_hook_overhead",
    "perf_result_dict",
    "format_perf_report",
]

KB = 1 << 10
MB = 1 << 20

#: A run with no attached fault plan; distinct from ``None`` arguments
#: inside :func:`run_scenario` so callers can force-detach.
_DETACHED = object()


@dataclass(frozen=True)
class PerfScenario:
    """One named, deterministic benchmark configuration.

    ``faults`` is a fault-plan spec string (seeded with the scenario
    seed at run time) or ``None``; ``fast_recovery`` selects the
    fallback experiments' prompt-detection profile tuning.
    """

    name: str
    mode: str  # "baseline" | "doceph" | "qos"
    object_size: int
    clients: int
    duration: float
    warmup: float = 1.0
    faults: Optional[str] = None
    fast_recovery: bool = False
    description: str = ""


#: The standard replay scenarios.  ``smoke`` is sized for CI;
#: ``fallback`` replays the §4 robustness workload (the acceptance
#: scenario for engine optimizations); ``baseline``/``doceph`` replay
#: the two §5 testbeds at a representative size.
SCENARIOS: dict[str, PerfScenario] = {
    s.name: s
    for s in (
        PerfScenario(
            name="smoke", mode="doceph", object_size=1 * MB, clients=2,
            duration=2.0, warmup=1.0,
            description="small DoCeph write run (CI-sized)",
        ),
        PerfScenario(
            name="fallback", mode="doceph", object_size=4 * MB, clients=8,
            duration=4.0, warmup=1.0, faults="dma,p=0.3",
            fast_recovery=True,
            description="DoCeph under DMA faults on the kernel-socket "
                        "fallback path (§4)",
        ),
        PerfScenario(
            name="baseline", mode="baseline", object_size=4 * MB, clients=8,
            duration=4.0, warmup=1.0,
            description="host-messenger Baseline write run (§5)",
        ),
        PerfScenario(
            name="doceph", mode="doceph", object_size=4 * MB, clients=8,
            duration=4.0, warmup=1.0,
            description="DPU-messenger DoCeph write run (§5)",
        ),
        PerfScenario(
            name="qos", mode="qos", object_size=64 * KB, clients=4,
            duration=2.0, warmup=0.0,
            description="multi-tenant open-loop mClock serving replay "
                        "(PR-8 workload; warmup unused)",
        ),
    )
}


def run_scenario(
    name: str,
    seed: int = 0,
    tracer: Any = None,
    fault_plan: Any = _DETACHED,
) -> tuple[Environment, BenchResult]:
    """Replay scenario ``name`` once; returns ``(env, bench_result)``.

    ``fault_plan`` overrides the scenario's own plan when given (pass
    ``None`` to force a detached run of a faulty scenario).
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown perf scenario: {name!r} "
            f"(choose from {', '.join(sorted(SCENARIOS))})"
        ) from None
    if fault_plan is _DETACHED:
        fault_plan = (
            FaultPlan.parse(scenario.faults, seed=seed)
            if scenario.faults else None
        )
    if scenario.mode == "qos":
        if fault_plan is not None:
            raise ValueError(
                "the qos scenario drives run_qos, which has no fault-plan "
                "hookup; pass fault_plan=None"
            )
        env = Environment()
        qos_result = run_qos(
            "full-osd",
            default_tenants(
                count=scenario.clients, object_size=scenario.object_size
            ),
            seed=seed,
            duration=scenario.duration,
            prepopulate=16,
            env=env,
            tracer=tracer,
        )
        return env, qos_result.bench
    profile = None
    if scenario.fast_recovery:
        # same tuning as experiment_fallback: prompt fault detection
        profile = DocephProfile(
            cooldown_seconds=0.5, rpc_timeout_seconds=0.5
        )
    env = Environment()
    builder = (build_doceph_cluster if scenario.mode == "doceph"
               else build_baseline_cluster)
    if profile is not None:
        cluster = builder(env, profile, fault_plan=fault_plan,
                          tracer=tracer)
    else:
        cluster = builder(env, fault_plan=fault_plan, tracer=tracer)
    result = run_rados_bench(
        cluster, object_size=scenario.object_size,
        clients=scenario.clients, duration=scenario.duration,
        warmup=scenario.warmup,
    )
    return env, result


@dataclass
class PerfResult:
    """Engine-speed metrics from one scenario replay."""

    scenario: str
    seed: int
    wall_s: float
    sim_s: float
    events: int
    peak_heap: int
    digest: str
    completed_ops: int
    iops: float
    repeats: int = 1
    trace_fingerprint: Optional[str] = None
    #: subsystem → ``{"calls": int, "tottime_s": float, "share": float}``
    #: (populated only when profiling was requested).
    subsystems: Optional[dict[str, dict[str, float]]] = None
    #: top profiled functions, ``(where, calls, tottime_s)``.
    hot: list[tuple[str, int, float]] = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def wall_per_sim_s(self) -> float:
        """Wall-clock seconds spent per simulated second."""
        return self.wall_s / self.sim_s if self.sim_s > 0 else 0.0


def _subsystem_of(filename: str) -> str:
    """Map a profiled code object's file to a repro subsystem name."""
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    idx = normalized.rfind(marker)
    if idx < 0:
        return "external" if "/" in normalized else "interpreter"
    rest = normalized[idx + len(marker):]
    if "/" in rest:
        return rest.split("/", 1)[0]
    return rest[:-3] if rest.endswith(".py") else rest


def _profile_breakdown(
    stats: pstats.Stats, top: int = 12
) -> tuple[dict[str, dict[str, float]], list[tuple[str, int, float]]]:
    """Aggregate cProfile stats per subsystem + extract hottest funcs."""
    by_sub: dict[str, dict[str, float]] = {}
    rows = []
    total = 0.0
    for (filename, lineno, func), (cc, nc, tottime, _cum, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        sub = _subsystem_of(filename)
        agg = by_sub.setdefault(sub, {"calls": 0, "tottime_s": 0.0})
        agg["calls"] += nc
        agg["tottime_s"] += tottime
        total += tottime
        short = filename.replace("\\", "/").rsplit("/", 1)[-1]
        rows.append((f"{short}:{lineno}({func})", nc, tottime))
    if total > 0:
        for agg in by_sub.values():
            agg["share"] = agg["tottime_s"] / total
    rows.sort(key=lambda r: r[2], reverse=True)
    return by_sub, rows[:top]


def measure(
    scenario: str,
    seed: int = 0,
    repeats: int = 1,
    profile: bool = False,
    tracer: Any = None,
) -> PerfResult:
    """Replay ``scenario`` ``repeats`` times; report the fastest run.

    Every repeat must produce the same digest (the harness's own
    self-check of determinism).  With ``profile=True`` the *last*
    repeat runs under cProfile (its wall time is excluded from the
    events/sec figure, since profiling roughly doubles it).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best_wall = None
    digest = None
    env = result = None
    for _ in range(repeats):
        t0 = perf_counter()
        env, result = run_scenario(scenario, seed=seed, tracer=tracer)
        wall = perf_counter() - t0
        d = simulation_digest(env)
        if digest is None:
            digest = d
        elif d != digest:
            raise AssertionError(
                f"non-deterministic replay of {scenario!r}: "
                f"{d} != {digest}"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert env is not None and result is not None
    subsystems = None
    hot: list[tuple[str, int, float]] = []
    if profile:
        prof = cProfile.Profile()
        prof.enable()
        penv, _ = run_scenario(scenario, seed=seed, tracer=tracer)
        prof.disable()
        if simulation_digest(penv) != digest:
            raise AssertionError(
                f"profiled replay of {scenario!r} diverged"
            )
        subsystems, hot = _profile_breakdown(pstats.Stats(prof))
    fingerprint = None
    if tracer is not None and result.trace is not None:
        fingerprint = result.trace.fingerprint()
    return PerfResult(
        scenario=scenario,
        seed=seed,
        wall_s=best_wall or 0.0,
        sim_s=env.now,
        events=env._seq,
        peak_heap=getattr(env, "_peak_pending", 0),
        digest=digest or "",
        completed_ops=result.completed_ops,
        iops=result.iops,
        repeats=repeats,
        trace_fingerprint=fingerprint,
        subsystems=subsystems,
        hot=hot,
    )


@dataclass
class HookOverhead:
    """Detached vs attached-noop hook cost for one scenario."""

    scenario: str
    seed: int
    detached_wall_s: float
    noop_wall_s: float
    digests_equal: bool

    @property
    def overhead_pct(self) -> float:
        """Extra wall-clock of the noop-attached run, in percent.

        Negative values are measurement noise (the runs are identical
        event-for-event)."""
        if self.detached_wall_s <= 0:
            return 0.0
        return 100.0 * (self.noop_wall_s / self.detached_wall_s - 1.0)


def measure_hook_overhead(
    scenario: str, seed: int = 0, repeats: int = 3
) -> HookOverhead:
    """Compare a detached run against an attached-but-noop fault plan.

    The noop plan (``dma,p=0``) wires a LayerInjector into the DMA
    engines so every per-transfer guard executes, but a zero probability
    short-circuits before any RNG draw — the two runs are event-for-event
    identical, so any wall-clock delta is pure hook overhead.  Fastest
    of ``repeats`` runs per side, interleaved to cancel drift.
    """
    noop = FaultPlan.parse("dma,p=0", seed=seed)
    detached_wall = noop_wall = None
    detached_digest = noop_digest = None
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        env_d, _ = run_scenario(scenario, seed=seed, fault_plan=None)
        w = perf_counter() - t0
        detached_wall = w if detached_wall is None else min(detached_wall, w)
        detached_digest = simulation_digest(env_d)

        t0 = perf_counter()
        env_n, _ = run_scenario(scenario, seed=seed, fault_plan=noop)
        w = perf_counter() - t0
        noop_wall = w if noop_wall is None else min(noop_wall, w)
        noop_digest = simulation_digest(env_n)
    return HookOverhead(
        scenario=scenario,
        seed=seed,
        detached_wall_s=detached_wall or 0.0,
        noop_wall_s=noop_wall or 0.0,
        digests_equal=detached_digest == noop_digest,
    )


def perf_result_dict(result: PerfResult) -> dict[str, Any]:
    """Machine-readable perf summary (``BENCH_perf_<scenario>.json``).

    The ``digest``/``events``/``sim_s`` fields are deterministic golden
    values; the wall-clock figures vary with the host machine and are
    rounded to microseconds."""
    out: dict[str, Any] = {
        "scenario": result.scenario,
        "seed": result.seed,
        "digest": result.digest,
        "events": result.events,
        "sim_s": round(result.sim_s, 9),
        "peak_heap": result.peak_heap,
        "completed_ops": result.completed_ops,
        "iops": round(result.iops, 9),
        "wall_s": round(result.wall_s, 6),
        "events_per_sec": round(result.events_per_sec, 1),
        "wall_per_sim_s": round(result.wall_per_sim_s, 6),
        "repeats": result.repeats,
    }
    if result.trace_fingerprint is not None:
        out["trace_fingerprint"] = result.trace_fingerprint
    if result.subsystems is not None:
        out["subsystems"] = {
            sub: {
                "calls": int(agg["calls"]),
                "tottime_s": round(agg["tottime_s"], 6),
                "share": round(agg.get("share", 0.0), 6),
            }
            for sub, agg in sorted(result.subsystems.items())
        }
    if result.hot:
        out["hot"] = [
            {"where": where, "calls": calls, "tottime_s": round(t, 6)}
            for where, calls, t in result.hot
        ]
    return out


def format_perf_report(result: PerfResult) -> str:
    """Human-readable perf report for the CLI."""
    lines = [
        f"scenario={result.scenario} seed={result.seed}"
        f" (best of {result.repeats})",
        f"  wall time:     {result.wall_s:.3f} s"
        f" for {result.sim_s:.3f} simulated s"
        f" ({result.wall_per_sim_s:.3f} wall-s per sim-s)",
        f"  events:        {result.events}"
        f" ({result.events_per_sec:,.0f} events/s)",
        f"  peak heap:     {result.peak_heap} pending events",
        f"  completed ops: {result.completed_ops}"
        f" ({result.iops:.1f} IOPS simulated)",
        f"  digest:        {result.digest}",
    ]
    if result.trace_fingerprint is not None:
        lines.append(f"  trace fp:      {result.trace_fingerprint}")
    if result.subsystems:
        lines.append("  per-subsystem profile (tottime):")
        ranked = sorted(
            result.subsystems.items(),
            key=lambda kv: kv[1]["tottime_s"], reverse=True,
        )
        for sub, agg in ranked:
            lines.append(
                f"    {sub:14s} {agg['tottime_s']:8.3f} s"
                f"  {100 * agg.get('share', 0.0):5.1f} %"
                f"  {int(agg['calls']):>9d} calls"
            )
    if result.hot:
        lines.append("  hottest functions:")
        for where, calls, tottime in result.hot:
            lines.append(f"    {tottime:8.3f} s  {calls:>9d}  {where}")
    return "\n".join(lines)
