"""repro.qos — multi-tenant open-loop serving with mClock QoS.

The paper benchmarks one tenant in a closed loop; real RADOS clusters
multiplex tenants whose offered load exceeds capacity.  This package
adds the serving side of that story on top of the existing simulation:

* :mod:`~repro.qos.tenants` — per-tenant workload + QoS specifications,
* :mod:`~repro.qos.workload` — deterministic open-loop arrival
  generation (seeded Poisson / bursty streams per tenant),
* :mod:`~repro.qos.admission` — client-side admission control
  (bounded in-flight window, ``-EAGAIN`` shedding),
* :mod:`~repro.qos.runner` — the harness tying it together: pick an
  offload strategy, install mClock tags on every OSD, drive the
  tenants, and report per-tenant SLO/fairness metrics with a
  deterministic fingerprint.
"""

from .admission import AdmissionController
from .runner import QosResult, qos_payload, run_qos
from .tenants import TenantSpec, default_tenants
from .workload import TenantStats

__all__ = [
    "AdmissionController",
    "QosResult",
    "TenantSpec",
    "TenantStats",
    "default_tenants",
    "qos_payload",
    "run_qos",
]
