"""Client-side admission control: bounded per-tenant in-flight windows.

Open-loop arrivals do not self-limit, so under overload the client
would otherwise queue unbounded work and every tenant's latency would
diverge together.  The controller gives each tenant a fixed window of
in-flight ops; arrivals beyond it are shed *before* any simulation
event fires (:class:`~repro.rados.client.RadosClient` raises
``-EAGAIN``), which keeps shedding free of timing side effects and
makes goodput-vs-offered a meaningful overload metric.

Duck-typed against ``RadosClient.admission``: only ``try_acquire`` and
``release`` are called from the op path.
"""

from __future__ import annotations

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-tenant in-flight window with admit/shed accounting."""

    __slots__ = ("_window", "_inflight", "admitted", "shed")

    def __init__(self) -> None:
        self._window: dict[str, int] = {}
        self._inflight: dict[str, int] = {}
        #: Per-tenant ops admitted through the window.
        self.admitted: dict[str, int] = {}
        #: Per-tenant ops shed at the window.
        self.shed: dict[str, int] = {}

    def set_window(self, tenant: str, window: int) -> None:
        """Install (or resize) ``tenant``'s in-flight window."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window[tenant] = window

    def window_of(self, tenant: str) -> int | None:
        """The configured window, or None if the tenant is unmetered."""
        return self._window.get(tenant)

    def inflight(self, tenant: str) -> int:
        """Currently admitted-but-uncompleted ops for ``tenant``."""
        return self._inflight.get(tenant, 0)

    def try_acquire(self, tenant: str) -> bool:
        """Admit one op, or return False if the window is full.

        Tenants without a configured window are never shed (they are
        still counted, so reports stay complete).
        """
        window = self._window.get(tenant)
        inflight = self._inflight.get(tenant, 0)
        if window is not None and inflight >= window:
            self.shed[tenant] = self.shed.get(tenant, 0) + 1
            return False
        self._inflight[tenant] = inflight + 1
        self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
        return True

    def release(self, tenant: str) -> None:
        """Return one in-flight slot (op completed or failed)."""
        inflight = self._inflight.get(tenant, 0)
        if inflight <= 0:
            raise RuntimeError(f"release without acquire for {tenant!r}")
        self._inflight[tenant] = inflight - 1

    def total_shed(self) -> int:
        """Ops shed across all tenants."""
        return sum(self.shed.values())
