"""The multi-tenant QoS harness: strategy in, SLO report out.

``run_qos`` assembles one cluster via a named offload strategy
(:mod:`repro.cluster.strategy`), installs each tenant's mClock tags on
every OSD (reservation/limit are aggregate ops/s, divided by OSD count
so the per-queue floors sum back to the contract), attaches client-side
admission control, drives the open-loop tenants for ``duration``
simulated seconds, and reports:

* the canonical bench block (``bench_result_dict`` shape) aggregated
  across tenants,
* per-tenant goodput vs offered, shed counts, reservation attainment,
  and latency percentiles,
* Jain fairness over raw and weight-normalized goodput,
* a sha256 fingerprint over everything deterministic (the ``engine``
  wall-clock block is excluded), so two runs of the same seed are
  byte-comparable — the replay gate the CLI and CI enforce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Sequence

from ..bench.metrics import (
    CpuSampler,
    collect_fault_report,
    collect_health_report,
)
from ..bench.radosbench import BenchResult
from ..cluster.builder import BENCH_POOL, Cluster
from ..cluster.strategy import get_strategy
from ..osd.opqueue import QosSpec
from ..sim import Environment
from ..trace import Tracer
from ..util.stats import (
    RunningStats,
    TimeSeries,
    jain_fairness_index,
    percentile,
)
from ..util.wallclock import perf_counter
from .admission import AdmissionController
from .tenants import TenantSpec, default_tenants
from .workload import TenantStats, open_loop_tenant, tenant_rng

__all__ = ["QosResult", "qos_payload", "run_qos"]


@dataclass(slots=True)
class QosResult:
    """Everything one multi-tenant QoS run produced."""

    strategy: str
    seed: int
    duration: float
    specs: list[TenantSpec]
    tenants: list[TenantStats]
    #: Aggregate (all tenants folded together) in the canonical bench
    #: shape, so the standard reporting/schema path applies unchanged.
    bench: BenchResult
    #: Summed mClock queue counters across OSDs
    #: (tagged_enqueued / reservation_served / weight_served /
    #: limit_deferrals).
    queue_stats: dict[str, int] = field(default_factory=dict)
    admission: Optional[AdmissionController] = None
    #: Aggregate offered rate / aggregate goodput (>= 1 ⇒ overload).
    overload_factor: float = 0.0
    jain_goodput: float = 1.0
    jain_weighted_goodput: float = 1.0
    #: sha256 over the deterministic payload (see :func:`qos_payload`).
    fingerprint: str = ""


def _install_qos(cluster: Cluster, specs: Sequence[TenantSpec]) -> None:
    """Install per-OSD mClock tags: aggregate contract / OSD count.

    Client ops hash across OSDs by object name, so an aggregate
    reservation of R is enforced as a floor of R/n on each of the n
    queues — the floors sum back to R when load spreads, and skew can
    only land a tenant *above* its per-queue floors elsewhere.
    """
    n = len(cluster.osds)
    for spec in specs:
        q = spec.qos
        per_osd = QosSpec(
            reservation=q.reservation / n,
            weight=q.weight,
            limit=(q.limit / n) if q.limit else 0.0,
        )
        for osd in cluster.osds:
            osd.set_qos(spec.name, per_osd)


def run_qos(
    strategy: str = "full-osd",
    tenants: Optional[Sequence[TenantSpec]] = None,
    *,
    seed: int = 0,
    duration: float = 20.0,
    prepopulate: int = 64,
    trace: bool = False,
    env: Optional[Environment] = None,
    tracer: Optional[Tracer] = None,
) -> QosResult:
    """Run one multi-tenant open-loop serving experiment.

    ``strategy`` names an offload strategy
    (:data:`~repro.cluster.strategy.STRATEGY_NAMES`); ``tenants``
    defaults to :func:`~repro.qos.tenants.default_tenants`.  The same
    ``(strategy, tenants, seed, duration)`` always produces the same
    :attr:`QosResult.fingerprint`.

    ``env`` injects a caller-owned (fresh) :class:`Environment` so
    harnesses that digest the event stream afterwards — the ``qos``
    perf-replay scenario — can reach it; ``tracer`` likewise overrides
    the ``trace`` flag with a caller-owned tracer.
    """
    specs = list(tenants) if tenants is not None else default_tenants()
    if not specs:
        raise ValueError("need at least one tenant")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")

    strat = get_strategy(strategy)
    if env is None:
        env = Environment()
    if tracer is None and trace:
        tracer = Tracer(seed=seed)
    cluster = strat.build(env, tracer=tracer)
    client = cluster.client
    assert client is not None
    t_wall = perf_counter()
    seq_start = env.events_scheduled

    _install_qos(cluster, specs)
    admission = AdmissionController()
    for spec in specs:
        admission.set_window(spec.name, spec.window)
    client.admission = admission

    boot = env.process(cluster.boot(), name="cluster-boot")
    env.run(until=boot)

    if any(spec.read_ratio > 0.0 for spec in specs):
        read_size = max(
            max(spec.sizes) for spec in specs if spec.read_ratio > 0.0
        )

        def prep() -> Generator[Any, Any, None]:
            for i in range(prepopulate):
                yield from client.write_object(
                    BENCH_POOL, f"qos_pre_{i}", read_size
                )

        p = env.process(prep(), name="qos-prepopulate")
        env.run(until=p)

    t_open = env.now
    t_close = t_open + duration
    sampler_hosts = CpuSampler(env, cluster.host_cpus())
    sampler_ceph = CpuSampler(env, cluster.ceph_cpus())
    sampler_hosts.start()
    sampler_ceph.start()

    stats = [TenantStats(name=spec.name) for spec in specs]
    pending: list[Any] = []
    arrival_procs = [
        env.process(
            open_loop_tenant(
                env, client, spec, st, tenant_rng(seed, spec.name),
                t_close, prepopulate, pending, tracer,
            ),
            name=f"qos-arrivals-{spec.name}",
        )
        for spec, st in zip(specs, stats)
    ]
    for proc in arrival_procs:
        env.run(until=proc)
    # Samplers close with the arrival window so CPU figures describe
    # the loaded period, not the post-window drain.
    host_windows = sampler_hosts.stop()
    ceph_windows = sampler_ceph.stop()
    # Drain in-flight ops issued before the window closed (they count
    # as ``completed_late``, not goodput) so the run ends quiescent.
    for proc in pending:
        env.run(until=proc)

    queue_stats: dict[str, int] = {}
    for osd in cluster.osds:
        for key, value in osd.qos_stats().items():
            queue_stats[key] = queue_stats.get(key, 0) + value

    all_latencies: list[float] = []
    lat_stats = RunningStats()
    total_completed = 0
    total_bytes = 0
    for st in stats:
        all_latencies.extend(st.latencies)
        lat_stats.merge(st.lat_stats)
        total_completed += st.completed
        total_bytes += st.bytes_done

    trace_report = (tracer.report(window=(t_open, env.now))
                    if tracer is not None else None)
    bench = BenchResult(
        object_size=specs[0].sizes[0],
        clients=len(specs),
        duration=duration,
        completed_ops=total_completed,
        iops=total_completed / duration,
        throughput_bytes=total_bytes / duration,
        latency=lat_stats,
        latencies=all_latencies,
        per_second_ops=TimeSeries(interval=1.0),
        per_second_latency=TimeSeries(interval=1.0),
        ceph_cpu=ceph_windows,
        host_cpu=host_windows,
        faults=collect_fault_report(cluster),
        health=collect_health_report(cluster),
        trace=trace_report,
        wall_clock_s=perf_counter() - t_wall,
        engine_events=env.events_scheduled - seq_start,
    )

    goodputs = [st.completed / duration for st in stats]
    weighted = [g / spec.qos.weight for g, spec in zip(goodputs, specs)]
    offered_rate = sum(spec.rate for spec in specs)
    achieved = sum(goodputs)
    result = QosResult(
        strategy=strategy,
        seed=seed,
        duration=duration,
        specs=specs,
        tenants=stats,
        bench=bench,
        queue_stats=queue_stats,
        admission=admission,
        overload_factor=offered_rate / achieved if achieved > 0 else 0.0,
        jain_goodput=jain_fairness_index(goodputs),
        jain_weighted_goodput=jain_fairness_index(weighted),
    )
    result.fingerprint = qos_payload(result)["fingerprint"]
    return result


def _latency_block(latencies: list[float],
                   stats: RunningStats) -> dict[str, float]:
    if not latencies:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies)
    return {
        "mean": round(stats.mean, 9),
        "p50": round(percentile(ordered, 50), 9),
        "p90": round(percentile(ordered, 90), 9),
        "p99": round(percentile(ordered, 99), 9),
        "max": round(ordered[-1], 9),
    }


def _tenant_dict(spec: TenantSpec, st: TenantStats,
                 duration: float) -> dict[str, Any]:
    goodput = st.completed / duration
    out: dict[str, Any] = {
        "name": spec.name,
        "arrival": spec.arrival,
        "offered_ops": st.offered,
        "offered_iops": round(st.offered / duration, 9),
        "admitted_ops": st.admitted,
        "completed_ops": st.completed,
        "completed_late_ops": st.completed_late,
        "shed_ops": st.shed,
        "failed_ops": st.failed,
        "goodput_iops": round(goodput, 9),
        "throughput_MBps": round(st.bytes_done / duration / 1e6, 9),
        "reservation_iops": round(spec.qos.reservation, 9),
        "weight": round(spec.qos.weight, 9),
        "limit_iops": round(spec.qos.limit, 9),
        "latency_s": _latency_block(st.latencies, st.lat_stats),
    }
    if spec.qos.reservation > 0:
        out["reservation_attainment"] = round(
            goodput / spec.qos.reservation, 9
        )
    return out


def qos_payload(result: QosResult) -> dict[str, Any]:
    """The ``BENCH_qos_*.json`` payload: canonical bench block plus the
    ``qos`` extension, stamped with a deterministic fingerprint.

    The fingerprint is sha256 over the sorted-key JSON of the payload
    *minus* the ``engine`` block (simulator wall-clock, varies run to
    run) — byte-equal fingerprints ⇔ identical simulated outcomes.
    """
    from ..bench.reporting import bench_result_dict

    payload = bench_result_dict(result.bench)
    payload["qos"] = {
        "strategy": result.strategy,
        "seed": result.seed,
        "duration_s": round(result.duration, 9),
        "overload_factor": round(result.overload_factor, 9),
        "jain_goodput": round(result.jain_goodput, 9),
        "jain_weighted_goodput": round(result.jain_weighted_goodput, 9),
        "ops_shed": sum(st.shed for st in result.tenants),
        "queue": dict(sorted(result.queue_stats.items())),
        "tenants": [
            _tenant_dict(spec, st, result.duration)
            for spec, st in zip(result.specs, result.tenants)
        ],
    }
    scrubbed = {k: v for k, v in payload.items() if k != "engine"}
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    payload["fingerprint"] = hashlib.sha256(blob.encode()).hexdigest()
    return payload
