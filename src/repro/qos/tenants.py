"""Tenant specifications: workload shape + QoS contract, one object.

A :class:`TenantSpec` is pure configuration — frozen, hashable, and
cheap to :func:`dataclasses.replace` — so sweeps can vary one axis
(rate, weight, burstiness) while holding the rest fixed.  The QoS
fields reuse :class:`~repro.osd.opqueue.QosSpec` directly: the spec a
tenant carries is the spec the OSD scheduler enforces (reservation and
limit are *aggregate* ops/s across the cluster; the runner divides by
OSD count when installing per-queue tags).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..osd.opqueue import QosSpec

__all__ = ["TenantSpec", "default_tenants"]

_ARRIVALS = ("poisson", "bursty")

KB = 1024


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's offered load and service contract."""

    #: Unique tenant name; travels on the wire in ``MOSDOp``.
    name: str
    #: Offered arrival rate in ops/s (open loop: arrivals keep coming
    #: whether or not earlier ops completed).
    rate: float
    #: mClock tags enforced by every OSD's op queue.  ``reservation``
    #: and ``limit`` are aggregate ops/s across the cluster.
    qos: QosSpec = QosSpec()
    #: ``poisson`` — independent exponential gaps at ``rate``;
    #: ``bursty`` — batches of ``burst`` back-to-back arrivals whose
    #: batch gaps preserve the same mean rate.
    arrival: str = "poisson"
    #: Arrivals per batch when ``arrival == "bursty"``.
    burst: int = 4
    #: Probability an arrival is a read (over the prepopulated set).
    read_ratio: float = 0.0
    #: Object sizes drawn uniformly per arrival.
    sizes: tuple[int, ...] = (64 * KB,)
    #: Client-side admission window: max in-flight ops before arrivals
    #: are shed with ``-EAGAIN``.
    window: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError(
                f"read_ratio must be in [0, 1], got {self.read_ratio}"
            )
        if not self.sizes or any(s <= 0 for s in self.sizes):
            raise ValueError(f"sizes must be positive, got {self.sizes}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")


def default_tenants(
    count: int = 8,
    *,
    reservation: float = 20.0,
    rate: float = 120.0,
    object_size: int = 64 * KB,
    window: int = 64,
) -> list[TenantSpec]:
    """A deterministic mixed-personality tenant set for experiments.

    Every tenant gets the same ``reservation`` floor and offered
    ``rate``; weights cycle 1..4 so spare capacity splits unevenly on
    purpose.  Tenant 1 (when present) is bursty, and the last tenant is
    limit-capped at twice its reservation — together they exercise all
    three mClock tag kinds.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    tenants: list[TenantSpec] = []
    for i in range(count):
        spec = TenantSpec(
            name=f"t{i}",
            rate=rate,
            qos=QosSpec(reservation=reservation, weight=float(1 + i % 4)),
            sizes=(object_size,),
            window=window,
        )
        if i == 1:
            spec = replace(spec, arrival="bursty", burst=4)
        if i == count - 1:
            spec = replace(
                spec, qos=replace(spec.qos, limit=2.0 * reservation)
            )
        tenants.append(spec)
    return tenants
