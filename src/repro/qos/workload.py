"""Deterministic open-loop workload generation, one process per tenant.

Closed-loop bench clients (``radosbench``) wait for each op before
issuing the next, so offered load collapses to match capacity and
overload never materializes.  Here each tenant is an *open-loop*
arrival process: inter-arrival gaps are drawn from the tenant's own
seeded RNG stream and every arrival spawns an independent op process,
whether or not earlier ops finished.

Determinism rules
-----------------

* Every random draw (gap, batch, op kind, size, read target) happens
  *inside the sequential arrival loop*, never inside the spawned op
  process — so the draw order is a pure function of the tenant's
  stream and cannot depend on how the simulator interleaves op
  completion.
* Each tenant owns ``SeededRng(seed).child("qos").child(name)``;
  adding/removing a tenant never shifts another tenant's sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..cluster.builder import BENCH_POOL
from ..rados.client import RadosClient, RadosError
from ..trace import QOS_CATEGORY
from ..util.stats import RunningStats

__all__ = ["TenantStats", "open_loop_tenant", "tenant_rng"]

#: ``RadosError.result`` for an admission-shed op (EAGAIN).
EAGAIN = -11


def tenant_rng(seed: int, name: str) -> random.Random:
    """The arrival stream for one tenant — derived from (seed, tenant
    name) only, so tenant sets compose without draw interference."""
    from ..util.rng import SeededRng

    return SeededRng(seed).child("qos").child(name).stream("arrivals")


@dataclass(slots=True)
class TenantStats:
    """Everything one tenant's workload observed during a run."""

    name: str
    #: Arrivals generated (open-loop offered load).
    offered: int = 0
    #: Ops that finished successfully.
    completed: int = 0
    #: Ops shed at the admission window (``-EAGAIN``).
    shed: int = 0
    #: Ops that failed for any other reason.
    failed: int = 0
    #: Ops that finished only after the measurement window closed
    #: (drained, not counted toward goodput/latency — an open-loop
    #: window measures completions *inside* it).
    completed_late: int = 0
    #: Payload bytes of completed ops.
    bytes_done: int = 0
    latencies: list[float] = field(default_factory=list)
    lat_stats: RunningStats = field(default_factory=RunningStats)

    @property
    def admitted(self) -> int:
        """Arrivals that passed the admission window."""
        return self.offered - self.shed


def open_loop_tenant(
    env: Any,
    client: RadosClient,
    spec: Any,
    stats: TenantStats,
    rng: random.Random,
    t_close: float,
    prepopulate: int,
    pending: list[Any],
    tracer: Optional[Any] = None,
) -> Generator[Any, Any, None]:
    """Generate ``spec``'s arrivals until ``t_close``.

    Spawned op processes are appended to ``pending`` so the runner can
    drain in-flight work after the arrival window closes.
    """
    seq = 0
    n_sizes = len(spec.sizes)
    while True:
        if spec.arrival == "poisson":
            batch = 1
            gap = rng.expovariate(spec.rate)
        else:
            # Same mean rate, delivered in bursts: the batch gap is the
            # exponential gap of a rate/burst process.
            batch = spec.burst
            gap = rng.expovariate(spec.rate / spec.burst)
        yield env.timeout(gap)
        if env.now >= t_close:
            return
        for _ in range(batch):
            size = (spec.sizes[0] if n_sizes == 1
                    else spec.sizes[rng.randrange(n_sizes)])
            is_read = (spec.read_ratio > 0.0
                       and rng.random() < spec.read_ratio)
            read_idx = rng.randrange(prepopulate) if is_read else 0
            stats.offered += 1
            proc = env.process(
                _one_op(env, client, spec.name, stats,
                        f"qos_{spec.name}_{seq}", size, is_read, read_idx,
                        t_close, tracer),
                name=f"qos-{spec.name}-{seq}",
            )
            pending.append(proc)
            seq += 1


def _one_op(
    env: Any,
    client: RadosClient,
    tenant: str,
    stats: TenantStats,
    oid: str,
    size: int,
    is_read: bool,
    read_idx: int,
    t_close: float,
    tracer: Optional[Any],
) -> Generator[Any, Any, None]:
    """One independent tenant op: issue, record, classify failure."""
    try:
        if is_read:
            result = yield from client.read_object(
                BENCH_POOL, f"qos_pre_{read_idx}", size, tenant=tenant
            )
        else:
            result = yield from client.write_object(
                BENCH_POOL, oid, size, tenant=tenant
            )
    except RadosError as exc:
        if exc.result == EAGAIN:
            stats.shed += 1
            if tracer is not None:
                span = tracer.start_span(
                    "qos.shed", env.now, node="client", cpu="client",
                    category=QOS_CATEGORY, thread_name="admission",
                )
                span.tag("tenant", tenant)
                span.error(env.now, "admission-window-full")
        else:
            stats.failed += 1
        return
    if env.now > t_close:
        stats.completed_late += 1
        return
    stats.completed += 1
    stats.bytes_done += size
    stats.latencies.append(result.latency)
    stats.lat_stats.add(result.latency)
