"""RADOS: pools, placement groups, the OSDMap, the monitor, and the
librados-style client."""

from .client import AioCompletion, OpResult, RadosClient, RadosError
from .monitor import Monitor
from .osdmap import OsdInfo, OsdMap, OsdState
from .types import (
    PgId,
    Pool,
    ceph_stable_mod,
    object_to_pg,
    pg_to_crush_input,
)

__all__ = [
    "AioCompletion",
    "Monitor",
    "OpResult",
    "OsdInfo",
    "OsdMap",
    "OsdState",
    "PgId",
    "Pool",
    "RadosClient",
    "RadosError",
    "ceph_stable_mod",
    "object_to_pg",
    "pg_to_crush_input",
]
