"""librados-style client.

A :class:`RadosClient` owns its own messenger (on the client node's
stack), fetches the OSDMap from the monitor at boot, computes object
placement locally (CRUSH runs client-side in RADOS — there is no
metadata server on the data path), and issues ops directly to primary
OSDs.  Replies are matched to callers by transaction id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..msgr.message import (
    Message,
    MMonGetMap,
    MMonMapReply,
    MOSDOp,
    MOSDOpReply,
    OpType,
)
from ..msgr.messenger import AsyncMessenger, Connection
from ..sim import Event
from ..util.bufferlist import DataBlob
from .osdmap import OsdMap

__all__ = ["AioCompletion", "RadosClient", "RadosError", "OpResult"]


class RadosError(Exception):
    """An operation failed (non-zero result code from the OSD)."""

    def __init__(self, result: int, what: str) -> None:
        super().__init__(f"{what}: result={result}")
        self.result = result


@dataclass(frozen=True)
class OpResult:
    """Outcome of one client operation."""

    tid: int
    result: int
    latency: float
    data: Optional[DataBlob] = None
    version: int = 0
    attachment: Any = None


class AioCompletion:
    """Handle for one asynchronous operation (librados-style).

    ``yield completion.wait()`` resumes the caller when the operation
    finishes; :attr:`result` then holds the :class:`OpResult` (or the
    :class:`RadosError` is re-raised at the wait point).
    """

    def __init__(self, env: Any) -> None:
        self.env = env
        self._event: Event = env.event()
        self.result: Optional[OpResult] = None
        self.error: Optional[RadosError] = None

    @property
    def is_complete(self) -> bool:
        return self._event.triggered

    def complete(self, result: OpResult) -> None:
        self.result = result
        self._event.succeed(result)

    def fail(self, error: RadosError) -> None:
        self.error = error
        self._event.fail(error)

    def wait(self) -> Event:
        """The event to ``yield`` on; value is the :class:`OpResult`."""
        return self._event


class RadosClient:
    """One client endpoint (the RADOS bench tool spawns many I/O
    contexts on top of a single client)."""

    def __init__(self, messenger: AsyncMessenger, mon_addr: str) -> None:
        self.messenger = messenger
        self.mon_addr = mon_addr
        self.env = messenger.env
        self.osdmap: Optional[OsdMap] = None
        self._pending: dict[int, Event] = {}
        self._sent_at: dict[int, float] = {}
        self._tid = 0
        messenger.register_dispatcher(self)

        # statistics
        self.ops_completed = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # ---------------------------------------------------------------- boot
    def boot(self) -> Generator[Any, Any, None]:
        """Fetch the cluster map from the monitor."""
        tid = self._next_tid()
        ev = self.env.event()
        self._pending[tid] = ev
        self._sent_at[tid] = self.env.now
        self.messenger.send_message(MMonGetMap(tid=tid), self.mon_addr)
        reply: MMonMapReply = yield ev
        self.osdmap = reply.attachment
        if self.osdmap is None:
            raise RadosError(-5, "monitor returned no map")

    # ---------------------------------------------------------------- ops
    def write_object(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> Generator[Any, Any, OpResult]:
        """Write ``size`` bytes; resumes when the cluster acks durability."""
        res = yield from self._do_op(
            pool, oid, OpType.WRITE, size, offset, DataBlob(size)
        )
        self.bytes_written += size
        return res

    def read_object(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> Generator[Any, Any, OpResult]:
        """Read ``size`` bytes from an object."""
        res = yield from self._do_op(pool, oid, OpType.READ, size, offset, None)
        self.bytes_read += res.data.length if res.data else 0
        return res

    def stat_object(
        self, pool: str, oid: str
    ) -> Generator[Any, Any, OpResult]:
        """Object metadata (size/version via the reply attachment)."""
        return (yield from self._do_op(pool, oid, OpType.STAT, 0, 0, None))

    def delete_object(
        self, pool: str, oid: str
    ) -> Generator[Any, Any, OpResult]:
        """Remove an object (replicated like a write)."""
        return (yield from self._do_op(pool, oid, OpType.DELETE, 0, 0, None))

    def _do_op(
        self,
        pool: str,
        oid: str,
        op: OpType,
        size: int,
        offset: int,
        data: Optional[DataBlob],
    ) -> Generator[Any, Any, OpResult]:
        if self.osdmap is None:
            raise RadosError(-107, "client not booted")
        pgid = self.osdmap.object_to_pg(pool, oid)
        primary = self.osdmap.pg_primary(pgid)
        tid = self._next_tid()
        ev = self.env.event()
        self._pending[tid] = ev
        t0 = self.env.now
        self._sent_at[tid] = t0
        self.messenger.send_message(
            MOSDOp(
                tid=tid, pool=pool, object_name=oid, op=op,
                length=size, offset=offset, data=data,
                map_epoch=self.osdmap.epoch,
            ),
            self.osdmap.address_of(primary),
        )
        reply: MOSDOpReply = yield ev
        latency = self.env.now - t0
        self.ops_completed += 1
        # -ENOENT on stat/read is an answer, not a failure; everything
        # else non-zero raises.
        benign = reply.result == -2 and op in (OpType.STAT, OpType.READ)
        if reply.result != 0 and not benign:
            raise RadosError(reply.result, f"{op.name} {pool}/{oid}")
        return OpResult(
            tid=tid, result=reply.result, latency=latency,
            data=reply.data, version=reply.version,
            attachment=reply.attachment,
        )

    # ---------------------------------------------------------------- aio
    def aio_write(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> "AioCompletion":
        """Asynchronous write: returns immediately with a completion.

        Mirrors librados's ``aio_write``: the caller may issue many
        operations back-to-back and wait on the completions later,
        driving arbitrary queue depth from one context."""
        return self._aio(pool, oid, OpType.WRITE, size, offset,
                         DataBlob(size))

    def aio_read(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> "AioCompletion":
        """Asynchronous read: returns immediately with a completion."""
        return self._aio(pool, oid, OpType.READ, size, offset, None)

    def _aio(
        self,
        pool: str,
        oid: str,
        op: OpType,
        size: int,
        offset: int,
        data: Optional[DataBlob],
    ) -> "AioCompletion":
        completion = AioCompletion(self.env)

        def driver() -> Any:
            try:
                result = yield from self._do_op(pool, oid, op, size,
                                                offset, data)
            except RadosError as exc:
                completion.fail(exc)
                return
            completion.complete(result)

        self.env.process(driver(), name=f"aio-{oid}")
        return completion

    def _next_tid(self) -> int:
        self._tid += 1
        return self._tid

    # ---------------------------------------------------------------- dispatch
    def ms_dispatch(
        self, msg: Message, conn: Connection
    ) -> Generator[Any, Any, None]:
        if isinstance(msg, (MOSDOpReply, MMonMapReply)):
            ev = self._pending.pop(msg.tid, None)
            self._sent_at.pop(msg.tid, None)
            if ev is not None:
                ev.succeed(msg)
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()
        if False:  # generator form
            yield

    def __repr__(self) -> str:
        return f"<RadosClient @{self.messenger.address}>"
