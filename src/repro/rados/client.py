"""librados-style client.

A :class:`RadosClient` owns its own messenger (on the client node's
stack), fetches the OSDMap from the monitor at boot, computes object
placement locally (CRUSH runs client-side in RADOS — there is no
metadata server on the data path), and issues ops directly to primary
OSDs.  Replies are matched to callers by transaction id.

Robustness (``op_timeout`` set): each attempt races its reply against a
timeout; on expiry the client re-fetches the OSDMap, recomputes the
primary from the (possibly remapped) PG, and resends the *same*
operation — writes resend the same payload blob, so resends are
idempotent.  After ``max_attempts`` the op fails with ``-ETIMEDOUT``
(-110) instead of hanging.  With ``op_timeout=None`` (default) the
original wait-forever behavior — and its exact event sequence — is
preserved for in-flight replies; an op that finds *no acting set* (every
serving OSD down) backs off and waits for the map to heal in both modes,
bounded only by ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..msgr.message import (
    Message,
    MMonGetMap,
    MMonMapReply,
    MOSDOp,
    MOSDOpReply,
    OpType,
)
from ..msgr.messenger import AsyncMessenger, Connection
from ..sim import AnyOf, Event
from ..util.bufferlist import DataBlob
from .osdmap import OsdMap

__all__ = ["AioCompletion", "RadosClient", "RadosError", "OpResult"]


class RadosError(Exception):
    """An operation failed (non-zero result code from the OSD)."""

    def __init__(self, result: int, what: str) -> None:
        super().__init__(f"{what}: result={result}")
        self.result = result


@dataclass(frozen=True)
class OpResult:
    """Outcome of one client operation."""

    tid: int
    result: int
    latency: float
    data: Optional[DataBlob] = None
    version: int = 0
    attachment: Any = None


class AioCompletion:
    """Handle for one asynchronous operation (librados-style).

    ``yield completion.wait()`` resumes the caller when the operation
    finishes; :attr:`result` then holds the :class:`OpResult` (or the
    :class:`RadosError` is re-raised at the wait point).
    """

    def __init__(self, env: Any) -> None:
        self.env = env
        self._event: Event = env.event()
        self.result: Optional[OpResult] = None
        self.error: Optional[RadosError] = None

    @property
    def is_complete(self) -> bool:
        return self._event.triggered

    def complete(self, result: OpResult) -> None:
        self.result = result
        self._event.succeed(result)

    def fail(self, error: RadosError) -> None:
        self.error = error
        self._event.fail(error)

    def wait(self) -> Event:
        """The event to ``yield`` on; value is the :class:`OpResult`."""
        return self._event


class RadosClient:
    """One client endpoint (the RADOS bench tool spawns many I/O
    contexts on top of a single client)."""

    def __init__(
        self,
        messenger: AsyncMessenger,
        mon_addr: str,
        op_timeout: Optional[float] = None,
        max_attempts: int = 5,
        retry_backoff: float = 0.5,
    ) -> None:
        self.messenger = messenger
        self.mon_addr = mon_addr
        self.env = messenger.env
        self.osdmap: Optional[OsdMap] = None
        self.op_timeout = op_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self._pending: dict[int, Event] = {}
        self._sent_at: dict[int, float] = {}
        #: tid -> peer address, so a connect fault on one peer can fail
        #: exactly the replies pending on it
        self._target: dict[int, str] = {}
        self._tid = 0
        #: Optional :class:`repro.trace.Tracer`; when set, every op
        #: mints a root span and each attempt a child span that rides
        #: the ``MOSDOp`` through the stack.  ``None`` (default) keeps
        #: the client entirely untraced.
        self.tracer: Any = None
        #: Optional :class:`repro.qos.AdmissionController`; when set,
        #: tenant-tagged ops that exceed the tenant's in-flight window
        #: are shed with ``-EAGAIN`` before touching the wire.
        self.admission: Any = None
        messenger.register_dispatcher(self)

        # statistics
        self.ops_completed = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.resends = 0
        self.timeouts = 0
        self.map_refetches = 0
        self.ops_failed = 0
        self.ops_shed = 0

    # ---------------------------------------------------------------- boot
    def boot(self) -> Generator[Any, Any, None]:
        """Fetch the cluster map from the monitor."""
        attempt = 0
        while True:
            attempt += 1
            tid = self._next_tid()
            ev = self.env.event()
            self._pending[tid] = ev
            self._sent_at[tid] = self.env.now
            self._target[tid] = self.mon_addr
            self.messenger.send_message(MMonGetMap(tid=tid), self.mon_addr)
            reply = yield from self._await_reply(tid, ev)
            if reply is not None:
                break
            self.timeouts += 1
            if attempt >= self.max_attempts:
                raise RadosError(-110, "monitor map fetch timed out")
            yield self.env.timeout(self.retry_backoff * attempt)
        self.osdmap = reply.attachment
        if self.osdmap is None:
            raise RadosError(-5, "monitor returned no map")

    def _await_reply(
        self, tid: int, ev: Event
    ) -> Generator[Any, Any, Optional[Message]]:
        """Wait for ``ev`` (the reply), bounded by ``op_timeout`` when
        set.  Returns ``None`` on timeout (pending state cleaned up)."""
        if self.op_timeout is None:
            reply = yield ev
            return reply
        timeout_ev = self.env.timeout(self.op_timeout)
        yield AnyOf(self.env, [ev, timeout_ev])
        if ev.triggered:
            return ev.value
        self._pending.pop(tid, None)
        self._sent_at.pop(tid, None)
        self._target.pop(tid, None)
        return None

    # ---------------------------------------------------------------- ops
    def write_object(
        self,
        pool: str,
        oid: str,
        size: int,
        offset: int = 0,
        data: Optional[DataBlob] = None,
        tenant: str = "",
    ) -> Generator[Any, Any, OpResult]:
        """Write ``size`` bytes; resumes when the cluster acks durability.

        Pass ``data`` to control the payload blob's identity (the chaos
        harness records it to verify content after heal)."""
        res = yield from self._do_op(
            pool, oid, OpType.WRITE, size, offset,
            data if data is not None else DataBlob(size),
            tenant=tenant,
        )
        self.bytes_written += size
        return res

    def read_object(
        self, pool: str, oid: str, size: int, offset: int = 0,
        tenant: str = "",
    ) -> Generator[Any, Any, OpResult]:
        """Read ``size`` bytes from an object."""
        res = yield from self._do_op(pool, oid, OpType.READ, size, offset,
                                     None, tenant=tenant)
        self.bytes_read += res.data.length if res.data else 0
        return res

    def stat_object(
        self, pool: str, oid: str
    ) -> Generator[Any, Any, OpResult]:
        """Object metadata (size/version via the reply attachment)."""
        return (yield from self._do_op(pool, oid, OpType.STAT, 0, 0, None))

    def delete_object(
        self, pool: str, oid: str
    ) -> Generator[Any, Any, OpResult]:
        """Remove an object (replicated like a write)."""
        return (yield from self._do_op(pool, oid, OpType.DELETE, 0, 0, None))

    def _do_op(
        self,
        pool: str,
        oid: str,
        op: OpType,
        size: int,
        offset: int,
        data: Optional[DataBlob],
        tenant: str = "",
    ) -> Generator[Any, Any, OpResult]:
        if self.osdmap is None:
            raise RadosError(-107, "client not booted")
        if tenant and self.admission is not None:
            # Admission gate runs before any simulated work: a shed op
            # costs nothing and perturbs nothing (-EAGAIN, counted).
            if not self.admission.try_acquire(tenant):
                self.ops_shed += 1
                raise RadosError(
                    -11, f"{op.name} {pool}/{oid}: tenant {tenant} window full"
                )
        try:
            result = yield from self._do_op_inner(
                pool, oid, op, size, offset, data, tenant
            )
        finally:
            if tenant and self.admission is not None:
                self.admission.release(tenant)
        return result

    def _do_op_inner(
        self,
        pool: str,
        oid: str,
        op: OpType,
        size: int,
        offset: int,
        data: Optional[DataBlob],
        tenant: str = "",
    ) -> Generator[Any, Any, OpResult]:
        t0 = self.env.now
        attempt = 0
        client_cpu = self.messenger.stack.cpu.name
        root_span = None
        attempt_span = None
        if self.tracer is not None:
            root_span = self.tracer.start_span(
                f"client.{op.name}", t0, cpu=client_cpu,
                category="client", thread_name=self.messenger.name,
                nbytes=size,
            )
            root_span.tag("pool", pool)
            root_span.tag("oid", oid)
            if tenant:
                root_span.tag("tenant", tenant)
        while True:
            attempt += 1
            pgid = self.osdmap.object_to_pg(pool, oid)
            try:
                primary = self.osdmap.pg_primary(pgid)
            except ValueError:
                # No up OSD serves this PG right now; wait for the map
                # to heal and retry.  This holds for the timeout-less
                # client too (its contract is to wait, not to error) —
                # the only bound either way is max_attempts.
                if attempt >= self.max_attempts:
                    self.ops_failed += 1
                    if root_span is not None:
                        root_span.error(self.env.now, "no-acting-set")
                    raise RadosError(
                        -110, f"{op.name} {pool}/{oid}: no acting set"
                    ) from None
                if root_span is not None:
                    root_span.event(self.env.now, "no-acting-set")
                yield self.env.timeout(self.retry_backoff * attempt)
                yield from self._refetch_map()
                continue
            tid = self._next_tid()
            ev = self.env.event()
            self._pending[tid] = ev
            self._sent_at[tid] = self.env.now
            self._target[tid] = self.osdmap.address_of(primary)
            if attempt > 1:
                self.resends += 1
            if root_span is not None:
                prev_attempt = attempt_span
                attempt_span = root_span.child(
                    "client.attempt", self.env.now, cpu=client_cpu,
                    category="client", thread_name=self.messenger.name,
                    nbytes=size,
                )
                attempt_span.tag("attempt", attempt)
                attempt_span.tag("tid", tid)
                attempt_span.tag("osd", primary)
                if prev_attempt is not None:
                    attempt_span.link(prev_attempt, "retry")
            msg = MOSDOp(
                tid=tid, pool=pool, object_name=oid, op=op,
                length=size, offset=offset, data=data,
                map_epoch=self.osdmap.epoch, tenant=tenant,
            )
            if attempt_span is not None:
                msg.span_ctx = attempt_span.context  # type: ignore[attr-defined]
            self.messenger.send_message(
                msg, self.osdmap.address_of(primary)
            )
            reply = yield from self._await_reply(tid, ev)
            if reply is not None:
                break
            self.timeouts += 1
            if attempt_span is not None:
                attempt_span.error(self.env.now, "timeout")
            if attempt >= self.max_attempts:
                self.ops_failed += 1
                if root_span is not None:
                    root_span.error(self.env.now, "timeout")
                raise RadosError(
                    -110,
                    f"{op.name} {pool}/{oid}: timed out after "
                    f"{attempt} attempts",
                )
            yield from self._refetch_map()
            yield self.env.timeout(self.retry_backoff * attempt)
        latency = self.env.now - t0
        self.ops_completed += 1
        if attempt_span is not None:
            attempt_span.finish(self.env.now)
        # -ENOENT on stat/read is an answer, not a failure; everything
        # else non-zero raises.
        benign = reply.result == -2 and op in (OpType.STAT, OpType.READ)
        if reply.result != 0 and not benign:
            if root_span is not None:
                root_span.error(self.env.now, f"result={reply.result}")
            raise RadosError(reply.result, f"{op.name} {pool}/{oid}")
        if root_span is not None:
            root_span.tag("result", reply.result)
            root_span.finish(self.env.now)
        return OpResult(
            tid=tid, result=reply.result, latency=latency,
            data=reply.data, version=reply.version,
            attachment=reply.attachment,
        )

    def _refetch_map(self) -> Generator[Any, Any, bool]:
        """Best-effort OSDMap refresh before a resend (epoch staleness).

        Single bounded attempt; on timeout the op retry proceeds with
        the map it has (map contents propagate by shared reference, so
        the fetch mostly exercises the wire + monitor liveness)."""
        tid = self._next_tid()
        ev = self.env.event()
        self._pending[tid] = ev
        self._sent_at[tid] = self.env.now
        self._target[tid] = self.mon_addr
        self.messenger.send_message(MMonGetMap(
            tid=tid,
            have_epoch=self.osdmap.epoch if self.osdmap else 0,
        ), self.mon_addr)
        reply = yield from self._await_reply(tid, ev)
        if reply is None:
            return False
        self.map_refetches += 1
        if reply.attachment is not None:
            self.osdmap = reply.attachment
        return True

    # ---------------------------------------------------------------- aio
    def aio_write(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> "AioCompletion":
        """Asynchronous write: returns immediately with a completion.

        Mirrors librados's ``aio_write``: the caller may issue many
        operations back-to-back and wait on the completions later,
        driving arbitrary queue depth from one context."""
        return self._aio(pool, oid, OpType.WRITE, size, offset,
                         DataBlob(size))

    def aio_read(
        self, pool: str, oid: str, size: int, offset: int = 0
    ) -> "AioCompletion":
        """Asynchronous read: returns immediately with a completion."""
        return self._aio(pool, oid, OpType.READ, size, offset, None)

    def _aio(
        self,
        pool: str,
        oid: str,
        op: OpType,
        size: int,
        offset: int,
        data: Optional[DataBlob],
    ) -> "AioCompletion":
        completion = AioCompletion(self.env)

        def driver() -> Any:
            try:
                result = yield from self._do_op(pool, oid, op, size,
                                                offset, data)
            except RadosError as exc:
                completion.fail(exc)
                return
            completion.complete(result)

        self.env.process(driver(), name=f"aio-{oid}")
        return completion

    def _next_tid(self) -> int:
        self._tid += 1
        return self._tid

    # ---------------------------------------------------------------- dispatch
    def ms_handle_connect_fault(self, peer_addr: str) -> None:
        """The messenger could not deliver to ``peer_addr`` (a partition
        ate the frame, or the peer's session reset dropped the queue).
        Fail the replies pending on that peer with a ``None`` reply so
        the op-level retry loop takes over — bounding even the
        ``op_timeout=None`` client to ``max_attempts`` instead of
        waiting forever on a reply that can no longer arrive."""
        stalled = [
            tid for tid, addr in self._target.items() if addr == peer_addr
        ]
        for tid in stalled:
            ev = self._pending.pop(tid, None)
            self._sent_at.pop(tid, None)
            self._target.pop(tid, None)
            if ev is not None and not ev.triggered:
                ev.succeed(None)

    def ms_dispatch(
        self, msg: Message, conn: Connection
    ) -> Generator[Any, Any, None]:
        if isinstance(msg, (MOSDOpReply, MMonMapReply)):
            ev = self._pending.pop(msg.tid, None)
            self._sent_at.pop(msg.tid, None)
            self._target.pop(msg.tid, None)
            if ev is not None:
                ev.succeed(msg)
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()
        if False:  # generator form
            yield

    def __repr__(self) -> str:
        return f"<RadosClient @{self.messenger.address}>"
