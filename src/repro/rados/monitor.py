"""The monitor daemon: cluster-map authority and failure detector.

Serves OSDMap fetches over the messenger and runs a beacon-based
failure detector: OSDs send :class:`~repro.msgr.message.MOSDBeacon`
periodically; silence beyond ``down_grace`` marks an OSD down, and
beyond ``out_interval`` marks it out (removing it from CRUSH placement),
which remaps its PGs.

Simulation note: map *contents* propagate by shared reference — every
daemon holds the same live :class:`~repro.rados.osdmap.OsdMap` object,
so an epoch bump is instantly visible cluster-wide (the simulated
equivalent of prompt map distribution).  Map *fetches* at boot still go
over the wire so client bring-up exercises the messenger.
"""

from __future__ import annotations

from typing import Any, Generator

from ..msgr.message import (
    Message,
    MMonGetMap,
    MMonMapReply,
    MOSDBeacon,
    MOSDPing,
)
from ..msgr.messenger import AsyncMessenger, Connection
from .osdmap import OsdMap, OsdState

__all__ = ["Monitor"]


class Monitor:
    """MON daemon bound to one messenger."""

    def __init__(
        self,
        messenger: AsyncMessenger,
        osdmap: OsdMap,
        down_grace: float = 5.0,
        out_interval: float = 30.0,
        check_period: float = 1.0,
    ) -> None:
        self.messenger = messenger
        self.osdmap = osdmap
        self.down_grace = down_grace
        self.out_interval = out_interval
        self.env = messenger.env
        self.last_beacon: dict[int, float] = {}
        self.maps_served = 0
        messenger.register_dispatcher(self)
        self._detector = self.env.process(
            self._failure_detector(check_period), name="mon.failure-detector"
        )

    @property
    def address(self) -> str:
        return self.messenger.address

    # ---------------------------------------------------------------- dispatch
    def ms_dispatch(
        self, msg: Message, conn: Connection
    ) -> Generator[Any, Any, None]:
        if isinstance(msg, MMonGetMap):
            reply = MMonMapReply(
                tid=msg.tid,
                epoch=self.osdmap.epoch,
                map_bytes=self._map_size(),
            )
            reply.attachment = self.osdmap
            self.messenger.send_message(reply, msg.src)
            self.maps_served += 1
        elif isinstance(msg, MOSDBeacon):
            self.last_beacon[msg.osd_id] = self.env.now
            if msg.osd_id in self.osdmap.osds and not self.osdmap.is_up(
                msg.osd_id
            ):
                # A beacon from a down OSD brings it back into service.
                self.osdmap.mark_up(msg.osd_id)
        elif isinstance(msg, MOSDPing) and not msg.is_reply:
            self.messenger.send_message(
                MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp), msg.src
            )
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()
        if False:  # keep generator form expected by the messenger
            yield

    def _map_size(self) -> int:
        """Approximate encoded OSDMap size (grows with cluster size)."""
        return 1024 + 256 * len(self.osdmap.osds)

    # ---------------------------------------------------------------- detector
    def _failure_detector(self, period: float) -> Generator[Any, Any, None]:
        while True:
            yield self.env.timeout(period)
            now = self.env.now
            for osd_id, info in list(self.osdmap.osds.items()):
                last = self.last_beacon.get(osd_id)
                if last is None:
                    continue
                silent = now - last
                if info.state == OsdState.UP_IN and silent > self.down_grace:
                    self.osdmap.mark_down(osd_id)
                if (
                    info.state == OsdState.DOWN_IN
                    and silent > self.out_interval
                ):
                    self.osdmap.mark_out(osd_id)

    def __repr__(self) -> str:
        return f"<Monitor @{self.address} epoch={self.osdmap.epoch}>"
