"""The monitor daemon: cluster-map authority and failure detector.

Serves OSDMap fetches over the messenger and runs a beacon-based
failure detector: OSDs send :class:`~repro.msgr.message.MOSDBeacon`
periodically; silence beyond ``down_grace`` marks an OSD down, and
beyond ``out_interval`` marks it out (removing it from CRUSH placement),
which remaps its PGs.  ``last_beacon`` is seeded for every known OSD at
monitor construction (and lazily for OSDs added later), so an OSD that
crashes before its first beacon is still detected.

Beacons also carry peer failure reports (``MOSDBeacon.failed_peers``,
the heartbeat agent's stale-peer list).  Reports from distinct live
reporters accumulate per target; reaching the reporter quorum marks the
target down immediately — faster than waiting out ``down_grace``, and
the only detection path for asymmetric reachability.  While a live
quorum stands against an OSD, its own beacons do *not* mark it up
(anti-flap during partitions); reports expire after ``report_ttl`` once
reporters stop renewing them.

Simulation note: map *contents* propagate by shared reference — every
daemon holds the same live :class:`~repro.rados.osdmap.OsdMap` object,
so an epoch bump is instantly visible cluster-wide (the simulated
equivalent of prompt map distribution).  Map *fetches* at boot still go
over the wire so client bring-up exercises the messenger.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..msgr.message import (
    Message,
    MMonGetMap,
    MMonMapReply,
    MOSDBeacon,
    MOSDPing,
)
from ..msgr.messenger import AsyncMessenger, Connection
from .osdmap import OsdMap, OsdState

__all__ = ["Monitor"]


class Monitor:
    """MON daemon bound to one messenger."""

    def __init__(
        self,
        messenger: AsyncMessenger,
        osdmap: OsdMap,
        down_grace: float = 5.0,
        out_interval: float = 30.0,
        check_period: float = 1.0,
        failure_reporters: int = 2,
        report_ttl: Optional[float] = None,
    ) -> None:
        self.messenger = messenger
        self.osdmap = osdmap
        self.down_grace = down_grace
        self.out_interval = out_interval
        self.failure_reporters = failure_reporters
        self.report_ttl = down_grace if report_ttl is None else report_ttl
        self.env = messenger.env
        # seed at registration time: an OSD that never beacons must still
        # trip the grace timer (satellite bugfix)
        self.last_beacon: dict[int, float] = {
            osd_id: self.env.now for osd_id in osdmap.osds
        }
        #: target osd → {reporter osd: report time}
        self._failure_reports: dict[int, dict[int, float]] = {}
        #: osd → highest beacon tid accepted (stale-straggler guard)
        self._beacon_seq: dict[int, int] = {}
        self.stale_beacons = 0
        self.maps_served = 0
        self.osds_marked_down = 0
        self.osds_marked_out = 0
        self.osds_marked_up = 0
        self.report_down_events = 0
        messenger.register_dispatcher(self)
        self._detector = self.env.process(
            self._failure_detector(check_period), name="mon.failure-detector"
        )

    @property
    def address(self) -> str:
        return self.messenger.address

    # ---------------------------------------------------------------- dispatch
    def ms_dispatch(
        self, msg: Message, conn: Connection
    ) -> Generator[Any, Any, None]:
        if isinstance(msg, MMonGetMap):
            reply = MMonMapReply(
                tid=msg.tid,
                epoch=self.osdmap.epoch,
                map_bytes=self._map_size(),
            )
            reply.attachment = self.osdmap
            self.messenger.send_message(reply, msg.src)
            self.maps_served += 1
        elif isinstance(msg, MOSDBeacon):
            self._handle_beacon(msg)
        elif isinstance(msg, MOSDPing) and not msg.is_reply:
            self.messenger.send_message(
                MOSDPing(tid=msg.tid, is_reply=True, stamp=msg.stamp), msg.src
            )
        release = getattr(msg, "throttle_release", None)
        if release is not None:
            release()
        if False:  # keep generator form expected by the messenger
            yield

    def _handle_beacon(self, msg: MOSDBeacon) -> None:
        now = self.env.now
        # A beacon delayed past a newer one (wire jitter) or replayed
        # across a connection reset carries an outdated failed_peers
        # snapshot — acting on it would flap the map on stale evidence.
        # tid 1 is always fresh: a restarted daemon's counter begins
        # again, and its first beacon must not be mistaken for history.
        last = self._beacon_seq.get(msg.osd_id, 0)
        if 1 < msg.tid <= last:
            self.stale_beacons += 1
            return
        self._beacon_seq[msg.osd_id] = msg.tid
        self.last_beacon[msg.osd_id] = now
        for target in msg.failed_peers:
            if target != msg.osd_id and target in self.osdmap.osds:
                self._failure_reports.setdefault(target, {})[msg.osd_id] = now
        if msg.osd_id in self.osdmap.osds and not self.osdmap.is_up(
            msg.osd_id
        ):
            # A beacon from a down OSD brings it back into service —
            # unless a live quorum of peers still reports it unreachable
            # (one-way reachability during a partition must not flap the
            # map up and down every beacon).
            if not self._reported_down(msg.osd_id, now):
                self.osdmap.mark_up(msg.osd_id)
                self.osds_marked_up += 1
                self._failure_reports.pop(msg.osd_id, None)

    def _map_size(self) -> int:
        """Approximate encoded OSDMap size (grows with cluster size)."""
        return 1024 + 256 * len(self.osdmap.osds)

    # ---------------------------------------------------------------- reports
    def _live_reports(self, target: int, now: float) -> dict[int, float]:
        """Unexpired reports against ``target`` from up reporters."""
        reports = self._failure_reports.get(target, {})
        return {
            reporter: stamp
            for reporter, stamp in reports.items()
            if now - stamp <= self.report_ttl
            and reporter in self.osdmap.osds
            and self.osdmap.is_up(reporter)
        }

    def _quorum(self) -> int:
        up = sum(1 for o in self.osdmap.osds if self.osdmap.is_up(o))
        return max(1, min(self.failure_reporters, up - 1))

    def _reported_down(self, target: int, now: float) -> bool:
        return len(self._live_reports(target, now)) >= self._quorum()

    # ---------------------------------------------------------------- detector
    def _failure_detector(self, period: float) -> Generator[Any, Any, None]:
        while True:
            yield self.env.timeout(period)
            now = self.env.now
            # prune expired reports so memory stays bounded
            for target in list(self._failure_reports):
                live = {
                    r: t
                    for r, t in self._failure_reports[target].items()
                    if now - t <= self.report_ttl
                }
                if live:
                    self._failure_reports[target] = live
                else:
                    del self._failure_reports[target]
            for osd_id, info in list(self.osdmap.osds.items()):
                last = self.last_beacon.setdefault(osd_id, now)
                silent = now - last
                if info.state == OsdState.UP_IN:
                    if silent > self.down_grace:
                        self.osdmap.mark_down(osd_id)
                        self.osds_marked_down += 1
                    elif self._reported_down(osd_id, now):
                        # peers can't reach it even though its beacons
                        # still arrive (or its grace hasn't expired yet)
                        self.osdmap.mark_down(osd_id)
                        self.osds_marked_down += 1
                        self.report_down_events += 1
                if (
                    info.state == OsdState.DOWN_IN
                    and silent > self.out_interval
                ):
                    self.osdmap.mark_out(osd_id)
                    self.osds_marked_out += 1

    def __repr__(self) -> str:
        return f"<Monitor @{self.address} epoch={self.osdmap.epoch}>"
