"""The OSDMap: epoch-versioned view of cluster membership and placement.

Mirrors the role of Ceph's OSDMap: it binds pool definitions to the
CRUSH map and answers "which OSDs serve this PG, and who is primary?"
Epochs increase on every mutation (OSD up/down/in/out, pool create), and
daemons compare epochs to detect staleness — the monitor distributes new
epochs, and tests exercise failure-driven remapping through exactly this
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..crush import CrushMap
from .types import PgId, Pool, object_to_pg, pg_to_crush_input

__all__ = ["OsdMap", "OsdState", "OsdInfo"]


class OsdState(Enum):
    """Liveness/membership of one OSD."""

    UP_IN = "up+in"
    DOWN_IN = "down+in"
    DOWN_OUT = "down+out"


@dataclass
class OsdInfo:
    """Per-OSD record in the map."""

    osd_id: int
    state: OsdState = OsdState.UP_IN
    address: str = ""  # network address of the serving messenger


@dataclass
class OsdMap:
    """Cluster map: pools + CRUSH + OSD states, versioned by epoch."""

    crush: CrushMap
    epoch: int = 1
    pools: dict[int, Pool] = field(default_factory=dict)
    osds: dict[int, OsdInfo] = field(default_factory=dict)
    #: Memoized acting sets for the current epoch.  Placement is a pure
    #: function of (crush weights, pool definition, OSD states), and
    #: every mutation of those bumps ``epoch`` — so entries stay valid
    #: exactly as long as the epoch does.  CRUSH's straw2 hashing is the
    #: hottest pure computation in a bench run; this cache removes it
    #: from the steady state without perturbing any event.
    _acting_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)
    _acting_epoch: int = field(default=-1, repr=False, compare=False)
    #: PG → {osd_id: (holds_full_copy, content_gen)}.  The
    #: monitor-tracked record of which OSDs hold a PG's data (Ceph's pg
    #: map / past-intervals role reduced to the questions recovery
    #: needs: who may I pull from, who is behind, and is it safe to
    #: discard my copy?).  A *full* holder has the complete object set
    #: as of its last clean membership; a *partial* holder accepted
    #: writes for a PG it never recovered (an interim primary serving
    #: while the full holders were down).  ``content_gen`` is the PG's
    #: content generation the holder's copy reflects: writes that some
    #: registered full holder did not receive bump the generation
    #: (:meth:`bump_pg_gen`), so a holder with a lower generation than a
    #: peer is known to miss acked writes — it must merge before it may
    #: serve as a discard survivor, and members pull whenever a peer's
    #: generation exceeds theirs.  Holder changes never bump the epoch —
    #: placement does not depend on them.
    pg_holders: dict = field(default_factory=dict, repr=False,
                             compare=False)
    #: PG → highest content generation ever issued (monotonic).
    pg_gens: dict = field(default_factory=dict, repr=False, compare=False)

    # -- membership ------------------------------------------------------------
    def add_osd(self, osd_id: int, address: str) -> None:
        if osd_id in self.osds:
            raise ValueError(f"osd.{osd_id} already in map")
        self.osds[osd_id] = OsdInfo(osd_id, OsdState.UP_IN, address)
        self.epoch += 1

    def mark_down(self, osd_id: int) -> None:
        """Mark an OSD down (still in; PGs degraded but not remapped)."""
        info = self._info(osd_id)
        if info.state == OsdState.UP_IN:
            info.state = OsdState.DOWN_IN
            self.epoch += 1

    def mark_out(self, osd_id: int) -> None:
        """Mark an OSD out: CRUSH stops mapping data to it."""
        info = self._info(osd_id)
        if info.state != OsdState.DOWN_OUT:
            info.state = OsdState.DOWN_OUT
            self.crush.set_reweight(osd_id, 0.0)
            self.epoch += 1

    def mark_up(self, osd_id: int, address: str | None = None) -> None:
        info = self._info(osd_id)
        if info.state != OsdState.UP_IN:
            info.state = OsdState.UP_IN
            self.crush.set_reweight(osd_id, 1.0)
            if address is not None:
                info.address = address
            self.epoch += 1

    def is_up(self, osd_id: int) -> bool:
        info = self.osds.get(osd_id)
        return info is not None and info.state == OsdState.UP_IN

    def address_of(self, osd_id: int) -> str:
        return self._info(osd_id).address

    def _info(self, osd_id: int) -> OsdInfo:
        try:
            return self.osds[osd_id]
        except KeyError:
            raise ValueError(f"unknown osd.{osd_id}") from None

    # -- pools -------------------------------------------------------------------
    def create_pool(self, pool: Pool) -> None:
        if pool.id in self.pools:
            raise ValueError(f"duplicate pool id {pool.id}")
        if any(p.name == pool.name for p in self.pools.values()):
            raise ValueError(f"duplicate pool name {pool.name}")
        self.pools[pool.id] = pool
        self.epoch += 1

    def pool_by_name(self, name: str) -> Pool:
        for pool in self.pools.values():
            if pool.name == name:
                return pool
        raise ValueError(f"unknown pool: {name}")

    # -- placement ----------------------------------------------------------------
    def object_to_pg(self, pool_name: str, object_name: str) -> PgId:
        return object_to_pg(self.pool_by_name(pool_name), object_name)

    def pg_to_osds(self, pgid: PgId) -> list[int]:
        """Acting set of a PG: up OSDs only, CRUSH order preserved."""
        if self._acting_epoch != self.epoch:
            self._acting_cache.clear()
            self._acting_epoch = self.epoch
        cached = self._acting_cache.get(pgid)
        if cached is None:
            pool = self.pools[pgid.pool]
            raw = self.crush.map_x(
                pool.rule_name, pg_to_crush_input(pgid), pool.size
            )
            cached = tuple(osd for osd in raw if self.is_up(osd))
            self._acting_cache[pgid] = cached
        # a fresh list per call: callers may slice or mutate their copy
        return list(cached)

    # -- data holders -------------------------------------------------------------
    def record_pg_holder(
        self,
        pgid: PgId,
        osd_id: int,
        full: bool | None = True,
        gen: int | None = None,
    ) -> None:
        """Register ``osd_id`` as holding data for ``pgid``.

        ``full=False`` marks a partial holder (it accepted some writes
        but never recovered the whole PG); registering full never
        downgrades to partial, and ``full=None`` keeps the current
        flag.  ``gen`` raises the holder's content generation (never
        lowers it); ``None`` keeps the current generation (0 for a new
        entry)."""
        holders = self.pg_holders.setdefault(pgid, {})
        old_full, old_gen = holders.get(osd_id, (False, 0))
        if full is None:
            full = old_full
        holders[osd_id] = (
            full or old_full,
            old_gen if gen is None else max(gen, old_gen),
        )

    def drop_pg_holder(self, pgid: PgId, osd_id: int) -> None:
        """Forget ``osd_id``'s copy (it was discarded or merged away)."""
        holders = self.pg_holders.get(pgid)
        if holders is not None:
            holders.pop(osd_id, None)

    def bump_pg_gen(self, pgid: PgId) -> int:
        """Allocate the next content generation for ``pgid``.

        Called for a write that some registered full holder will not
        receive (an interim write on a non-member, or a degraded write
        while a full holder is down): copies without it are stale from
        now on."""
        gen = self.pg_gens.get(pgid, 0) + 1
        self.pg_gens[pgid] = gen
        return gen

    def pg_gen(self, pgid: PgId) -> int:
        """Highest content generation ever issued for ``pgid``."""
        return self.pg_gens.get(pgid, 0)

    def holder_gen(self, pgid: PgId, osd_id: int) -> int:
        """The content generation ``osd_id``'s copy reflects (0 if
        unregistered)."""
        entry = self.pg_holders.get(pgid, {}).get(osd_id)
        return entry[1] if entry is not None else 0

    def holders_of(self, pgid: PgId) -> list[int]:
        """Every OSD believed to hold data for ``pgid`` (sorted)."""
        return sorted(self.pg_holders.get(pgid, {}))

    def full_holders_of(self, pgid: PgId) -> list[int]:
        """Holders with a complete copy (sorted)."""
        holders = self.pg_holders.get(pgid, {})
        return sorted(o for o, (full, _gen) in holders.items() if full)

    def partial_holders_of(self, pgid: PgId) -> list[int]:
        """Interim holders with only the writes they accepted (sorted)."""
        holders = self.pg_holders.get(pgid, {})
        return sorted(o for o, (full, _gen) in holders.items() if not full)

    def pg_primary(self, pgid: PgId) -> int:
        """The primary OSD of a PG (first in the acting set)."""
        acting = self.pg_to_osds(pgid)
        if not acting:
            raise ValueError(f"PG {pgid} has no acting set")
        return acting[0]

    def all_pgs(self, pool_name: str) -> list[PgId]:
        pool = self.pool_by_name(pool_name)
        return [PgId(pool.id, seed) for seed in range(pool.pg_num)]
