"""Core RADOS types: pools, placement groups, object→PG mapping.

Implements the exact hashing pipeline Ceph uses to locate an object:

1. ``ps = ceph_stable_mod(rjenkins(object name), pg_num, pg_num_mask)``
   — the placement seed within the pool,
2. ``pgid = (pool, ps)``,
3. ``pps = crush_hash32_2(ps, pool)`` — the CRUSH input for the PG,
4. ``crush.map_x(rule, pps, pool.size)`` — the acting set.

``ceph_stable_mod`` is the trick that lets ``pg_num`` grow without
remapping every object (only PGs in the split range move).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.rjenkins import ceph_str_hash_rjenkins, crush_hash32_2

__all__ = ["Pool", "PgId", "ceph_stable_mod", "object_to_pg", "pg_to_crush_input"]


def ceph_stable_mod(x: int, b: int, bmask: int) -> int:
    """Ceph's stable modulo: consistent placement across pg_num growth.

    ``b`` is pg_num, ``bmask`` is the next power of two minus one.
    For pg_num a power of two this is plain masking; otherwise values
    that would land past ``b`` fold back into the lower half, so
    growing ``b`` toward the next power of two only moves the folded
    range.
    """
    if b <= 0:
        raise ValueError(f"pg_num must be positive, got {b}")
    if x & bmask < b:
        return x & bmask
    return x & (bmask >> 1)


def _pg_num_mask(pg_num: int) -> int:
    mask = 1
    while mask < pg_num:
        mask <<= 1
    return mask - 1


@dataclass(frozen=True)
class Pool:
    """A RADOS pool: replication factor, PG count, CRUSH rule."""

    id: int
    name: str
    pg_num: int = 128
    size: int = 2  # replica count (the paper's 2-node testbed uses 2)
    min_size: int = 1
    rule_name: str = "replicated_rule"

    def __post_init__(self) -> None:
        if self.pg_num < 1:
            raise ValueError("pg_num must be >= 1")
        if not 1 <= self.min_size <= self.size:
            raise ValueError("need 1 <= min_size <= size")

    @property
    def pg_mask(self) -> int:
        return _pg_num_mask(self.pg_num)


@dataclass(frozen=True, order=True)
class PgId:
    """A placement group identity: (pool id, placement seed)."""

    pool: int
    seed: int

    def __str__(self) -> str:
        return f"{self.pool}.{self.seed:x}"


def object_to_pg(pool: Pool, object_name: str) -> PgId:
    """Map an object name to its PG within ``pool``."""
    raw = ceph_str_hash_rjenkins(object_name)
    seed = ceph_stable_mod(raw, pool.pg_num, pool.pg_mask)
    return PgId(pool.id, seed)


def pg_to_crush_input(pgid: PgId) -> int:
    """The CRUSH ``x`` for a PG (Ceph's 'pps': placement seed × pool)."""
    return crush_hash32_2(pgid.seed, pgid.pool)
