"""Deterministic discrete-event simulation kernel (SimPy-flavoured).

The kernel is the foundation of the DoCeph reproduction: every hardware
component (CPU cores, NICs, the DMA engine, SSDs) and every daemon
(messenger workers, OSD threads, BlueStore threads) is a process or a
resource running on one shared :class:`Environment`.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Process,
    Timeout,
)
from .exceptions import Interrupt, SimulationError, StopSimulation
from .resources import (
    Container,
    FilterStore,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)

# Optional compiled kernel: opt in with REPRO_ENGINE=compiled (read via
# the injectable wallclock boundary — the only sanctioned env read).
# When the extension is missing the pure-Python loop silently remains;
# both engines are digest-identical by contract (tests/test_engine_matrix.py).
from ..util import wallclock as _wallclock

if _wallclock.getenv("REPRO_ENGINE", "") == "compiled":
    from . import compiled as _compiled

    _compiled.activate()

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "PriorityResource",
    "Process",
    "Release",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
