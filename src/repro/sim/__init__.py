"""Deterministic discrete-event simulation kernel (SimPy-flavoured).

The kernel is the foundation of the DoCeph reproduction: every hardware
component (CPU cores, NICs, the DMA engine, SSDs) and every daemon
(messenger workers, OSD threads, BlueStore threads) is a process or a
resource running on one shared :class:`Environment`.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Process,
    Timeout,
)
from .exceptions import Interrupt, SimulationError, StopSimulation
from .resources import (
    Container,
    FilterStore,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "PriorityResource",
    "Process",
    "Release",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
