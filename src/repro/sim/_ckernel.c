/* _ckernel.c — compiled event-loop core for repro.sim.
 *
 * A hand-written CPython extension implementing the inner drain loop of
 * ``Environment.run`` (see core.py).  Selected at import time via
 * ``REPRO_ENGINE=compiled``; the pure-Python loop remains the default
 * and the behavioral reference.
 *
 * Parity contract (digest-proven by tests/test_engine_matrix.py):
 *
 *   - The heap is the same Python list of ``(time, priority, seq, event)``
 *     tuples; pushes keep going through the pure-Python ``_schedule_at``.
 *     Sequence numbers are unique, so the key order is total and the pop
 *     *sequence* is independent of the sift implementation — any valid
 *     min-heap maintenance yields the identical event order, byte for
 *     byte, even though the internal array layout may differ from
 *     CPython's ``_heapq``.
 *   - ``env._now`` is set once per same-(time, priority) batch, to the
 *     tuple's own float object, exactly like the pure loop.
 *   - Callback dispatch re-reads the list length every iteration (the
 *     pure ``for`` loop's iterator semantics), detaches
 *     ``event.callbacks`` to ``None`` before invoking, recycles ``_Sleep``
 *     instances (exact type match, pool capped at 128) and re-raises
 *     undefused failures.
 *   - ``_peak_pending`` is written back on *every* exit path, including
 *     exception propagation (``StopSimulation`` from an until-event
 *     callback travels through here to the Python wrapper).
 *
 * Performance notes: every event touches four attributes (``callbacks``
 * twice, ``_ok``, and on failure ``_defused``/``_value``).  All event
 * types in this codebase inherit :class:`Event`'s ``__slots__``, whose
 * member offsets are identical across subclasses, so ``setup()``
 * resolves the slot descriptors once and the loop reads/writes the
 * instance memory directly — skipping the descriptor protocol that a
 * generic ``PyObject_GetAttr`` would re-run per event.  A one-entry
 * type cache amortises the subtype check; anything unexpected falls
 * back to the generic attribute API with identical semantics.
 *
 * The until-protocol, gc suspension and ``stop_at`` clock fixup live in
 * the Python wrapper (repro/sim/compiled.py): they run once per
 * ``run()`` call, not per event, so compiling them buys nothing.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Interned attribute names, created once at module init. */
static PyObject *S_callbacks;
static PyObject *S__value;
static PyObject *S__ok;
static PyObject *S__defused;
static PyObject *S__now;
static PyObject *S__queue;
static PyObject *S__sleep_pool;
static PyObject *S__peak_pending;

/* Set by setup(). */
static PyObject *g_sleep_cls = NULL;   /* _Sleep (exact-type recycle test) */
static PyObject *g_pending = NULL;     /* _PENDING sentinel */
static PyTypeObject *g_event_type = NULL;
static PyTypeObject *g_env_type = NULL;

/* Slot offsets resolved from the __slots__ member descriptors; -1 when
 * unresolved (setup() fails loudly instead, but keep the guard). */
static Py_ssize_t off_callbacks = -1;
static Py_ssize_t off_value = -1;
static Py_ssize_t off_ok = -1;
static Py_ssize_t off_defused = -1;
static Py_ssize_t off_now = -1;
static Py_ssize_t off_queue = -1;
static Py_ssize_t off_sleep_pool = -1;
static Py_ssize_t off_peak = -1;

#define SLEEP_POOL_CAP 128
#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Overwrite an object slot, dropping the previous reference. */
static inline void
slot_store(PyObject *obj, Py_ssize_t off, PyObject *val)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(val);
    SLOT(obj, off) = val;
    Py_XDECREF(old);
}

/* Resolve the byte offset of a __slots__ member defined on `tp`. */
static Py_ssize_t
member_offset(PyTypeObject *tp, PyObject *name)
{
    PyObject *descr = PyDict_GetItemWithError(tp->tp_dict, name);
    if (descr == NULL || Py_TYPE(descr) != &PyMemberDescr_Type)
        return -1;
    PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
    if (m->type != T_OBJECT_EX && m->type != T_OBJECT)
        return -1;
    return m->offset;
}

/* Strict less-than on two heap entries.  Fast path: both are 4-tuples
 * with (float, int, int, ...) prefixes — times are always PyFloat
 * (env._now float + float delay), priorities and sequence numbers are
 * machine-size ints.  Anything else falls back to the generic tuple
 * rich comparison, which is what heapq itself would have done.
 * Returns 1/0, or -1 with an exception set. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) == 4 && PyTuple_GET_SIZE(b) == 4) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double da = PyFloat_AS_DOUBLE(ta);
            double db = PyFloat_AS_DOUBLE(tb);
            if (da != db)
                return da < db;
            PyObject *pa = PyTuple_GET_ITEM(a, 1);
            PyObject *pb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(pa) && PyLong_CheckExact(pb)) {
                int ova = 0, ovb = 0;
                long la = PyLong_AsLongAndOverflow(pa, &ova);
                long lb = PyLong_AsLongAndOverflow(pb, &ovb);
                if (!ova && !ovb) {
                    if (la != lb)
                        return la < lb;
                    PyObject *sa = PyTuple_GET_ITEM(a, 2);
                    PyObject *sb = PyTuple_GET_ITEM(b, 2);
                    if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                        int osa = 0, osb = 0;
                        long ja = PyLong_AsLongAndOverflow(sa, &osa);
                        long jb = PyLong_AsLongAndOverflow(sb, &osb);
                        if (!osa && !osb)
                            return ja < jb;  /* seq unique: never equal */
                    }
                }
            }
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* Restore the min-heap invariant after the root was replaced. */
static int
heap_sift_root(PyObject *heap)
{
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t n = PyList_GET_SIZE(heap);
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        Py_ssize_t right = child + 1;
        if (right < n) {
            int r = entry_lt(PyList_GET_ITEM(heap, right),
                             PyList_GET_ITEM(heap, child));
            if (r < 0)
                return -1;
            if (r)
                child = right;
        }
        int r = entry_lt(PyList_GET_ITEM(heap, child),
                         PyList_GET_ITEM(heap, pos));
        if (r < 0)
            return -1;
        if (!r)
            break;
        PyObject *parent = PyList_GET_ITEM(heap, pos);
        PyObject *smallest = PyList_GET_ITEM(heap, child);
        PyList_SET_ITEM(heap, pos, smallest);
        PyList_SET_ITEM(heap, child, parent);
        pos = child;
    }
    return 0;
}

/* heappop equivalent.  Caller guarantees the heap is non-empty.
 * Returns a new reference to the popped entry, or NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *ret = PyList_GET_ITEM(heap, 0);
    Py_INCREF(ret);
    PyList_SetItem(heap, 0, last); /* steals `last`, frees old slot 0 ref */
    if (heap_sift_root(heap) < 0) {
        Py_DECREF(ret);
        return NULL;
    }
    return ret;
}

/* Truth-test an _ok/_defused slot value: almost always an exact bool. */
static inline int
flag_is_true(PyObject *v)
{
    if (v == Py_True)
        return 1;
    if (v == Py_False)
        return 0;
    return PyObject_IsTrue(v);
}

/* Invoke every callback parked on `event`, with the pure loop's exact
 * semantics: detach the list first, shortcut the 1-callback case,
 * re-read the length each iteration.  `fast` means the Event slot
 * offsets apply to this instance.  Returns 0, or -1 with an exception
 * set. */
static int
dispatch_callbacks(PyObject *event, int fast)
{
    PyObject *callbacks;
    if (fast) {
        callbacks = SLOT(event, off_callbacks);
        if (callbacks == NULL) {
            PyErr_SetObject(PyExc_AttributeError, S_callbacks);
            return -1;
        }
        Py_INCREF(callbacks);
        slot_store(event, off_callbacks, Py_None);
    }
    else {
        callbacks = PyObject_GetAttr(event, S_callbacks);
        if (callbacks == NULL)
            return -1;
        if (PyObject_SetAttr(event, S_callbacks, Py_None) < 0) {
            Py_DECREF(callbacks);
            return -1;
        }
    }
    if (PyList_CheckExact(callbacks)) {
        if (PyList_GET_SIZE(callbacks) == 1) {
            PyObject *cb = PyList_GET_ITEM(callbacks, 0);
            Py_INCREF(cb);
            PyObject *res = PyObject_CallOneArg(cb, event);
            Py_DECREF(cb);
            if (res == NULL) {
                Py_DECREF(callbacks);
                return -1;
            }
            Py_DECREF(res);
        }
        else {
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
                PyObject *cb = PyList_GET_ITEM(callbacks, i);
                Py_INCREF(cb);
                PyObject *res = PyObject_CallOneArg(cb, event);
                Py_DECREF(cb);
                if (res == NULL) {
                    Py_DECREF(callbacks);
                    return -1;
                }
                Py_DECREF(res);
            }
        }
    }
    else {
        /* Non-list callbacks never occur in this codebase; mirror the
         * pure loop's generic iteration just in case. */
        PyObject *it = PyObject_GetIter(callbacks);
        if (it == NULL) {
            Py_DECREF(callbacks);
            return -1;
        }
        PyObject *cb;
        while ((cb = PyIter_Next(it)) != NULL) {
            PyObject *res = PyObject_CallOneArg(cb, event);
            Py_DECREF(cb);
            if (res == NULL) {
                Py_DECREF(it);
                Py_DECREF(callbacks);
                return -1;
            }
            Py_DECREF(res);
        }
        Py_DECREF(it);
        Py_DECREF(callbacks);
        return PyErr_Occurred() ? -1 : 0;
    }
    Py_DECREF(callbacks);
    return 0;
}

/* Post-dispatch bookkeeping: _Sleep recycling on success, undefused
 * failure propagation otherwise.  Returns 0, or -1 with an exception
 * set. */
static int
finish_event(PyObject *event, PyObject *sleep_pool, int fast)
{
    PyObject *tmp;
    int ok;
    if (fast) {
        tmp = SLOT(event, off_ok);
        if (tmp == NULL) {
            PyErr_SetObject(PyExc_AttributeError, S__ok);
            return -1;
        }
        ok = flag_is_true(tmp);
    }
    else {
        tmp = PyObject_GetAttr(event, S__ok);
        if (tmp == NULL)
            return -1;
        ok = flag_is_true(tmp);
        Py_DECREF(tmp);
    }
    if (ok < 0)
        return -1;
    if (ok) {
        if ((PyObject *)Py_TYPE(event) == g_sleep_cls &&
            PyList_GET_SIZE(sleep_pool) < SLEEP_POOL_CAP) {
            /* _Sleep always satisfies the fast layout. */
            slot_store(event, off_value, g_pending);
            if (PyList_Append(sleep_pool, event) < 0)
                return -1;
        }
        return 0;
    }
    int defused;
    if (fast) {
        tmp = SLOT(event, off_defused);
        if (tmp == NULL) {
            PyErr_SetObject(PyExc_AttributeError, S__defused);
            return -1;
        }
        defused = flag_is_true(tmp);
    }
    else {
        tmp = PyObject_GetAttr(event, S__defused);
        if (tmp == NULL)
            return -1;
        defused = flag_is_true(tmp);
        Py_DECREF(tmp);
    }
    if (defused < 0)
        return -1;
    if (defused)
        return 0;
    /* `raise event._value` */
    PyObject *exc = fast ? SLOT(event, off_value)
                         : PyObject_GetAttr(event, S__value);
    if (fast)
        Py_XINCREF(exc);
    if (exc != NULL) {
        if (PyExceptionInstance_Check(exc))
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        else if (PyExceptionClass_Check(exc))
            PyErr_SetObject(exc, NULL);
        else
            PyErr_SetString(PyExc_TypeError,
                            "exceptions must derive from BaseException");
        Py_DECREF(exc);
    }
    else if (!PyErr_Occurred()) {
        PyErr_SetObject(PyExc_AttributeError, S__value);
    }
    return -1;
}

/* drain(env, horizon) -> bool
 *
 * Run the batched dispatch loop until the queue empties (returns False)
 * or the heap top reaches `horizon` (returns True; the caller fixes up
 * env._now to stop_at, exactly as the pure loop does).  Exceptions from
 * callbacks — including StopSimulation — propagate, with the peak-heap
 * high-water mark written back first. */
static PyObject *
ckernel_drain(PyObject *self, PyObject *args)
{
    PyObject *env;
    double horizon;
    if (!PyArg_ParseTuple(args, "Od:drain", &env, &horizon))
        return NULL;
    if (g_sleep_cls == NULL || g_pending == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_ckernel.setup() not called");
        return NULL;
    }

    int env_fast = PyType_IsSubtype(Py_TYPE(env), g_env_type);
    PyObject *queue, *sleep_pool;
    if (env_fast) {
        queue = SLOT(env, off_queue);
        sleep_pool = SLOT(env, off_sleep_pool);
        Py_XINCREF(queue);
        Py_XINCREF(sleep_pool);
        if (queue == NULL || sleep_pool == NULL) {
            Py_XDECREF(queue);
            Py_XDECREF(sleep_pool);
            PyErr_SetString(PyExc_AttributeError,
                            "environment not fully initialised");
            return NULL;
        }
    }
    else {
        queue = PyObject_GetAttr(env, S__queue);
        if (queue == NULL)
            return NULL;
        sleep_pool = PyObject_GetAttr(env, S__sleep_pool);
        if (sleep_pool == NULL) {
            Py_DECREF(queue);
            return NULL;
        }
    }
    if (!PyList_CheckExact(queue) || !PyList_CheckExact(sleep_pool)) {
        PyErr_SetString(PyExc_TypeError,
                        "env._queue and env._sleep_pool must be lists");
        Py_DECREF(queue);
        Py_DECREF(sleep_pool);
        return NULL;
    }

    PyObject *tmp;
    Py_ssize_t peak;
    if (env_fast) {
        tmp = SLOT(env, off_peak);
        peak = tmp ? PyLong_AsSsize_t(tmp) : -1;
    }
    else {
        tmp = PyObject_GetAttr(env, S__peak_pending);
        peak = tmp ? PyLong_AsSsize_t(tmp) : -1;
        Py_XDECREF(tmp);
        tmp = NULL;
    }
    if (peak == -1 && PyErr_Occurred()) {
        Py_DECREF(queue);
        Py_DECREF(sleep_pool);
        return NULL;
    }

    /* One-entry cache for the per-event layout check: event types
     * repeat heavily (machines, timeouts, requests), so the subtype
     * walk runs only on type changes. */
    PyTypeObject *fast_type = NULL;

    int hit_horizon = 0;

    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *head = PyList_GET_ITEM(queue, 0);
        PyObject *at_obj = PyTuple_GET_ITEM(head, 0);
        double at;
        if (PyFloat_CheckExact(at_obj))
            at = PyFloat_AS_DOUBLE(at_obj);
        else {
            at = PyFloat_AsDouble(at_obj);
            if (at == -1.0 && PyErr_Occurred())
                goto fail;
        }
        if (at >= horizon) {
            hit_horizon = 1;
            break;
        }
        /* The pure loop stores the tuple's own float object: zero
         * allocation, and `env.now` aliases the key exactly. */
        Py_INCREF(at_obj);
        if (env_fast)
            slot_store(env, off_now, at_obj);
        else if (PyObject_SetAttr(env, S__now, at_obj) < 0) {
            Py_DECREF(at_obj);
            goto fail;
        }
        PyObject *prio_obj = PyTuple_GET_ITEM(head, 1);
        Py_INCREF(prio_obj);

        /* Same-(time, priority) batch. */
        for (;;) {
            Py_ssize_t qlen = PyList_GET_SIZE(queue);
            if (qlen > peak)
                peak = qlen;
            PyObject *entry = heap_pop(queue);
            if (entry == NULL)
                goto batch_fail;
            PyObject *event = PyTuple_GET_ITEM(entry, 3);
            Py_INCREF(event);
            Py_DECREF(entry);

            PyTypeObject *tp = Py_TYPE(event);
            int fast;
            if (tp == fast_type)
                fast = 1;
            else {
                fast = PyType_IsSubtype(tp, g_event_type);
                if (fast)
                    fast_type = tp;
            }

            if (dispatch_callbacks(event, fast) < 0 ||
                finish_event(event, sleep_pool, fast) < 0) {
                Py_DECREF(event);
                goto batch_fail;
            }
            Py_DECREF(event);

            /* Same-key continuation: stay in the batch while the heap
             * top shares this timestamp and priority class. */
            if (PyList_GET_SIZE(queue) == 0)
                break;
            head = PyList_GET_ITEM(queue, 0);
            PyObject *h0 = PyTuple_GET_ITEM(head, 0);
            if (PyFloat_CheckExact(h0)) {
                if (PyFloat_AS_DOUBLE(h0) != at)
                    break;
            }
            else {
                int ne = PyObject_RichCompareBool(h0, at_obj, Py_NE);
                if (ne < 0)
                    goto batch_fail;
                if (ne)
                    break;
            }
            PyObject *h1 = PyTuple_GET_ITEM(head, 1);
            if (h1 != prio_obj) {
                int ne = PyObject_RichCompareBool(h1, prio_obj, Py_NE);
                if (ne < 0)
                    goto batch_fail;
                if (ne)
                    break;
            }
        }
        Py_DECREF(at_obj);
        Py_DECREF(prio_obj);
        continue;

    batch_fail:
        Py_DECREF(at_obj);
        Py_DECREF(prio_obj);
        goto fail;
    }

    tmp = PyLong_FromSsize_t(peak);
    if (tmp == NULL)
        goto fail;
    if (env_fast)
        slot_store(env, off_peak, tmp);
    else if (PyObject_SetAttr(env, S__peak_pending, tmp) < 0) {
        Py_DECREF(tmp);
        goto fail;
    }
    Py_DECREF(tmp);
    Py_DECREF(queue);
    Py_DECREF(sleep_pool);
    return PyBool_FromLong(hit_horizon);

fail:;
    /* Write the peak back even when propagating an exception — the
     * pure loop's `finally` does the same. */
    PyObject *et, *ev, *etb;
    PyErr_Fetch(&et, &ev, &etb);
    tmp = PyLong_FromSsize_t(peak);
    if (tmp != NULL) {
        if (env_fast)
            slot_store(env, off_peak, tmp);
        else if (PyObject_SetAttr(env, S__peak_pending, tmp) < 0)
            PyErr_Clear();
        Py_DECREF(tmp);
    }
    PyErr_Restore(et, ev, etb);
    Py_DECREF(queue);
    Py_DECREF(sleep_pool);
    return NULL;
}

/* setup(event_cls, env_cls, sleep_cls, pending) — register the core
 * classes, the _PENDING sentinel, and resolve the slot offsets the
 * fast paths rely on. */
static PyObject *
ckernel_setup(PyObject *self, PyObject *args)
{
    PyObject *event_cls, *env_cls, *sleep_cls, *pending;
    if (!PyArg_ParseTuple(args, "OOOO:setup",
                          &event_cls, &env_cls, &sleep_cls, &pending))
        return NULL;
    if (!PyType_Check(event_cls) || !PyType_Check(env_cls) ||
        !PyType_Check(sleep_cls)) {
        PyErr_SetString(PyExc_TypeError, "setup() expects three classes");
        return NULL;
    }

    PyTypeObject *etp = (PyTypeObject *)event_cls;
    PyTypeObject *ntp = (PyTypeObject *)env_cls;
    off_callbacks = member_offset(etp, S_callbacks);
    off_value = member_offset(etp, S__value);
    off_ok = member_offset(etp, S__ok);
    off_defused = member_offset(etp, S__defused);
    off_now = member_offset(ntp, S__now);
    off_queue = member_offset(ntp, S__queue);
    off_sleep_pool = member_offset(ntp, S__sleep_pool);
    off_peak = member_offset(ntp, S__peak_pending);
    if (off_callbacks < 0 || off_value < 0 || off_ok < 0 ||
        off_defused < 0 || off_now < 0 || off_queue < 0 ||
        off_sleep_pool < 0 || off_peak < 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Event/Environment __slots__ layout not recognised");
        return NULL;
    }

    Py_INCREF(event_cls);
    Py_XSETREF(g_event_type, etp);
    Py_INCREF(env_cls);
    Py_XSETREF(g_env_type, ntp);
    Py_INCREF(sleep_cls);
    Py_XSETREF(g_sleep_cls, sleep_cls);
    Py_INCREF(pending);
    Py_XSETREF(g_pending, pending);
    Py_RETURN_NONE;
}

static PyMethodDef ckernel_methods[] = {
    {"setup", ckernel_setup, METH_VARARGS,
     "setup(event_cls, env_cls, sleep_cls, pending): register core types."},
    {"drain", ckernel_drain, METH_VARARGS,
     "drain(env, horizon) -> bool: run the batched dispatch loop."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "_ckernel",
    "Compiled event-loop core for repro.sim (see _ckernel.c).",
    -1,
    ckernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    S_callbacks = PyUnicode_InternFromString("callbacks");
    S__value = PyUnicode_InternFromString("_value");
    S__ok = PyUnicode_InternFromString("_ok");
    S__defused = PyUnicode_InternFromString("_defused");
    S__now = PyUnicode_InternFromString("_now");
    S__queue = PyUnicode_InternFromString("_queue");
    S__sleep_pool = PyUnicode_InternFromString("_sleep_pool");
    S__peak_pending = PyUnicode_InternFromString("_peak_pending");
    if (S_callbacks == NULL || S__value == NULL || S__ok == NULL ||
        S__defused == NULL || S__now == NULL || S__queue == NULL ||
        S__sleep_pool == NULL || S__peak_pending == NULL)
        return NULL;
    return PyModule_Create(&ckernel_module);
}
