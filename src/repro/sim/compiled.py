"""Optional compiled event-loop kernel: loader and ``run()`` wrapper.

``REPRO_ENGINE=compiled`` (read through the injectable
:mod:`repro.util.wallclock` boundary at :mod:`repro.sim` import time)
swaps :meth:`Environment.run` for :func:`_run_compiled`, which delegates
the per-event work — heap pops, batched same-tick dispatch, ``_Sleep``
recycling, peak-heap accounting — to the C extension built from
``_ckernel.c``.  Everything that runs once per ``run()`` call (the
until-event protocol, gc suspension, the ``stop_at`` clock fixup) stays
in Python where it is free.

The extension is built by :mod:`repro.engine_build` (which may invoke
the compiler and therefore lives *outside* the simulated layers — SIM201
bans real subprocesses here).  This module only imports the finished
artifact; when it is absent, :func:`activate` reports failure and the
pure-Python loop stays in place.  The two engines are digest-identical
by contract, enforced by tests/test_engine_matrix.py and the CI
``perf-engine`` job.
"""

from __future__ import annotations

import gc
from typing import Any, Optional

from .core import _PENDING, _Sleep, Environment, Event
from .exceptions import SimulationError, StopSimulation

#: Which loop Environment.run currently uses: "pure" or "compiled".
ACTIVE_ENGINE = "pure"

_ckernel = None


def load() -> bool:
    """Import and initialise the C extension.  True on success."""
    global _ckernel
    if _ckernel is not None:
        return True
    try:
        from . import _ckernel as ext  # type: ignore[attr-defined]
    except ImportError:
        return False
    ext.setup(Event, Environment, _Sleep, _PENDING)
    _ckernel = ext
    return True


def _run_compiled(self: Environment, until: Any = None) -> Any:
    """Drop-in :meth:`Environment.run` backed by ``_ckernel.drain``.

    Mirrors the pure loop's until-protocol exactly (core.py): an
    already-processed until-event returns immediately, a numeric
    deadline becomes the drain horizon, ``StopSimulation`` raised by the
    until-event's callback surfaces the event value, and a queue that
    drains before the deadline still advances the clock to ``stop_at``.
    """
    stop_at: Optional[float] = None
    if until is not None:
        if isinstance(until, Event):
            if until.callbacks is None:
                return until.value if until.ok else None
            until.callbacks.append(StopSimulation.callback)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

    horizon = float("inf") if stop_at is None else stop_at
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        _ckernel.drain(self, horizon)
    except StopSimulation as stop:
        return stop.args[0]
    finally:
        if gc_was_enabled:
            gc.enable()

    if stop_at is not None:
        # Horizon hit, or queue drained before the deadline: either way
        # the clock lands on stop_at, exactly as in the pure loop.
        self._now = stop_at
    return None


def activate() -> bool:
    """Patch :meth:`Environment.run` to the compiled loop.

    Returns True if the extension loaded and the patch is in place;
    False leaves the pure-Python loop untouched (graceful fallback —
    the digests are identical either way, only throughput differs).
    """
    global ACTIVE_ENGINE
    if not load():
        return False
    Environment.run = _run_compiled  # type: ignore[method-assign]
    ACTIVE_ENGINE = "compiled"
    return True


def deactivate() -> None:
    """Restore the pure-Python loop (used by the parity tests)."""
    global ACTIVE_ENGINE
    Environment.run = Environment._run_pure  # type: ignore[method-assign]
    ACTIVE_ENGINE = "pure"
